"""Tests for the total-arrival estimators (Section 5.1)."""

import numpy as np
import pytest

from repro.core.estimation import (
    ConstantEstimator,
    EwmaEstimator,
    OracleTotal,
    ScaledOwnArrivals,
    make_estimator,
)


class TestScaledOwnArrivals:
    def test_paper_formula(self):
        est = ScaledOwnArrivals()
        assert est.estimate(own_arrivals=7, num_dispatchers=10) == 70.0

    def test_clamped_to_one(self):
        est = ScaledOwnArrivals()
        assert est.estimate(0, 10) == 1.0

    def test_mean_of_estimates_equals_total(self):
        """Eq. (19): the average dispatcher estimate equals true arrivals."""
        rng = np.random.default_rng(0)
        m = 8
        est = ScaledOwnArrivals()
        batches = rng.poisson(12.0, size=m)
        estimates = [est.estimate(int(b), m) for b in batches]
        if all(b >= 1 for b in batches):  # clamping only bites at zero
            assert np.mean(estimates) == pytest.approx(batches.sum())


class TestOracle:
    def test_returns_observed_total(self):
        est = OracleTotal()
        est.observe_total(42)
        assert est.estimate(3, 5) == 42.0

    def test_reset_clears_state(self):
        est = OracleTotal()
        est.observe_total(42)
        est.reset()
        assert est.estimate(3, 5) == 1.0

    def test_never_below_one(self):
        est = OracleTotal()
        est.observe_total(0)
        assert est.estimate(0, 5) == 1.0


class TestConstant:
    def test_fixed_value(self):
        est = ConstantEstimator(55.0)
        assert est.estimate(1, 2) == 55.0
        assert est.estimate(99, 2) == 55.0

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            ConstantEstimator(0.5)


class TestEwma:
    def test_first_sample_initializes(self):
        est = EwmaEstimator(alpha=0.5)
        assert est.estimate(10, 2) == 20.0

    def test_smoothing(self):
        est = EwmaEstimator(alpha=0.5)
        est.estimate(10, 2)  # value = 20
        assert est.estimate(20, 2) == pytest.approx(0.5 * 20 + 0.5 * 40)

    def test_alpha_one_tracks_immediately(self):
        est = EwmaEstimator(alpha=1.0)
        est.estimate(10, 2)
        assert est.estimate(3, 2) == 6.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)

    def test_reset(self):
        est = EwmaEstimator(alpha=0.25)
        est.estimate(100, 2)
        est.reset()
        assert est.estimate(10, 2) == 20.0


class TestFactory:
    def test_names(self):
        assert isinstance(make_estimator("scaled"), ScaledOwnArrivals)
        assert isinstance(make_estimator("oracle"), OracleTotal)
        assert isinstance(make_estimator("ewma", alpha=0.5), EwmaEstimator)
        assert isinstance(make_estimator("constant", value=9), ConstantEstimator)

    def test_number_becomes_constant(self):
        est = make_estimator(25)
        assert isinstance(est, ConstantEstimator)
        assert est.value == 25.0

    def test_instance_passthrough(self):
        est = OracleTotal()
        assert make_estimator(est) is est

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_estimator("psychic")
