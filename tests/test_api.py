"""Public-API surface tests: exports resolve, everything is documented."""

import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name!r}"

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_no_accidental_private_exports(self):
        assert not [name for name in repro.__all__ if name.startswith("_")]


class TestDocumentation:
    """Every public item carries a real docstring (deliverable e)."""

    def test_package_docstring(self):
        assert repro.__doc__ and "Stochastic Coordination" in repro.__doc__

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_public_items_documented(self, name):
        obj = getattr(repro, name)
        if isinstance(obj, (tuple, dict, str, float, int)):
            return  # constants document themselves at definition site
        doc = inspect.getdoc(obj)
        assert doc and len(doc.split()) >= 3, f"{name} lacks a docstring"

    @pytest.mark.parametrize(
        "cls_name",
        [
            "SCDPolicy",
            "TWFPolicy",
            "Simulation",
            "ResponseTimeHistogram",
            "ServerQueue",
        ],
    )
    def test_public_methods_documented(self, cls_name):
        cls = getattr(repro, cls_name)
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls_name}.{name} lacks a docstring"


class TestSubmodules:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.core.iwl",
            "repro.core.probabilities",
            "repro.core.qp_reference",
            "repro.core.estimation",
            "repro.core.scd",
            "repro.core.twf",
            "repro.core.theory",
            "repro.core.sized",
            "repro.core.sized_policy",
            "repro.policies",
            "repro.policies.base",
            "repro.policies.greedy",
            "repro.policies.jsq",
            "repro.policies.power_of_d",
            "repro.policies.jiq",
            "repro.policies.lsq",
            "repro.policies.led",
            "repro.policies.round_robin",
            "repro.policies.random_policies",
            "repro.sim",
            "repro.sim.engine",
            "repro.sim.arrivals",
            "repro.sim.service",
            "repro.sim.server",
            "repro.sim.metrics",
            "repro.sim.seeding",
            "repro.sim.sized",
            "repro.workloads",
            "repro.workloads.heterogeneity",
            "repro.workloads.scenarios",
            "repro.analysis",
            "repro.analysis.runner",
            "repro.analysis.ccdf",
            "repro.analysis.tables",
            "repro.analysis.runtime",
            "repro.analysis.stability",
            "repro.analysis.persistence",
            "repro.analysis.replication",
            "repro.analysis.herding",
            "repro.cli",
        ],
    )
    def test_module_docstrings(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.split()) > 5, (
            f"{module_name} lacks a substantive module docstring"
        )

    def test_doctest_examples_in_package_docstring(self):
        """The docstring's non-skipped example must actually hold."""
        import numpy as np

        q, mu = np.array([2, 1, 3, 1]), np.array([5.0, 2.0, 1.0, 1.0])
        assert repro.compute_iwl(q, mu, arrivals=7) == 1.375
