"""Tests for the coordination service (repro.service).

The load-bearing property: an experiment executed by a federation of
workers -- through every failure the protocol claims to survive
(SIGKILL mid-cell, wedged workers that miss heartbeats, stale messages
from presumed-dead lease holders) -- produces records bit-identical to
a plain SerialExecutor run.  Around that sit the framed wire transport,
the ``sharded:N:socket`` kernel strategy, job bookkeeping, and the HTTP
job API with its streaming telemetry endpoint.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import signal
import socket
import struct
import threading
import time

import pytest

from repro.analysis.persistence import (
    experiment_from_descriptor,
    load_experiment,
)
from repro.experiments.executor import SerialExecutor, simulate_cell
from repro.experiments.grid import Experiment
from repro.experiments.workload import BurstyArrivalFactory, WorkloadSpec
from repro.runs import Run, iter_events
from repro.service import (
    ChannelClosed,
    FederationCoordinator,
    FederationWorker,
    JobManager,
    MessageChannel,
    ServiceAPI,
    run_worker,
    validate_submittable,
)
from repro.service.client import (
    ServiceError,
    iter_job_events,
    job_result,
    job_status,
    submit_job,
)
from repro.service.wire import connect_channel
from repro.workloads.scenarios import SystemSpec

SYSTEM = SystemSpec(num_servers=8, num_dispatchers=2)


def small_experiment(rounds: int = 400, loads=(0.8, 0.95)) -> Experiment:
    return Experiment(
        policies=["jsq", "scd"],
        systems=SYSTEM,
        loads=list(loads),
        rounds=rounds,
    )


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s")


# ---------------------------------------------------------------------------
# The wire transport.
# ---------------------------------------------------------------------------


def channel_pair() -> tuple[MessageChannel, MessageChannel]:
    a, b = socket.socketpair()
    return MessageChannel(a), MessageChannel(b)


class TestMessageChannel:
    def test_round_trips_arbitrary_objects(self):
        left, right = channel_pair()
        payloads = [
            ("block", 3, list(range(100))),
            {"nested": {"tuple": (1, 2.5, None)}},
            b"\x00" * 100_000,  # larger than any single recv() chunk
        ]
        for payload in payloads:
            left.send(payload)
            assert right.recv() == payload
        left.close()
        right.close()

    def test_closed_peer_raises_channel_closed_as_eoferror(self):
        left, right = channel_pair()
        left.close()
        with pytest.raises(ChannelClosed):
            right.recv()
        assert issubclass(ChannelClosed, EOFError)  # pipe-clause compatible

    def test_poll_reflects_message_availability(self):
        left, right = channel_pair()
        assert not right.poll(0.0)
        left.send("ping")
        wait_until(lambda: right.poll(0.0))
        assert right.recv() == "ping"
        left.close()
        right.close()

    def test_oversized_frame_rejected_not_allocated(self):
        a, b = socket.socketpair()
        right = MessageChannel(b)
        a.sendall(struct.pack(">Q", 1 << 62))  # absurd length header
        with pytest.raises(ChannelClosed, match="oversized"):
            right.recv()
        a.close()
        right.close()

    def test_concurrent_senders_never_interleave_frames(self):
        left, right = channel_pair()
        per_thread = 50
        threads = [
            threading.Thread(
                target=lambda tag: [
                    left.send((tag, i, b"x" * 4096)) for i in range(per_thread)
                ],
                args=(tag,),
            )
            for tag in range(4)
        ]
        for thread in threads:
            thread.start()
        received = [right.recv() for _ in range(4 * per_thread)]
        for thread in threads:
            thread.join()
        by_tag = {tag: [] for tag in range(4)}
        for tag, i, blob in received:
            assert blob == b"x" * 4096  # a torn frame would garble this
            by_tag[tag].append(i)
        for sequence in by_tag.values():
            assert sequence == sorted(sequence)  # per-sender FIFO
        left.close()
        right.close()


# ---------------------------------------------------------------------------
# The socket shard strategy.
# ---------------------------------------------------------------------------


class TestSocketShardStrategy:
    def test_bit_identical_to_fast(self):
        kwargs = dict(rounds=600, warmup=0)
        fast = simulate_cell(
            "jsq", SYSTEM, 0.9, WorkloadSpec.paper(), 123, backend="fast", **kwargs
        )
        over_sockets = simulate_cell(
            "jsq",
            SYSTEM,
            0.9,
            WorkloadSpec.paper(),
            123,
            backend="sharded:2:socket",
            **kwargs,
        )
        assert fast.histogram.state_dict() == over_sockets.histogram.state_dict()
        assert fast.queue_series.values.tolist() == over_sockets.queue_series.values.tolist()

    def test_pause_resume_over_sockets_is_bit_identical(self, tmp_path):
        from repro.experiments.executor import build_cell_simulation

        def build():
            return build_cell_simulation(
                "scd",
                SYSTEM,
                0.85,
                WorkloadSpec.paper(),
                7,
                800,
                warmup=256,
                backend="sharded:2:socket",
            )

        baseline = build().run()
        run = Run.create(build(), tmp_path / "run")
        assert run.execute(max_legs=1) is None  # paused at a checkpoint
        resumed = run.execute()
        assert resumed.histogram.state_dict() == baseline.histogram.state_dict()

    def test_registry_grammar_accepts_socket(self):
        from repro.sim.sharding import _ShardedParams

        params = _ShardedParams.from_param("4:socket")
        assert (params.shards, params.strategy) == (4, "socket")

    def test_unknown_strategy_names_socket_in_error(self):
        from repro.sim.sharding import resolve_shard_strategy

        with pytest.raises(ValueError, match="socket"):
            resolve_shard_strategy("quantum")


# ---------------------------------------------------------------------------
# Job bookkeeping.
# ---------------------------------------------------------------------------


class TestJobManager:
    def test_cells_hand_out_in_grid_order(self, tmp_path):
        manager = JobManager(tmp_path)
        experiment = small_experiment()
        job = manager.submit(experiment)
        indices = []
        while (pulled := manager.next_cell()) is not None:
            pulled_job, cell, checkpoint_every, adoption = pulled
            assert pulled_job == job
            assert checkpoint_every == 1
            assert adoption is None
            indices.append(cell.index)
        assert indices == list(range(experiment.size))
        manager.close()

    def test_requeued_cell_comes_back_first(self, tmp_path):
        manager = JobManager(tmp_path)
        job = manager.submit(small_experiment())
        _, first, _, _ = manager.next_cell()
        manager.requeue_cell(job, first.index)
        _, again, _, _ = manager.next_cell()
        assert again.index == first.index
        manager.close()

    def test_repeated_failures_fail_the_job(self, tmp_path):
        manager = JobManager(tmp_path)
        job = manager.submit(small_experiment())
        for _ in range(3):
            _, cell, _, _ = manager.next_cell()
            manager.requeue_cell(job, cell.index, failed=True)
            if manager.job_state(job) == "failed":
                break
        assert manager.job_state(job) == "failed"
        assert manager.next_cell() is None  # failed jobs stop handing out work
        manager.close()

    def test_duplicate_record_rejected(self, tmp_path):
        manager = JobManager(tmp_path)
        experiment = small_experiment(rounds=300, loads=(0.8,))
        job = manager.submit(experiment)
        records = SerialExecutor().run(experiment)
        assert manager.record_result(job, 0, records[0])
        assert not manager.record_result(job, 0, records[0])
        manager.close()

    def test_result_assembles_in_grid_order_regardless_of_arrival(self, tmp_path):
        manager = JobManager(tmp_path)
        experiment = small_experiment(rounds=300)
        job = manager.submit(experiment)
        records = SerialExecutor().run(experiment)
        for index in reversed(range(len(records))):  # deliver backwards
            manager.record_result(job, index, records[index])
        assert manager.job_state(job) == "finished"
        stored = load_experiment(manager.result_path(job))
        assert tuple(stored.records) == tuple(records)
        manager.close()

    def test_job_numbering_continues_from_disk(self, tmp_path):
        manager = JobManager(tmp_path)
        first = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        manager.close()
        reborn = JobManager(tmp_path)
        second = reborn.submit(small_experiment(rounds=300, loads=(0.8,)))
        assert second != first
        assert int(second.split("-")[1]) > int(first.split("-")[1])
        reborn.close()

    def test_lossy_workloads_rejected_at_submission(self, tmp_path):
        manager = JobManager(tmp_path)
        # Registered factories survive the descriptor round-trip, so a
        # rebuilt bursty experiment submits like the original object.
        bursty = Experiment(
            policies=["jsq"],
            systems=SYSTEM,
            loads=[0.9],
            rounds=300,
            workloads=(
                WorkloadSpec(name="bursty", arrivals=BurstyArrivalFactory()),
            ),
        )
        rebuilt = experiment_from_descriptor(bursty.describe())
        assert rebuilt == bursty
        manager.submit(rebuilt)
        # Job-size distributions have no registry entry: still lossy,
        # still rejected loudly at the API boundary.
        from repro.sim.sized import GeometricSize

        sized = Experiment(
            policies=["jsq"],
            systems=SYSTEM,
            loads=[0.9],
            rounds=300,
            workloads=(WorkloadSpec.sized(GeometricSize(mean_size=2.0)),),
        )
        rebuilt_sized = experiment_from_descriptor(sized.describe())
        with pytest.raises(ValueError, match="round-trip"):
            validate_submittable(rebuilt_sized)
        with pytest.raises(ValueError, match="round-trip"):
            manager.submit(rebuilt_sized)
        # the original object (factories intact) submits fine in-process
        manager.submit(sized)
        manager.close()

    def test_checkpoint_cache_keeps_only_retained_rounds(self, tmp_path):
        manager = JobManager(tmp_path)
        job = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        for round_index in (256, 512, 768):
            blob = pickle.dumps({"round": round_index})
            manager.store_checkpoint(
                job, 0, {"round": round_index, "engine": "unsized"}, blob
            )
        _, _, _, adoption = manager.next_cell()
        manifest, blob = adoption
        assert manifest["round"] == 768  # adoption always gets the newest
        manager.close()


# ---------------------------------------------------------------------------
# Federation end to end (in-process coordinator + worker threads).
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    manager = JobManager(tmp_path / "data")
    coordinator = FederationCoordinator(
        manager, heartbeat_interval=0.2, heartbeat_misses=3, retry_after=0.05
    )
    coordinator.start()
    api = ServiceAPI(manager, coordinator)
    api.start()
    yield manager, coordinator, api
    api.stop()
    coordinator.stop()
    manager.close()


def start_worker_thread(coordinator, **kwargs) -> threading.Thread:
    kwargs.setdefault("exit_when_idle", True)
    kwargs.setdefault("poll_interval", 0.05)
    thread = threading.Thread(
        target=run_worker, args=(coordinator.address,), kwargs=kwargs
    )
    thread.start()
    return thread


class TestFederation:
    def test_two_workers_match_serial_execution(self, service):
        manager, coordinator, _api = service
        experiment = small_experiment()
        baseline = SerialExecutor().run(experiment)
        job = manager.submit(experiment)
        threads = [
            start_worker_thread(coordinator, name=f"w{i}") for i in range(2)
        ]
        for thread in threads:
            thread.join(timeout=120)
        assert manager.job_state(job) == "finished"
        stored = load_experiment(manager.result_path(job))
        assert tuple(stored.records) == tuple(baseline)

    def test_job_telemetry_event_contract(self, service):
        manager, coordinator, _api = service
        experiment = small_experiment(rounds=300, loads=(0.8,))
        job = manager.submit(experiment)
        start_worker_thread(coordinator, name="solo").join(timeout=120)
        kinds = [e["event"] for e in iter_events(manager.telemetry_path(job))]
        assert kinds[0] == "job-submitted"
        assert kinds[-1] == "job-finished"
        assert kinds.count("cell-leased") == experiment.size
        assert kinds.count("cell-finished") == experiment.size

    def test_worker_exception_requeues_then_fails_job(self, service):
        manager, coordinator, _api = service
        # Emulate a poisoned cell by breaking the grid object after
        # submission (Experiment validates backends at construction, so
        # the unknown name can only be injected at this seam) -- the
        # worker raises in build_cell_simulation, reports cell-failed,
        # and after MAX_CELL_FAILURES attempts the job fails.
        experiment = small_experiment(rounds=300, loads=(0.8,))
        job = manager.submit(experiment)
        poisoned = manager.job(job)
        for index, cell in list(poisoned.cells.items()):
            poisoned.cells[index] = cell.__class__(
                **{**cell.__dict__, "backend": "no-such-backend"}
            )
        start_worker_thread(coordinator, name="crasher").join(timeout=120)
        wait_until(lambda: manager.job_state(job) == "failed")
        kinds = [e["event"] for e in iter_events(manager.telemetry_path(job))]
        assert "cell-failed" in kinds
        assert "job-failed" in kinds


class TestFailover:
    def test_sigkilled_worker_cell_is_adopted_bit_identically(self, tmp_path):
        """The PR's headline guarantee, end to end: kill -9 a worker
        mid-cell, watch the lease revoke and the cell resume elsewhere
        from the dead worker's last uploaded checkpoint, and compare
        the final records against SerialExecutor bit for bit."""
        experiment = Experiment(
            policies=["jsq"],
            systems=SYSTEM,
            loads=[0.9],
            rounds=60_000,
            backend="fast",
        )
        baseline = SerialExecutor().run(experiment)
        manager = JobManager(tmp_path / "data")
        coordinator = FederationCoordinator(
            manager, heartbeat_interval=0.2, heartbeat_misses=3, retry_after=0.05
        )
        coordinator.start()
        try:
            job = manager.submit(experiment, checkpoint_every=8)
            context = multiprocessing.get_context()
            victim = context.Process(
                target=run_worker,
                args=(coordinator.address,),
                kwargs={"name": "victim"},
            )
            victim.start()

            def first_checkpoint_uploaded():
                leases = coordinator.status()["leases"]
                return bool(leases and leases[0]["checkpoint_round"])

            wait_until(first_checkpoint_uploaded, timeout=60)
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()

            rescue = start_worker_thread(coordinator, name="rescue")
            rescue.join(timeout=180)
            assert manager.job_state(job) == "finished"

            events = list(iter_events(manager.telemetry_path(job)))
            reassigned = [e for e in events if e["event"] == "cell-reassigned"]
            assert reassigned and reassigned[0]["checkpoint_round"] >= 2048
            leases = [e for e in events if e["event"] == "cell-leased"]
            # the re-lease adopted the dead worker's newest checkpoint
            assert leases[-1]["adopted_round"] == reassigned[-1]["checkpoint_round"]

            stored = load_experiment(manager.result_path(job))
            assert tuple(stored.records) == tuple(baseline)
        finally:
            coordinator.stop()
            manager.close()

    def test_silent_worker_loses_lease_and_stale_messages_bounce(self, service):
        """A wedged worker (socket open, no heartbeats) is declared
        lost; its checkpoint uploads are dropped (torn lease) and its
        late cell-done is acknowledged-but-rejected (duplicate lease)."""
        manager, coordinator, _api = service
        experiment = small_experiment(rounds=300, loads=(0.8,))
        baseline = SerialExecutor().run(experiment)
        job = manager.submit(experiment)

        zombie = connect_channel(coordinator.address)
        zombie.send(("register", {"name": "zombie", "pid": 4242}))
        kind, info = zombie.recv()
        assert kind == "registered"
        zombie.send(("request-cell",))
        kind, lease = zombie.recv()
        assert kind == "lease"
        token = lease["token"]
        # ... then silence: no heartbeats, no progress.
        wait_until(lambda: not coordinator.status()["leases"], timeout=10)
        kinds = [e["event"] for e in iter_events(manager.telemetry_path(job))]
        assert "cell-reassigned" in kinds

        # Torn lease: a checkpoint upload quoting the revoked token is
        # dropped without touching the adoption cache.
        stale = connect_channel(coordinator.address)
        stale.send(("register", {"name": "late", "pid": 4243}))
        stale.recv()
        stale.send(
            ("checkpoint", token, {"round": 256, "engine": "unsized"}, b"blob")
        )
        # Duplicate lease: the revoked holder's finished record bounces.
        stale.send(("cell-done", token, baseline[lease["cell"].index]))
        kind, ack = stale.recv()
        assert (kind, ack["accepted"]) == ("ack", False)
        events = list(iter_events(manager.telemetry_path(job)))
        assert not [e for e in events if e["event"] == "checkpoint-received"]
        assert manager.job_status(job)["cells_done"] == 0

        # A healthy worker still completes the job bit-identically.
        start_worker_thread(coordinator, name="healthy").join(timeout=120)
        assert manager.job_state(job) == "finished"
        stored = load_experiment(manager.result_path(job))
        assert tuple(stored.records) == tuple(baseline)
        zombie.close()
        stale.close()


# ---------------------------------------------------------------------------
# The HTTP job API.
# ---------------------------------------------------------------------------


class TestServiceAPI:
    def test_submit_poll_stream_result_round_trip(self, service):
        manager, coordinator, api = service
        experiment = small_experiment(rounds=300, loads=(0.8,))
        baseline = SerialExecutor().run(experiment)

        created = submit_job(api.url, experiment.describe())
        job = created["job"]
        assert created["cells"] == experiment.size

        worker = start_worker_thread(coordinator, name="http-w")
        # follow=True streams live until the job leaves "running".
        events = list(iter_job_events(api.url, job, follow=True))
        worker.join(timeout=120)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "job-submitted"
        assert kinds[-1] == "job-finished"
        assert kinds.count("cell-finished") == experiment.size

        status = job_status(api.url, job)
        assert (status["state"], status["cells_done"]) == (
            "finished",
            experiment.size,
        )
        fetched = job_result(api.url, job)
        assert tuple(fetched.records) == tuple(baseline)
        # non-follow replay returns the same events and terminates
        replay = list(iter_job_events(api.url, job))
        assert [e["event"] for e in replay] == kinds

    def test_bad_descriptor_is_a_400(self, service):
        _manager, _coordinator, api = service
        with pytest.raises(ServiceError) as excinfo:
            submit_job(api.url, {"policies": []})
        assert excinfo.value.code == 400

    def test_lossy_descriptor_is_a_400(self, service):
        from repro.sim.sized import GeometricSize

        _manager, _coordinator, api = service
        # Job-size distributions have no factory registry entry, so the
        # descriptor is lossy and the API must refuse it.
        sized = Experiment(
            policies=["jsq"],
            systems=SYSTEM,
            loads=[0.9],
            rounds=300,
            workloads=(WorkloadSpec.sized(GeometricSize(mean_size=2.0)),),
        )
        with pytest.raises(ServiceError) as excinfo:
            submit_job(api.url, sized.describe())
        assert excinfo.value.code == 400
        assert "round-trip" in str(excinfo.value)

    def test_registered_factory_descriptor_submits(self, service):
        _manager, _coordinator, api = service
        # Registered factories survive the wire: bursty submits by
        # descriptor now instead of 400ing at the boundary.
        bursty = Experiment(
            policies=["jsq"],
            systems=SYSTEM,
            loads=[0.9],
            rounds=300,
            workloads=(
                WorkloadSpec(name="bursty", arrivals=BurstyArrivalFactory()),
            ),
        )
        created = submit_job(api.url, bursty.describe())
        assert created["job"].startswith("job-")

    def test_unknown_job_is_a_404(self, service):
        _manager, _coordinator, api = service
        with pytest.raises(ServiceError) as excinfo:
            job_status(api.url, "job-9999")
        assert excinfo.value.code == 404

    def test_unfinished_result_is_a_404_with_state(self, service):
        manager, _coordinator, api = service
        job = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        with pytest.raises(ServiceError) as excinfo:
            job_result(api.url, job)
        assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# CLI verbs against an in-process service.
# ---------------------------------------------------------------------------


class TestServiceCLI:
    def test_submit_status_and_worker_verbs(self, service, capsys, tmp_path):
        from repro.cli import main

        manager, coordinator, api = service
        experiment = small_experiment(rounds=300, loads=(0.8,))
        baseline = SerialExecutor().run(experiment)
        host, port = coordinator.address

        assert (
            main(
                [
                    "submit",
                    "--url",
                    api.url,
                    "--policies",
                    "jsq",
                    "scd",
                    "--systems",
                    "8x2",
                    "--loads",
                    "0.8",
                    "--rounds",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "submitted job-0001" in out

        worker = threading.Thread(
            target=main,
            args=(
                [
                    "worker",
                    "--connect",
                    f"{host}:{port}",
                    "--exit-when-idle",
                    "--poll-interval",
                    "0.05",
                    "--workdir",
                    str(tmp_path / "scratch"),
                ],
            ),
        )
        worker.start()
        worker.join(timeout=120)
        assert manager.job_state("job-0001") == "finished"
        stored = load_experiment(manager.result_path("job-0001"))
        assert tuple(stored.records) == tuple(baseline)

        assert main(["status", "--url", api.url]) == 0
        out = capsys.readouterr().out
        assert "worker(s)" in out
        assert main(["status", "--url", api.url, "job-0001", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "finished"


# ---------------------------------------------------------------------------
# Job priorities and cancellation.
# ---------------------------------------------------------------------------


class TestJobPriorities:
    def test_higher_priority_cells_lease_first(self, tmp_path):
        manager = JobManager(tmp_path)
        low = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        high = manager.submit(
            small_experiment(rounds=300, loads=(0.8,)), priority=5
        )
        order = []
        while (pulled := manager.next_cell()) is not None:
            order.append(pulled[0])
        split = order.index(low)
        assert set(order[:split]) == {high}
        assert set(order[split:]) == {low}
        manager.close()

    def test_default_priority_keeps_fifo_submission_order(self, tmp_path):
        manager = JobManager(tmp_path)
        first = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        second = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        jobs = []
        while (pulled := manager.next_cell()) is not None:
            jobs.append(pulled[0])
        assert jobs == [first] * 2 + [second] * 2
        manager.close()

    def test_requeue_front_of_band_without_preempting(self, tmp_path):
        manager = JobManager(tmp_path)
        low = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        job_id, cell, _, _ = manager.next_cell()
        assert job_id == low
        high = manager.submit(
            small_experiment(rounds=300, loads=(0.8,)), priority=9
        )
        manager.requeue_cell(low, cell.index)
        # Every high-priority cell still outranks the requeued one...
        assert manager.next_cell()[0] == high
        assert manager.next_cell()[0] == high
        # ...but within its band the requeued cell is first again.
        again_job, again, _, _ = manager.next_cell()
        assert (again_job, again.index) == (low, cell.index)
        manager.close()

    def test_priority_lands_in_status_and_manifest(self, tmp_path):
        manager = JobManager(tmp_path)
        job = manager.submit(
            small_experiment(rounds=300, loads=(0.8,)), priority=3
        )
        assert manager.job_status(job)["priority"] == 3
        manifest = json.loads(
            (manager.jobs_dir / job / "job.json").read_text()
        )
        assert manifest["priority"] == 3
        manager.close()


class TestJobCancellation:
    def test_cancel_drops_queued_cells(self, tmp_path):
        manager = JobManager(tmp_path)
        job = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        assert manager.cancel(job)
        assert manager.job_state(job) == "cancelled"
        assert manager.next_cell() is None
        assert not manager.cancel(job)  # already left "running"
        manager.close()

    def test_inflight_lease_drains_harmlessly(self, tmp_path):
        manager = JobManager(tmp_path)
        experiment = small_experiment(rounds=300, loads=(0.8,))
        job = manager.submit(experiment)
        _, cell, _, _ = manager.next_cell()
        records = SerialExecutor().run(experiment)
        manager.cancel(job)
        # A late result and a revoked-lease requeue both hit the state
        # guard: acknowledged, dropped, nothing re-enters the queue.
        assert not manager.record_result(job, cell.index, records[cell.index])
        manager.requeue_cell(job, cell.index)
        assert manager.next_cell() is None
        assert manager.job_status(job)["cells_done"] == 0
        manager.close()

    def test_cancel_unknown_job_raises_key_error(self, tmp_path):
        manager = JobManager(tmp_path)
        with pytest.raises(KeyError):
            manager.cancel("job-9999")
        manager.close()

    def test_cancel_emits_telemetry(self, tmp_path):
        manager = JobManager(tmp_path)
        job = manager.submit(small_experiment(rounds=300, loads=(0.8,)))
        manager.cancel(job)
        kinds = [e["event"] for e in iter_events(manager.telemetry_path(job))]
        assert kinds[-1] == "job-cancelled"
        manager.close()

    def test_cancel_over_http_and_cli(self, service, capsys):
        from repro.cli import main
        from repro.service.client import cancel_job

        manager, _coordinator, api = service
        job = manager.submit(
            small_experiment(rounds=300, loads=(0.8,)), priority=2
        )
        status = cancel_job(api.url, job)
        assert (status["state"], status["priority"]) == ("cancelled", 2)
        # cancelling again over the CLI is a no-op 200, not an error
        assert main(["cancel", job, "--url", api.url]) == 0
        assert "cancelled" in capsys.readouterr().out
        with pytest.raises(ServiceError) as excinfo:
            cancel_job(api.url, "job-9999")
        assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# Worker auth tokens.
# ---------------------------------------------------------------------------


@pytest.fixture()
def token_service(tmp_path):
    manager = JobManager(tmp_path / "data")
    coordinator = FederationCoordinator(
        manager,
        heartbeat_interval=0.2,
        heartbeat_misses=3,
        retry_after=0.05,
        token="s3cret",
    )
    coordinator.start()
    yield manager, coordinator
    coordinator.stop()
    manager.close()


class TestWorkerAuth:
    def test_wrong_token_rejected_and_channel_closed(self, token_service):
        _manager, coordinator = token_service
        worker = FederationWorker(
            coordinator.address, name="intruder", token="wrong"
        )
        with pytest.raises(RuntimeError, match="invalid auth token"):
            worker.run()
        assert coordinator.status()["workers"] == []

    def test_missing_token_rejected(self, token_service):
        _manager, coordinator = token_service
        worker = FederationWorker(coordinator.address, name="anon")
        with pytest.raises(RuntimeError, match="invalid auth token"):
            worker.run()

    def test_correct_token_serves_jobs_end_to_end(self, token_service):
        manager, coordinator = token_service
        experiment = small_experiment(rounds=300, loads=(0.8,))
        baseline = SerialExecutor().run(experiment)
        job = manager.submit(experiment)
        start_worker_thread(
            coordinator, name="trusted", token="s3cret"
        ).join(timeout=120)
        assert manager.job_state(job) == "finished"
        stored = load_experiment(manager.result_path(job))
        assert tuple(stored.records) == tuple(baseline)

    def test_rejection_emits_telemetry(self, token_service):
        manager, coordinator = token_service
        with pytest.raises(RuntimeError):
            FederationWorker(coordinator.address, name="x", token="nope").run()
        events = list(iter_events(manager.telemetry.path))
        rejected = [e for e in events if e["event"] == "worker-rejected"]
        assert rejected and rejected[-1]["reason"] == "invalid-token"

    def test_empty_token_rejected_at_construction(self, tmp_path):
        manager = JobManager(tmp_path)
        with pytest.raises(ValueError):
            FederationCoordinator(manager, token="")
        manager.close()

    def test_tokenless_coordinator_still_accepts_anyone(self, service):
        manager, coordinator, _api = service
        experiment = small_experiment(rounds=300, loads=(0.8,))
        job = manager.submit(experiment)
        start_worker_thread(coordinator, name="open").join(timeout=120)
        assert manager.job_state(job) == "finished"
