"""Tests for the mean-field (fluid-limit) backend.

The contract under test (ISSUE 10 acceptance):

* the fluid algebra is exact where it claims to be: departures are a
  linear probability map, Poisson-split arrivals a convolution, full-JSQ
  arrivals a water-filling, and all of them conserve mass and preserve
  the tail polytope;
* the integrator raises :class:`InvariantError` instead of silently
  returning broken states, and the backend raises on truncation
  overflow instead of reporting a bounded lie for an unstable system;
* capability flags are honest and enforced at every seam -- Experiment
  construction, Run.create, service submission -- before anything runs;
* statistical parity with the ``fast`` kernel at >= 200 servers on
  heterogeneous systems (including a diurnal rate-curve scenario), with
  the shared ensemble tolerance shrinking as n grows;
* cost is independent of n: a million-server system runs in seconds.
"""

import numpy as np
import pytest
from _helpers import assert_ensemble_close, ensemble_tolerance
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import Experiment, WorkloadSpec
from repro.meanfield import (
    FixedStepIntegrator,
    FluidModel,
    InvariantError,
    MeanFieldBackend,
    ServerClasses,
    arrival_choices_for_policy,
    euler_step,
    rk4_step,
)
from repro.policies.base import make_policy
from repro.sim.arrivals import ModulatedPoissonArrivals, PoissonArrivals
from repro.sim.backends import backend_capabilities, make_backend
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.probes import ProbeSpec
from repro.sim.service import GeometricService
from repro.workloads.scenarios import SystemSpec

#: Heterogeneous rate vectors for the parity suite (all n >= 200).
HET_SYSTEMS = {
    "het2": np.repeat([1.0, 3.0], [100, 100]),
    "het4": np.tile([0.5, 1.0, 2.0, 4.0], 60),
}


def build_sim(
    policy,
    rates,
    rho,
    rounds,
    *,
    m=10,
    seed=0,
    warmup=0,
    backend="meanfield",
    scenario=None,
    probes=(),
):
    rates = np.asarray(rates, dtype=np.float64)
    lambdas = np.full(m, rho * rates.sum() / m)
    return Simulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(lambdas),
        service=GeometricService(rates),
        config=SimulationConfig(
            rounds=rounds,
            seed=seed,
            warmup=warmup,
            backend=backend,
            scenario=scenario,
            probes=probes,
        ),
    )


def run_once(policy, rates, rho, rounds, **kwargs):
    return build_sim(policy, rates, rho, rounds, **kwargs).run()


# ---------------------------------------------------------------------------
# Policy mapping
# ---------------------------------------------------------------------------


class TestArrivalChoices:
    def test_regimes(self):
        assert arrival_choices_for_policy("random", 50) is None
        assert arrival_choices_for_policy("rr", 50) is None
        assert arrival_choices_for_policy("jsq", 50) == 50
        assert arrival_choices_for_policy("jsq(2)", 50) == 2
        # d capped at n: jsq(100) of 50 servers is full JSQ.
        assert arrival_choices_for_policy("jsq(100)", 50) == 50

    @pytest.mark.parametrize("name", ["hjsq(2)", "sed", "wr", "scd", "lsq"])
    def test_rate_aware_policies_rejected(self, name):
        with pytest.raises(ValueError, match="no fluid drift"):
            arrival_choices_for_policy(name, 50)


# ---------------------------------------------------------------------------
# Class quantization
# ---------------------------------------------------------------------------


class TestServerClasses:
    def test_exact_grouping_few_distinct_rates(self):
        rates = np.array([3.0, 1.0, 3.0, 1.0, 1.0])
        classes = ServerClasses.from_rates(rates)
        assert classes.num_classes == 2
        np.testing.assert_allclose(classes.mu, [1.0, 3.0])
        np.testing.assert_allclose(classes.gamma, [0.6, 0.4])
        np.testing.assert_array_equal(classes.class_of, [1, 0, 1, 0, 0])
        np.testing.assert_allclose(
            classes.expand(classes.mu), rates
        )

    def test_binning_preserves_aggregate_capacity(self):
        rng = np.random.default_rng(3)
        rates = rng.uniform(1.0, 10.0, size=101)  # 101 distinct floats
        classes = ServerClasses.from_rates(rates, max_classes=8)
        assert classes.num_classes == 8
        # Bin-mean quantization preserves each bin's (hence the fleet's)
        # total service capacity.
        total = classes.num_servers * float(classes.gamma @ classes.mu)
        assert total == pytest.approx(float(rates.sum()))
        # Bins are contiguous in rate order.
        order = np.argsort(rates, kind="stable")
        assert np.all(np.diff(classes.class_of[order]) >= 0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            ServerClasses.from_rates(np.array([]))
        with pytest.raises(ValueError, match="positive"):
            ServerClasses.from_rates(np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="max_classes"):
            ServerClasses.from_rates(np.array([1.0]), max_classes=0)


# ---------------------------------------------------------------------------
# Fluid round maps
# ---------------------------------------------------------------------------


def two_class_model(depth=32, choices=None):
    classes = ServerClasses.from_rates(np.repeat([1.0, 3.0], [6, 4]))
    return FluidModel(classes, depth=depth, choices=choices)


class TestFluidMaps:
    def test_pmf_partitions_unity(self):
        model = two_class_model()
        S = model.project(np.linspace(0.9, 0.0, model.depth)[None, :].repeat(2, 0))
        p = model.pmf(S)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= -1e-12)

    def test_poisson_arrivals_conserve_mass(self):
        model = two_class_model(depth=64)
        S = model.empty_state()
        a = 0.7
        S_new, joins = model.apply_poisson_arrivals(S, a)
        gained = float(model.classes.gamma @ joins.sum(axis=1))
        assert gained == pytest.approx(a, abs=1e-9)
        np.testing.assert_allclose(S_new - S, joins)
        # From empty, the new tail is exactly the Poisson tail.
        np.testing.assert_allclose(S_new[0], model.poisson_tail(a))

    def test_waterfill_levels_then_conserves(self):
        model = two_class_model(depth=32)
        # Class 0 at level 2, class 1 empty.
        S = model.empty_state()
        S[0, :2] = 1.0
        a = 0.5
        S_new, joins = model.apply_waterfill_arrivals(S, a)
        gained = float(model.classes.gamma @ joins.sum(axis=1))
        assert gained == pytest.approx(a, abs=1e-12)
        # Jobs go to the empty class first: class 0 untouched.
        np.testing.assert_allclose(S_new[0], S[0])
        # Class-1 servers (gamma 0.4) absorb 0.5 jobs/server overall ->
        # 1.25 each, leveling them to 1 and lifting level 2 by 0.25.
        assert S_new[1, 0] == pytest.approx(1.0)
        assert S_new[1, 1] == pytest.approx(0.25)

    def test_waterfill_saturation_pools_at_depth(self):
        model = two_class_model(depth=4)
        S_new, _ = model.apply_waterfill_arrivals(model.empty_state(), 10.0)
        np.testing.assert_allclose(S_new, 1.0)

    def test_departures_are_exact_for_geometric_capacity(self):
        # A single class pinned at level q: departure flux at tail k is
        # beta**(q-k+1) -- the closed form, not an approximation.
        classes = ServerClasses.from_rates(np.full(5, 2.0))
        model = FluidModel(classes, depth=16)
        q = 3
        S = model.empty_state()
        S[0, :q] = 1.0
        flux = model.departure_flux(S)
        beta = 2.0 / 3.0
        expected = np.zeros(16)
        expected[:q] = beta ** (q - np.arange(q))
        np.testing.assert_allclose(flux[0], expected)

    def test_depart_keeps_polytope(self):
        model = two_class_model()
        S = model.project(
            np.random.default_rng(0).uniform(0, 1, (2, model.depth))
        )
        S_new, _ = model.depart(S)
        assert np.all(S_new >= 0) and np.all(S_new <= 1)
        assert np.all(np.diff(S_new, axis=1) <= 1e-12)

    def test_choice_drift_conserves_unit_job_rate(self):
        model = two_class_model(choices=3)
        S = model.project(
            np.random.default_rng(1).uniform(0, 0.8, (2, model.depth))
        )
        S[:, model.depth // 2 :] = 0.0  # state clear of the truncation depth
        drift = model.arrival_drift(S)
        # Each job joins exactly one queue position: total drift mass is
        # 1 - ybar_K**d, which is 1 for states clear of the depth.
        total = float(model.classes.gamma @ drift.sum(axis=1))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_choice_drift_d1_is_uniform_split(self):
        model = two_class_model(choices=1)
        S = model.project(
            np.random.default_rng(2).uniform(0, 0.8, (2, model.depth))
        )
        drift = model.arrival_drift(S)
        np.testing.assert_allclose(drift, model.pmf(S)[:, : model.depth])

    def test_round_map_reaches_fixed_point(self):
        # Subcritical Poisson split: iterating the exact round map must
        # converge to a stationary tail profile.
        model = two_class_model(depth=64)
        a = 0.5  # per-server load below mu_min = 1
        S = model.empty_state()
        for _ in range(3000):
            S, _ = model.apply_poisson_arrivals(S, a)
            S, _ = model.depart(S)
        S2, _ = model.apply_poisson_arrivals(S, a)
        S2, _ = model.depart(S2)
        assert float(np.abs(S2 - S).max()) < 1e-10


# ---------------------------------------------------------------------------
# Integrator
# ---------------------------------------------------------------------------


class TestIntegrator:
    def decay(self, t, y):
        return -y

    def test_steppers_match_exponential_decay(self):
        y0 = np.array([1.0])
        euler = euler_step(self.decay, 0.0, y0, 0.01)
        rk4 = rk4_step(self.decay, 0.0, y0, 0.01)
        exact = np.exp(-0.01)
        assert abs(rk4[0] - exact) < abs(euler[0] - exact) < 1e-4

    def test_integrate_accuracy_orders(self):
        y0 = np.array([1.0])
        exact = float(np.exp(-1.0))
        for method, tol in (("euler", 1e-2), ("rk4", 1e-6)):
            out = FixedStepIntegrator(method=method, dt=0.05).integrate(
                self.decay, y0, 0.0, 1.0
            )
            assert out[0] == pytest.approx(exact, abs=tol)

    def test_bounds_violation_raises(self):
        runaway = lambda t, y: np.full_like(y, -100.0)  # noqa: E731
        with pytest.raises(InvariantError, match="left"):
            FixedStepIntegrator(dt=0.1).integrate(
                runaway, np.array([0.5]), 0.0, 1.0
            )

    def test_non_finite_state_raises(self):
        blowup = lambda t, y: y / 0.0  # noqa: E731
        with np.errstate(divide="ignore", invalid="ignore"):
            with pytest.raises(InvariantError, match="non-finite"):
                FixedStepIntegrator(dt=0.1).integrate(
                    blowup, np.array([0.5]), 0.0, 1.0
                )

    def test_conservation_violation_raises(self):
        # Mass grows at rate 2 but the declared bound is 1.
        grow = lambda t, y: np.full_like(y, 2.0)  # noqa: E731
        with pytest.raises(InvariantError, match="conservation"):
            FixedStepIntegrator(dt=0.01).integrate(
                grow,
                np.array([0.0, 0.0]),
                0.0,
                0.1,
                mass=lambda y: float(y.sum()),
                mass_rate_bound=1.0,
            )

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="unknown integration method"):
            FixedStepIntegrator(method="leapfrog")
        with pytest.raises(ValueError, match="dt"):
            FixedStepIntegrator(dt=0.0)


# ---------------------------------------------------------------------------
# Backend construction and honest refusals
# ---------------------------------------------------------------------------


class TestBackendGrammar:
    def test_registry_round_trip(self):
        backend = make_backend("meanfield:euler:dt=0.1:depth=256:classes=8")
        assert isinstance(backend, MeanFieldBackend)
        assert backend.method == "euler"
        assert backend.dt == pytest.approx(0.1)
        assert backend.depth == 256
        assert backend.max_classes == 8

    @pytest.mark.parametrize(
        "spec",
        [
            "meanfield:rk4:euler",
            "meanfield:dt=0.1:dt=0.2",
            "meanfield:bogus",
            "meanfield:dt=abc",
            "meanfield::rk4",
            "meanfield:depth=1",
            "meanfield:classes=0",
            "meanfield:dt=0",
        ],
    )
    def test_bad_parameters_rejected(self, spec):
        with pytest.raises(ValueError):
            make_backend(spec)

    def test_capability_flags(self):
        caps = backend_capabilities("meanfield")
        assert caps.analytic
        assert not caps.supports_checkpoint
        assert not caps.supports_probes
        assert caps.allows_probe("windowed_mean")
        assert caps.allows_probe("server_stats")
        assert not caps.allows_probe("herding")
        assert "analytic" in caps.describe()
        # Params after ':' resolve to the same head class.
        assert backend_capabilities("meanfield:rk4:dt=0.1") == caps
        # Simulation backends keep full support.
        fast = backend_capabilities("fast")
        assert fast.supports_checkpoint and fast.allows_probe("herding")


class TestBackendRefusals:
    def test_rejects_unsupported_policy(self):
        sim = build_sim("sed", HET_SYSTEMS["het2"], 0.5, 10)
        with pytest.raises(ValueError, match="no fluid drift"):
            sim.run()

    def test_rejects_churn_scenario(self):
        sim = build_sim(
            "random", HET_SYSTEMS["het2"], 0.3, 10, scenario="churn"
        )
        with pytest.raises(ValueError, match="churn"):
            sim.run()

    def test_rejects_non_poisson_arrivals(self):
        rates = np.full(20, 2.0)
        lam = np.full(4, 0.5 * rates.sum() / 4)
        sim = Simulation(
            rates=rates,
            policy=make_policy("random"),
            arrivals=ModulatedPoissonArrivals(lam, 3.0 * lam),
            service=GeometricService(rates),
            config=SimulationConfig(rounds=10, backend="meanfield"),
        )
        with pytest.raises(ValueError, match="Poisson"):
            sim.run()

    def test_rejects_discrete_event_probes(self):
        sim = build_sim(
            "random", HET_SYSTEMS["het2"], 0.3, 10, probes=("herding",)
        )
        with pytest.raises(ValueError, match="herding"):
            sim.run()

    def test_rejects_lifecycle_controller(self):
        sim = build_sim("random", HET_SYSTEMS["het2"], 0.3, 10)
        with pytest.raises(ValueError, match="checkpoint"):
            make_backend("meanfield").run(sim, controller=object())

    def test_truncation_overflow_raises_for_unstable_load(self):
        # rho > 1: the real system grows without bound, so the fluid
        # state must refuse once mass pools at the truncation depth.
        sim = build_sim(
            "random", np.full(50, 1.0), 1.3, 3000, backend="meanfield:depth=16"
        )
        with pytest.raises(InvariantError, match="truncation overflow"):
            sim.run()

    def test_heterogeneous_random_overload_raises(self):
        # Uniform split over a (1, 3) pool is unstable once the
        # per-server rate tops mu_min = 1, even though the aggregate
        # load rho = 0.85 looks subcritical.
        sim = build_sim(
            "random",
            HET_SYSTEMS["het2"],
            0.85,
            5000,
            backend="meanfield:depth=64",
        )
        with pytest.raises(InvariantError, match="truncation overflow"):
            sim.run()


# ---------------------------------------------------------------------------
# Capability enforcement at the construction seams
# ---------------------------------------------------------------------------


class TestCapabilitySeams:
    def test_experiment_rejects_unsupported_probe(self):
        with pytest.raises(ValueError, match="cannot feed probes"):
            Experiment(
                policies=("random",),
                systems=SystemSpec(20, 2),
                loads=0.5,
                rounds=10,
                backend="meanfield",
                metrics=("herding",),
            )

    def test_experiment_accepts_synthesizable_probes(self):
        experiment = Experiment(
            policies=("random",),
            systems=SystemSpec(20, 2, "homogeneous"),
            loads=0.5,
            rounds=200,
            backend="meanfield",
            metrics=(ProbeSpec.of("windowed_stability", window=50), "server_stats"),
        )
        result = experiment.run(keep_results=False)
        record = result.records[0]
        assert record.metrics["server_stats.utilization_mean"] > 0

    def test_run_directory_rejects_meanfield(self, tmp_path):
        from repro.runs import Run

        sim = build_sim("random", np.full(20, 2.0), 0.5, 512)
        with pytest.raises(ValueError, match="checkpoint"):
            Run.create(sim, tmp_path / "mf-run")

    def test_service_submission_rejects_meanfield(self):
        from repro.service.jobs import validate_submittable

        experiment = Experiment(
            policies=("random",),
            systems=SystemSpec(20, 2),
            loads=0.5,
            rounds=10,
            backend="meanfield",
        )
        with pytest.raises(ValueError, match="federated service"):
            validate_submittable(experiment)


# ---------------------------------------------------------------------------
# Result and probe synthesis
# ---------------------------------------------------------------------------


class TestSynthesis:
    def test_accounting_and_littles_law(self):
        rates = HET_SYSTEMS["het2"]
        rho = 0.4
        rounds = 3000
        result = run_once("random", rates, rho, rounds)
        expected_arrivals = rho * rates.sum() * rounds
        assert result.total_arrived == pytest.approx(
            expected_arrivals, rel=1e-3
        )
        assert 0 < result.total_departed <= result.total_arrived
        assert result.final_queued >= 0
        # Little's law for the end-of-round census: E[T] = N/lambda + 1.
        lam = rho * rates.sum()
        queue = result.queue_series.mean()
        assert result.mean_response_time == pytest.approx(
            queue / lam + 1.0, rel=0.02
        )

    def test_probe_summaries_are_consistent(self):
        rates = HET_SYSTEMS["het2"]
        result = run_once(
            "jsq(2)",
            rates,
            0.7,
            2000,
            probes=(
                ProbeSpec.of("windowed_mean", window=500),
                ProbeSpec.of("windowed_stability", window=500),
                "server_stats",
            ),
        )
        stability = result.probes["windowed_stability[window=500]"].summary()
        assert stability["windows"] == 4
        mean_probe = result.probes["windowed_mean[window=500]"].summary()
        assert mean_probe["last_mean"] == pytest.approx(
            result.mean_response_time, rel=0.05
        )
        stats = result.probes["server_stats"].summary()
        assert 0.0 < stats["utilization_mean"] <= 1.0
        assert stats["idle_fraction"] >= 0.0

    def test_per_server_arrays_expand_classes(self):
        rates = HET_SYSTEMS["het2"]
        result = run_once("random", rates, 0.4, 500)
        assert result.server_received.shape == rates.shape
        # Uniform split: every server sees the same expected arrivals.
        assert np.unique(result.server_received).size <= 2


# ---------------------------------------------------------------------------
# Statistical parity with the fast kernel
# ---------------------------------------------------------------------------


def assert_parity(policy, rates, rho, *, m=10, seed=0, rounds=1500, base=1.0):
    n = rates.size
    warmup = rounds // 4
    fast = run_once(
        policy, rates, rho, rounds, m=m, seed=seed, warmup=warmup,
        backend="fast",
    )
    fluid = run_once(
        policy, rates, rho, rounds, m=m, warmup=warmup, backend="meanfield"
    )
    assert_ensemble_close(
        fast.mean_response_time,
        fluid.mean_response_time,
        n=n,
        base=base,
        floor=0.02,
        label=f"{policy} on n={n} at rho={rho} (seed {seed})",
    )


class TestParity:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        policy=st.sampled_from(["random", "jsq(2)"]),
        system=st.sampled_from(sorted(HET_SYSTEMS)),
    )
    def test_matches_fast_kernel_on_heterogeneous_systems(
        self, seed, policy, system
    ):
        rates = HET_SYSTEMS[system]
        # Uniform split over a heterogeneous pool is stable only below
        # rho ~ mu_min / mean(mu); power-of-d balances the load away
        # (but keeps an O(1/n) finite-n gap that inflates with load, so
        # the choice cell stays at moderate rho for n ~ 200).
        rho = 0.35 if policy == "random" else 0.75
        assert_parity(policy, rates, rho, seed=seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_jsq_matches_single_dispatcher(self, seed):
        # Full JSQ parity needs m = 1: with shared snapshots several
        # dispatchers herd onto the same short queues, a finite-m effect
        # outside the fluid limit (the paper's core observation).
        assert_parity(
            "jsq", HET_SYSTEMS["het2"], 0.9, m=1, seed=seed, rounds=1200
        )

    def test_tolerance_shrinks_with_system_size(self):
        # The same check, run at growing n with the shared shrinking
        # tolerance: bigger systems must sit closer to the limit.
        for n in (200, 800):
            rates = np.repeat([1.0, 3.0], n // 2)
            assert ensemble_tolerance(n, floor=0.02) < ensemble_tolerance(
                n // 2, floor=0.02
            )
            assert_parity("jsq(2)", rates, 0.85, seed=7)

    def test_diurnal_scenario_tracks_windowed_stability(self):
        rates = HET_SYSTEMS["het2"]
        kwargs = dict(
            m=10,
            scenario="diurnal:period=1000,amplitude=0.25",
            probes=(ProbeSpec.of("windowed_stability", window=500),),
        )
        fast = run_once(
            "jsq(2)", rates, 0.7, 2000, seed=3, backend="fast", **kwargs
        )
        fluid = run_once(
            "jsq(2)", rates, 0.7, 2000, backend="meanfield", **kwargs
        )
        label = "windowed_stability[window=500]"
        fast_means = fast.probes[label].means()
        fluid_means = fluid.probes[label].means()
        assert len(fast_means) == len(fluid_means) == 4
        for window, (observed, predicted) in enumerate(
            zip(fast_means, fluid_means)
        ):
            assert_ensemble_close(
                observed,
                predicted,
                n=rates.size,
                floor=0.03,
                label=f"diurnal window {window}",
            )
        # The cycle actually modulated the queues: windows differ.
        assert max(fluid_means) > 1.1 * min(fluid_means)


# ---------------------------------------------------------------------------
# Scale: the headline claim
# ---------------------------------------------------------------------------


class TestScale:
    def test_million_server_run_completes(self):
        n = 1_000_000
        rates = np.where(np.arange(n) % 2 == 0, 1.0, 3.0)
        result = run_once("jsq(2)", rates, 0.7, 100, m=100)
        assert result.total_arrived > 0
        assert result.mean_response_time > 1.0
