"""Cross-validation of the production solvers against independent oracles."""

import numpy as np
import pytest
from hypothesis import given, settings

from _helpers import dispatch_instances
from repro.core.iwl import compute_iwl
from repro.core.probabilities import scd_objective, scd_probabilities
from repro.core.qp_reference import brute_force_probabilities, slsqp_probabilities


class TestBruteForce:
    """Exhaustive 2^n enumeration must agree with the prefix search."""

    @given(dispatch_instances(max_servers=8, max_arrivals=60))
    @settings(max_examples=60, deadline=None)
    def test_prefix_search_is_globally_optimal(self, instance):
        queues, rates, arrivals = instance
        iwl = compute_iwl(queues, rates, arrivals)
        fast = scd_probabilities(queues, rates, arrivals, iwl)
        exact = brute_force_probabilities(queues, rates, arrivals, iwl)
        # Objective values must match (probability vectors may differ only
        # under exact objective ties).
        val_fast = scd_objective(fast, queues, rates, arrivals, iwl)
        val_exact = scd_objective(exact, queues, rates, arrivals, iwl)
        assert val_fast == pytest.approx(val_exact, rel=1e-9, abs=1e-9)
        np.testing.assert_allclose(fast, exact, atol=1e-6)

    def test_figure2_brute_force(self, figure2_instance):
        inst = figure2_instance
        p = brute_force_probabilities(
            inst["queues"], inst["rates"], inst["arrivals"], inst["iwl"]
        )
        assert p[0] == pytest.approx(inst["p_fast_approx"], abs=5e-3)

    def test_size_guard(self):
        q = np.zeros(20, dtype=np.int64)
        mu = np.ones(20)
        with pytest.raises(ValueError):
            brute_force_probabilities(q, mu, 5, 0.25)


class TestSLSQP:
    """The numeric QP solver agrees at sizes beyond brute force."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_medium_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = 30
        queues = rng.integers(0, 40, size=n)
        rates = rng.uniform(0.5, 20.0, size=n)
        arrivals = int(rng.integers(2, 150))
        iwl = compute_iwl(queues, rates, arrivals)
        fast = scd_probabilities(queues, rates, arrivals, iwl)
        numeric = slsqp_probabilities(queues, rates, arrivals, iwl)
        val_fast = scd_objective(fast, queues, rates, arrivals, iwl)
        val_num = scd_objective(numeric, queues, rates, arrivals, iwl)
        # The closed form can only be at least as good as the numeric
        # solution, and they should be near-identical.
        assert val_fast <= val_num + 1e-6 * max(1.0, abs(val_num))
        np.testing.assert_allclose(fast, numeric, atol=5e-4)

    def test_single_job_shortcut(self):
        q = np.array([2, 0])
        mu = np.array([1.0, 1.0])
        p = slsqp_probabilities(q, mu, 1, compute_iwl(q, mu, 1))
        np.testing.assert_allclose(p, [0.0, 1.0])
