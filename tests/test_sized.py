"""Tests for the size-aware extension (open problem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _helpers import dispatch_instances
from repro.core.iwl import compute_iwl
from repro.core.probabilities import scd_probabilities
from repro.core.sized import (
    generalized_probabilities,
    sized_objective,
    sized_scd_probabilities,
)
from repro.core.sized_policy import SizedSCDPolicy
from repro.policies.base import SystemContext, make_policy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.metrics import ResponseTimeHistogram
from repro.sim.service import GeometricService
from repro.sim.sized import (
    BimodalSize,
    DeterministicSize,
    GeometricSize,
    SizedServerQueue,
    SizedSimulation,
)


class TestGeneralizedSolver:
    @given(dispatch_instances())
    @settings(max_examples=120, deadline=None)
    def test_reduces_to_standard_scd(self, instance):
        """(A, c) = (a-1, 1) must reproduce the paper's solver exactly."""
        queues, rates, arrivals = instance
        if arrivals == 1:
            return
        iwl = compute_iwl(queues, rates, arrivals)
        general = generalized_probabilities(
            queues, rates, quad_weight=arrivals - 1.0, offset=1.0, iwl=iwl
        )
        np.testing.assert_allclose(
            general, scd_probabilities(queues, rates, arrivals, iwl), atol=1e-9
        )

    @given(
        dispatch_instances(),
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_valid_distribution_for_any_parameters(self, instance, quad, offset):
        queues, rates, arrivals = instance
        iwl = compute_iwl(queues, rates, float(arrivals))
        p = generalized_probabilities(queues, rates, quad, offset, iwl)
        assert np.all(p >= 0)
        assert p.sum() == pytest.approx(1.0, abs=1e-8)

    @given(dispatch_instances(max_servers=10))
    @settings(max_examples=60, deadline=None)
    def test_beats_random_feasible_points(self, instance):
        queues, rates, arrivals = instance
        quad, offset = 3.0, 2.5
        iwl = compute_iwl(queues, rates, float(arrivals))
        p = generalized_probabilities(queues, rates, quad, offset, iwl)
        opt = sized_objective(p, queues, rates, quad, offset, iwl)
        rng = np.random.default_rng(7)
        for _ in range(10):
            candidate = rng.dirichlet(np.ones(queues.size))
            val = sized_objective(candidate, queues, rates, quad, offset, iwl)
            assert opt <= val + 1e-9 * max(1.0, abs(val))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generalized_probabilities([1], [1.0], 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            generalized_probabilities([1], [1.0], 1.0, -1.0, 1.0)


class TestSizedProbabilities:
    def test_unit_sizes_recover_scd(self):
        queues = np.array([4, 0, 7])
        rates = np.array([2.0, 1.0, 5.0])
        a = 12
        iwl_sized, p_sized = sized_scd_probabilities(queues, rates, a, 1.0, 1.0)
        iwl = compute_iwl(queues, rates, a)
        assert iwl_sized == pytest.approx(iwl)
        np.testing.assert_allclose(
            p_sized, scd_probabilities(queues, rates, a, iwl), atol=1e-9
        )

    def test_iwl_uses_total_work(self):
        queues = np.zeros(2, dtype=np.int64)
        rates = np.array([1.0, 1.0])
        iwl, _ = sized_scd_probabilities(queues, rates, 4, mean_size=5.0,
                                         second_moment_size=25.0)
        assert iwl == pytest.approx(10.0)  # 4 jobs x 5 units over 2 servers

    def test_size_dispersion_shifts_mass_to_fast_servers(self):
        """Higher E[W^2] at the same mean raises the discreteness term,
        moving mass toward the faster servers in the probable set (the
        KKT sensitivity: d p_s / d c > 0 iff mu_s is above the probable
        set's average rate)."""
        queues = np.array([0, 0])
        rates = np.array([3.0, 1.0])
        a = 4
        _, p_tight = sized_scd_probabilities(queues, rates, a, 2.0, 4.0)
        _, p_lumpy = sized_scd_probabilities(queues, rates, a, 2.0, 40.0)
        # c = 2: interior split [5/6, 1/6]; c = 20: all mass on the fast one.
        np.testing.assert_allclose(p_tight, [5.0 / 6.0, 1.0 / 6.0], atol=1e-9)
        np.testing.assert_allclose(p_lumpy, [1.0, 0.0], atol=1e-9)
        assert p_lumpy[0] > p_tight[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            sized_scd_probabilities([1], [1.0], 2, 0.0, 1.0)
        with pytest.raises(ValueError):
            sized_scd_probabilities([1], [1.0], 2, 2.0, 1.0)  # E[W^2] < E[W]^2
        with pytest.raises(ValueError):
            sized_scd_probabilities([1], [1.0], 0.5, 1.0, 1.0)

    def test_single_job_uses_adjusted_key(self):
        # With offset c = E[W^2]/wbar = 9: keys (2*3+9)/10 = 1.5 vs
        # (2*0+9)/1 = 9 -> the busy fast server wins; with c = 1 the keys
        # are 0.7 vs 1.0 and it *still* wins, so pick queues that flip:
        queues = np.array([5, 0])
        rates = np.array([10.0, 1.0])
        # c=1: (11)/10 = 1.1 vs 1.0 -> slow server. c=9: 19/10=1.9 vs 9 -> fast.
        _, p_unit = sized_scd_probabilities(queues, rates, 1, 1.0, 1.0)
        _, p_lumpy = sized_scd_probabilities(queues, rates, 1, 3.0, 27.0)
        np.testing.assert_allclose(p_unit, [0.0, 1.0])
        np.testing.assert_allclose(p_lumpy, [1.0, 0.0])


class TestSizeDistributions:
    def test_deterministic(self):
        dist = DeterministicSize(4)
        draws = dist.sample(np.random.default_rng(0), 10)
        assert np.all(draws == 4)
        assert dist.mean == 4.0
        assert dist.second_moment == 16.0

    def test_geometric_moments(self):
        dist = GeometricSize(3.0)
        rng = np.random.default_rng(0)
        draws = dist.sample(rng, 100_000).astype(float)
        assert draws.min() >= 1
        assert draws.mean() == pytest.approx(dist.mean, rel=0.02)
        assert np.mean(draws**2) == pytest.approx(dist.second_moment, rel=0.03)

    def test_bimodal_moments(self):
        dist = BimodalSize(small=1, large=20, large_prob=0.1)
        rng = np.random.default_rng(1)
        draws = dist.sample(rng, 100_000).astype(float)
        assert set(np.unique(draws)) <= {1.0, 20.0}
        assert draws.mean() == pytest.approx(dist.mean, rel=0.03)
        assert np.mean(draws**2) == pytest.approx(dist.second_moment, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicSize(0)
        with pytest.raises(ValueError):
            GeometricSize(1.0)
        with pytest.raises(ValueError):
            BimodalSize(small=5, large=2)


class TestSizedServerQueue:
    def test_units_accounting(self):
        q = SizedServerQueue()
        q.admit(0, np.array([3, 2]))
        assert len(q) == 5
        assert q.complete(4, now=1, histogram=None) == 4
        assert len(q) == 1

    def test_job_completes_when_last_unit_done(self):
        q = SizedServerQueue()
        hist = ResponseTimeHistogram()
        q.admit(0, np.array([3]))
        q.complete(2, now=0, histogram=hist)  # partial: no completion yet
        assert hist.total == 0
        q.complete(2, now=2, histogram=hist)  # finishes at round 2
        assert hist.total == 1
        assert hist.counts[3] == 1  # 2 - 0 + 1

    def test_fifo_across_jobs(self):
        q = SizedServerQueue()
        hist = ResponseTimeHistogram()
        q.admit(0, np.array([2, 1]))
        q.complete(3, now=1, histogram=hist)
        assert hist.total == 2
        assert hist.counts[2] == 2


class TestSizedSimulation:
    def run_sized(self, policy, sizes, rounds=600, seed=0, rho=0.85, m=4):
        rng = np.random.default_rng(4)
        rates = rng.uniform(2.0, 12.0, size=20)  # units per round
        jobs_per_round = rho * rates.sum() / sizes.mean
        arrivals = PoissonArrivals(np.full(m, jobs_per_round / m))
        sim = SizedSimulation(
            rates=rates,
            policy=policy,
            arrivals=arrivals,
            service=GeometricService(rates),
            sizes=sizes,
            rounds=rounds,
            seed=seed,
        )
        return sim.run()

    def test_unit_accounting(self):
        result = self.run_sized(make_policy("sed"), GeometricSize(3.0))
        assert (
            result.total_units_arrived
            == result.total_units_departed + result.final_units_queued
        )
        assert result.histogram.total <= result.total_jobs

    def test_unit_sizes_match_base_engine_statistically(self):
        result = self.run_sized(make_policy("jsq"), DeterministicSize(1))
        assert result.total_units_arrived == result.total_jobs

    def test_workload_identical_across_policies(self):
        a = self.run_sized(make_policy("scd"), GeometricSize(2.5), seed=9)
        b = self.run_sized(make_policy("jsq"), GeometricSize(2.5), seed=9)
        assert a.total_jobs == b.total_jobs
        assert a.total_units_arrived == b.total_units_arrived

    def test_size_aware_scd_beats_size_oblivious_scd(self):
        """The open-problem-1 payoff: knowing E[W], E[W^2] helps.

        The gap opens at high load with many dispatchers (where the
        mis-scaled arrival estimate distorts the water level most); the
        regime here is verified stable for the fixed seed."""
        sizes = GeometricSize(4.0)
        aware = self.run_sized(
            SizedSCDPolicy(
                mean_size=sizes.mean, second_moment_size=sizes.second_moment
            ),
            sizes,
            rounds=2000,
            rho=0.97,
            m=10,
        )
        # Oblivious: plain SCD thinks each job is one work unit.
        oblivious = self.run_sized(make_policy("scd"), sizes, rounds=2000,
                                   rho=0.97, m=10)
        sed = self.run_sized(make_policy("sed"), sizes, rounds=2000,
                             rho=0.97, m=10)
        assert aware.mean_response_time < oblivious.mean_response_time
        assert aware.mean_response_time < sed.mean_response_time
        assert aware.histogram.percentile(0.999) <= oblivious.histogram.percentile(0.999)


class TestSizedSCDPolicy:
    def test_registered(self):
        policy = make_policy("scd-sized", mean_size=2.0, second_moment_size=6.0)
        assert policy.name == "scd-sized"

    def test_defaults_are_unit_jobs(self):
        policy = SizedSCDPolicy()
        assert policy.mean_size == 1.0
        assert policy.second_moment_size == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SizedSCDPolicy(mean_size=0.0)
        with pytest.raises(ValueError):
            SizedSCDPolicy(mean_size=3.0, second_moment_size=4.0)

    def test_dispatch_counts(self):
        policy = SizedSCDPolicy(mean_size=2.0, second_moment_size=8.0)
        policy.bind(
            SystemContext(
                rates=np.array([2.0, 4.0]),
                num_dispatchers=2,
                rng=np.random.default_rng(0),
            )
        )
        policy.begin_round(0, np.array([5, 1]))
        counts = policy.dispatch(0, 9)
        assert counts.sum() == 9
