"""Contract tests every registered policy must satisfy.

These are the framework's behavioral guarantees, asserted uniformly over
the whole registry (including policies added later -- the parametrization
reads the registry):

* dispatch returns non-negative integer counts of the right shape that
  sum to the batch size;
* the shared queue snapshot is never mutated (the engine hands the live
  array to every dispatcher -- a write would leak information across
  dispatchers and corrupt accounting);
* zero-job dispatches return all-zero vectors;
* repeated rounds never raise, whatever the queue state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.base import SystemContext, available_policies, make_policy

#: Policies whose constructor needs no arguments (the whole registry).
ALL_POLICIES = available_policies()


def bind(name, rates, m=3, seed=0):
    policy = make_policy(name)
    policy.bind(
        SystemContext(
            rates=np.asarray(rates, dtype=np.float64),
            num_dispatchers=m,
            rng=np.random.default_rng(seed),
        )
    )
    return policy


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestUniversalContracts:
    def test_counts_shape_total_and_sign(self, name):
        rates = np.array([1.0, 4.0, 2.0, 8.0, 3.0])
        policy = bind(name, rates)
        queues = np.array([7, 0, 3, 1, 12], dtype=np.int64)
        policy.begin_round(0, queues)
        for d in range(3):
            counts = policy.dispatch(d, 13)
            assert counts.shape == (5,)
            assert counts.dtype.kind == "i"
            assert counts.sum() == 13
            assert np.all(counts >= 0)
        policy.end_round(0, queues)

    def test_snapshot_never_mutated(self, name):
        rates = np.array([2.0, 1.0, 5.0, 3.0])
        policy = bind(name, rates)
        queues = np.array([4, 9, 0, 2], dtype=np.int64)
        pristine = queues.copy()
        policy.begin_round(0, queues)
        for d in range(3):
            policy.dispatch(d, 8)
        np.testing.assert_array_equal(queues, pristine)
        policy.end_round(0, queues)
        np.testing.assert_array_equal(queues, pristine)

    def test_zero_jobs_gives_zero_vector(self, name):
        rates = np.ones(3)
        policy = bind(name, rates)
        policy.begin_round(0, np.zeros(3, dtype=np.int64))
        counts = policy.dispatch(0, 0)
        np.testing.assert_array_equal(counts, [0, 0, 0])

    @given(
        queues=st.lists(st.integers(0, 40), min_size=4, max_size=4),
        batch=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_states_never_raise(self, name, queues, batch):
        rates = np.array([0.5, 2.0, 7.0, 1.0])
        policy = bind(name, rates)
        snapshot = np.asarray(queues, dtype=np.int64)
        for t in range(3):
            policy.begin_round(t, snapshot)
            counts = policy.dispatch(t % 3, batch)
            assert counts.sum() == batch
            policy.end_round(t, snapshot)


class TestRegistryHygiene:
    def test_names_are_lowercase_and_stable(self):
        for name in ALL_POLICIES:
            assert name == name.lower()
            assert make_policy(name).name  # every instance carries a name

    def test_instances_are_fresh(self):
        """The factory must not hand out shared mutable instances."""
        a = make_policy("lsq")
        b = make_policy("lsq")
        assert a is not b
