"""Contract tests every registered policy must satisfy.

These are the framework's behavioral guarantees, asserted uniformly over
the whole registry (including policies added later -- the parametrization
reads the registry):

* dispatch returns non-negative integer counts of the right shape that
  sum to the batch size;
* the shared queue snapshot is never mutated (the engine hands the live
  array to every dispatcher -- a write would leak information across
  dispatchers and corrupt accounting);
* zero-job dispatches return all-zero vectors;
* repeated rounds never raise, whatever the queue state;
* the batch protocol ``dispatch_round`` returns an (m, n) matrix whose
  rows sum to the dispatcher batches, and the native overrides of
  deterministic policies reproduce the per-dispatcher loop exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.base import (
    Policy,
    SystemContext,
    available_policies,
    has_native_dispatch_round,
    make_policy,
)

#: Policies whose constructor needs no arguments (the whole registry).
ALL_POLICIES = available_policies()


def bind(name, rates, m=3, seed=0):
    policy = make_policy(name)
    policy.bind(
        SystemContext(
            rates=np.asarray(rates, dtype=np.float64),
            num_dispatchers=m,
            rng=np.random.default_rng(seed),
        )
    )
    return policy


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestUniversalContracts:
    def test_counts_shape_total_and_sign(self, name):
        rates = np.array([1.0, 4.0, 2.0, 8.0, 3.0])
        policy = bind(name, rates)
        queues = np.array([7, 0, 3, 1, 12], dtype=np.int64)
        policy.begin_round(0, queues)
        for d in range(3):
            counts = policy.dispatch(d, 13)
            assert counts.shape == (5,)
            assert counts.dtype.kind == "i"
            assert counts.sum() == 13
            assert np.all(counts >= 0)
        policy.end_round(0, queues)

    def test_snapshot_never_mutated(self, name):
        rates = np.array([2.0, 1.0, 5.0, 3.0])
        policy = bind(name, rates)
        queues = np.array([4, 9, 0, 2], dtype=np.int64)
        pristine = queues.copy()
        policy.begin_round(0, queues)
        for d in range(3):
            policy.dispatch(d, 8)
        np.testing.assert_array_equal(queues, pristine)
        policy.end_round(0, queues)
        np.testing.assert_array_equal(queues, pristine)

    def test_zero_jobs_gives_zero_vector(self, name):
        rates = np.ones(3)
        policy = bind(name, rates)
        policy.begin_round(0, np.zeros(3, dtype=np.int64))
        counts = policy.dispatch(0, 0)
        np.testing.assert_array_equal(counts, [0, 0, 0])

    @given(
        queues=st.lists(st.integers(0, 40), min_size=4, max_size=4),
        batch=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_states_never_raise(self, name, queues, batch):
        rates = np.array([0.5, 2.0, 7.0, 1.0])
        policy = bind(name, rates)
        snapshot = np.asarray(queues, dtype=np.int64)
        for t in range(3):
            policy.begin_round(t, snapshot)
            counts = policy.dispatch(t % 3, batch)
            assert counts.sum() == batch
            policy.end_round(t, snapshot)


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestBatchProtocolContracts:
    """Every policy must honor dispatch_round, native or fallback."""

    def test_rows_shape_sums_and_sign(self, name):
        rates = np.array([1.0, 4.0, 2.0, 8.0, 3.0])
        policy = bind(name, rates, m=4)
        queues = np.array([7, 0, 3, 1, 12], dtype=np.int64)
        policy.begin_round(0, queues)
        batch = np.array([13, 0, 1, 6], dtype=np.int64)
        rows = policy.dispatch_round(batch, queues)
        assert rows.shape == (4, 5)
        assert rows.dtype.kind == "i"
        np.testing.assert_array_equal(rows.sum(axis=1), batch)
        assert np.all(rows >= 0)
        policy.end_round(0, queues)

    def test_snapshot_never_mutated(self, name):
        rates = np.array([2.0, 1.0, 5.0, 3.0])
        policy = bind(name, rates, m=3)
        queues = np.array([4, 9, 0, 2], dtype=np.int64)
        pristine = queues.copy()
        policy.begin_round(0, queues)
        policy.dispatch_round(np.array([8, 2, 5], dtype=np.int64), queues)
        np.testing.assert_array_equal(queues, pristine)

    def test_all_zero_batches_give_zero_matrix(self, name):
        rates = np.ones(3)
        policy = bind(name, rates, m=2)
        queues = np.zeros(3, dtype=np.int64)
        policy.begin_round(0, queues)
        rows = policy.dispatch_round(np.zeros(2, dtype=np.int64), queues)
        np.testing.assert_array_equal(rows, np.zeros((2, 3), dtype=np.int64))


#: Policies whose dispatch uses no randomness: a native dispatch_round
#: must match the per-dispatcher fallback bit-for-bit, including carried
#: state (round-robin positions) across rounds.
DETERMINISTIC_NATIVE = [
    name
    for name in ALL_POLICIES
    if name in {"jsq", "sed", "rr", "wrr"}
    and has_native_dispatch_round(make_policy(name))
]


@pytest.mark.parametrize("name", DETERMINISTIC_NATIVE)
def test_native_batch_path_matches_fallback(name):
    rates = np.array([1.0, 4.0, 2.0, 8.0, 3.0])
    native = bind(name, rates, m=4, seed=0)
    looped = bind(name, rates, m=4, seed=0)
    rng = np.random.default_rng(5)
    queues = np.zeros(5, dtype=np.int64)
    for t in range(6):
        batch = rng.integers(0, 12, size=4)
        native.begin_round(t, queues)
        looped.begin_round(t, queues)
        rows_native = native.dispatch_round(batch, queues)
        rows_looped = Policy.dispatch_round(looped, batch, queues)
        np.testing.assert_array_equal(rows_native, rows_looped)
        queues = rng.integers(0, 30, size=5)


class TestRegistryHygiene:
    def test_names_are_lowercase_and_stable(self):
        for name in ALL_POLICIES:
            assert name == name.lower()
            assert make_policy(name).name  # every instance carries a name

    def test_instances_are_fresh(self):
        """The factory must not hand out shared mutable instances."""
        a = make_policy("lsq")
        b = make_policy("lsq")
        assert a is not b
