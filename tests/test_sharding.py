"""Tests for the sharded simulation subsystem (ISSUE 5 acceptance).

The contract under test:

* ``"sharded"`` is registered in *both* engine-backend registries and
  parameterizes through the name (``sharded:4``, ``sharded:4:process``);
* ``sharded:{1,2,4}`` is **bit-identical** to ``"fast"`` for
  deterministic (and fallback, and LSQ-native) policies on both the
  unsized and the sized engine -- including warmup, non-default probe
  sets, and probe summaries (``server_stats`` via the new partition
  merge);
* stochastic native policies keep exact accounting and the identical
  workload realization;
* the ``process`` strategy reproduces the ``serial`` strategy exactly
  (workers hold no RNG -- scheduling cannot perturb results);
* ``Probe.merge_partition`` concatenates per-server state across shards
  and falls back to ``merge`` everywhere that is already correct;
* the backend name travels end-to-end: ``SimulationConfig`` /
  ``SizedSimulation`` -> ``simulate_cell`` -> ``Experiment`` ->
  persistence JSON round-trip -> CLI ``--backend sharded:N``.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.base import make_policy
from repro.sim import probes as probes_module
from repro.sim.arrivals import PoissonArrivals
from repro.sim.backends import available_backends, make_backend
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.probes import (
    Probe,
    ProbeContext,
    QueueSeriesProbe,
    ResponseTimeProbe,
    ServerStatsProbe,
    register_probe,
)
from repro.sim.service import GeometricService
from repro.sim.sharding import (
    MultiprocessShardStrategy,
    SerialShardStrategy,
    ShardedBackend,
    ShardPlan,
    SizedShardedBackend,
    split_probe_specs,
)
from repro.sim.sized import GeometricSize, SizedSimulation
from repro.sim.sizedbackends import available_sized_backends, make_sized_backend

#: Each parity family must stay bit-identical to "fast" under sharding.
DETERMINISTIC_POLICIES = ["jsq", "sed", "rr", "wrr"]
FALLBACK_POLICIES = ["scd"]
NATIVE_BIT_IDENTICAL_POLICIES = ["lsq", "hlsq", "led", "jiq"]
#: Native stochastic batch paths: exact accounting + same workload only.
NATIVE_STOCHASTIC_POLICIES = ["wr", "jsq(2)"]

SHARD_COUNTS = [1, 2, 4]
ALL_EXTRA_PROBES = ("server_stats", "server_response_stats",
                    "dispatcher_stats", "windowed_mean", "herding")


def run_once(policy, backend, seed=0, n=9, m=3, rho=0.85, rounds=400, warmup=0,
             probes=(), track_queue_series=True):
    rng = np.random.default_rng(123)
    rates = rng.uniform(1.0, 8.0, size=n)
    lambdas = np.full(m, rho * rates.sum() / m)
    return Simulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(lambdas),
        service=GeometricService(rates),
        config=SimulationConfig(
            rounds=rounds,
            seed=seed,
            warmup=warmup,
            backend=backend,
            probes=probes,
            track_queue_series=track_queue_series,
        ),
    ).run()


def run_sized_once(policy, backend, seed=0, n=9, m=3, rho=0.85, rounds=400,
                   warmup=0, probes=(), mean_size=2.5):
    rng = np.random.default_rng(123)
    rates = rng.uniform(2.0, 10.0, size=n)
    sizes = GeometricSize(mean_size)
    jobs_per_round = rho * rates.sum() / sizes.mean
    return SizedSimulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(np.full(m, jobs_per_round / m)),
        service=GeometricService(rates),
        sizes=sizes,
        rounds=rounds,
        seed=seed,
        warmup=warmup,
        backend=backend,
        probes=probes,
    ).run()


def assert_identical(a, b):
    """Both SimulationResults describe the exact same run, probes included."""
    assert a.total_arrived == b.total_arrived
    assert a.total_departed == b.total_departed
    assert a.final_queued == b.final_queued
    np.testing.assert_array_equal(a.final_queues, b.final_queues)
    np.testing.assert_array_equal(a.histogram.counts, b.histogram.counts)
    np.testing.assert_array_equal(a.server_received, b.server_received)
    np.testing.assert_array_equal(a.server_departed, b.server_departed)
    if a.queue_series is None or b.queue_series is None:
        assert a.queue_series is None and b.queue_series is None
    else:
        np.testing.assert_array_equal(a.queue_series.values, b.queue_series.values)
    assert_same_probe_summaries(a, b)


def assert_sized_identical(a, b):
    """Both SizedSimulationResults describe the exact same run."""
    assert a.total_jobs == b.total_jobs
    assert a.total_units_arrived == b.total_units_arrived
    assert a.total_units_departed == b.total_units_departed
    assert a.final_units_queued == b.final_units_queued
    np.testing.assert_array_equal(a.histogram.counts, b.histogram.counts)
    np.testing.assert_array_equal(a.queue_series.values, b.queue_series.values)
    assert_same_probe_summaries(a, b)


def assert_same_probe_summaries(a, b):
    summaries_a, summaries_b = a.probe_summaries(), b.probe_summaries()
    assert list(summaries_a) == list(summaries_b)  # labels, in order
    for label, summary in summaries_a.items():
        other = summaries_b[label]
        assert list(summary) == list(other)
        for key, value in summary.items():
            if label == "herding" and key == "mean_imbalance":
                # The only non-integer-derived statistic: shards
                # accumulate the rate-weighted sums in a different
                # float addition order than the unsharded kernels.
                assert value == pytest.approx(other[key], rel=1e-9), (
                    label, key, value, other[key])
                continue
            assert value == other[key] or (
                np.isnan(value) and np.isnan(other[key])
            ), (label, key, value, other[key])


class TestShardPlan:
    def test_balanced_partitions_cover_servers(self):
        plan = ShardPlan.balanced(10, 4)
        assert plan.num_shards == 4
        assert plan.num_servers == 10
        assert plan.bounds == (0, 3, 6, 8, 10)
        assert plan.ranges() == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_shard_count_clamped_to_servers(self):
        plan = ShardPlan.balanced(3, 8)
        assert plan.num_shards == 3
        assert plan.bounds == (0, 1, 2, 3)

    def test_single_shard(self):
        assert ShardPlan.balanced(5, 1).bounds == (0, 5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(bounds=(0,))
        with pytest.raises(ValueError):
            ShardPlan(bounds=(1, 4))
        with pytest.raises(ValueError):
            ShardPlan(bounds=(0, 3, 3))
        with pytest.raises(ValueError):
            ShardPlan.balanced(4, 0)


class TestRegistry:
    def test_registered_in_both_registries(self):
        assert "sharded" in available_backends()
        assert "sharded" in available_sized_backends()

    def test_parameterized_names_resolve(self):
        backend = make_backend("sharded:4")
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 4 and backend.strategy == "serial"
        sized = make_sized_backend("SHARDED:2:process")
        assert isinstance(sized, SizedShardedBackend)
        assert sized.shards == 2 and sized.strategy == "process"
        bare = make_backend("sharded")
        assert bare.shards == 2 and bare.strategy == "serial"

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="invalid shard count"):
            make_backend("sharded:lots")
        with pytest.raises(ValueError, match="shard count must be >= 1"):
            make_backend("sharded:0")
        with pytest.raises(ValueError, match="unknown shard strategy"):
            make_backend("sharded:2:quantum")
        with pytest.raises(ValueError, match="too many shard parameters"):
            make_backend("sharded:2:serial:process:compiled")
        with pytest.raises(ValueError, match="takes no ':' parameters"):
            make_backend("fast:3")
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_backend("warp:3")

    def test_compiled_resolver_parses(self):
        """A trailing ``compiled`` token selects the resolver; any other
        token in that position is still validated as a strategy."""
        backend = make_backend("sharded:4:compiled")
        assert backend.shards == 4
        assert backend.strategy == "serial"
        assert backend.resolver == "compiled"
        both = make_sized_backend("sharded:2:process:compiled")
        assert both.strategy == "process" and both.resolver == "compiled"
        assert make_backend("sharded:2").resolver == "numpy"
        with pytest.raises(ValueError, match="unknown shard strategy"):
            make_backend("sharded:2:compiled:compiled")

    def test_strategies_exposed(self):
        assert SerialShardStrategy.name == "serial"
        assert MultiprocessShardStrategy.name == "process"


class TestBitIdentityUnsized:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("policy", DETERMINISTIC_POLICIES)
    def test_deterministic_policies_identical(self, policy, shards):
        a = run_once(policy, "fast", seed=5)
        b = run_once(policy, f"sharded:{shards}", seed=5)
        assert_identical(a, b)

    @pytest.mark.parametrize(
        "policy", FALLBACK_POLICIES + NATIVE_BIT_IDENTICAL_POLICIES
    )
    def test_fallback_and_lsq_policies_identical(self, policy):
        a = run_once(policy, "fast", seed=11)
        b = run_once(policy, "sharded:3", seed=11)
        assert_identical(a, b)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_warmup_and_all_probes_identical(self, shards):
        """Warmup mid-block plus every built-in probe: summaries must
        match exactly whichever side of the shard split a probe runs on."""
        a = run_once("sed", "fast", seed=2, rounds=600, warmup=300,
                     probes=ALL_EXTRA_PROBES)
        b = run_once("sed", f"sharded:{shards}", seed=2, rounds=600,
                     warmup=300, probes=ALL_EXTRA_PROBES)
        assert_identical(a, b)

    def test_non_chunk_aligned_rounds(self):
        a = run_once("jsq", "fast", seed=3, rounds=259)
        b = run_once("jsq", "sharded:2", seed=3, rounds=259)
        assert_identical(a, b)

    def test_without_queue_series(self):
        a = run_once("jsq", "fast", seed=3, track_queue_series=False)
        b = run_once("jsq", "sharded:2", seed=3, track_queue_series=False)
        assert_identical(a, b)

    def test_more_shards_than_servers(self):
        a = run_once("jsq", "fast", seed=4, n=3)
        b = run_once("jsq", "sharded:16", seed=4, n=3)
        assert_identical(a, b)

    @pytest.mark.parametrize("policy", NATIVE_STOCHASTIC_POLICIES)
    def test_stochastic_native_accounting_and_workload(self, policy):
        a = run_once(policy, "fast", seed=9)
        b = run_once(policy, "sharded:2", seed=9)
        # Identical workload realization; decisions are also identical
        # here because both kernels drive the same native batch path
        # against the same policy stream.
        assert a.total_arrived == b.total_arrived
        assert b.total_arrived == b.total_departed + b.final_queued
        assert b.histogram.total == b.total_departed
        np.testing.assert_array_equal(
            b.server_received - b.server_departed, b.final_queues
        )


class TestBitIdentitySized:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("policy", DETERMINISTIC_POLICIES)
    def test_deterministic_policies_identical(self, policy, shards):
        a = run_sized_once(policy, "fast", seed=5)
        b = run_sized_once(policy, f"sharded:{shards}", seed=5)
        assert_sized_identical(a, b)

    @pytest.mark.parametrize(
        "policy", FALLBACK_POLICIES + NATIVE_BIT_IDENTICAL_POLICIES
    )
    def test_fallback_and_lsq_policies_identical(self, policy):
        a = run_sized_once(policy, "fast", seed=11, rounds=300)
        b = run_sized_once(policy, "sharded:3", seed=11, rounds=300)
        assert_sized_identical(a, b)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_warmup_and_all_probes_identical(self, shards):
        a = run_sized_once("sed", "fast", seed=2, rounds=600, warmup=300,
                           probes=ALL_EXTRA_PROBES)
        b = run_sized_once("sed", f"sharded:{shards}", seed=2, rounds=600,
                           warmup=300, probes=ALL_EXTRA_PROBES)
        assert_sized_identical(a, b)

    def test_multi_block_carry(self):
        """Overload pushes jobs (and partially served heads) across
        block boundaries inside every shard store."""
        a = run_sized_once("jsq", "fast", seed=17, rounds=600, rho=1.02)
        b = run_sized_once("jsq", "sharded:4", seed=17, rounds=600, rho=1.02)
        assert_sized_identical(a, b)


class TestProcessStrategy:
    def test_unsized_process_equals_serial(self):
        a = run_once("jsq", "sharded:2", seed=5, rounds=300,
                     probes=ALL_EXTRA_PROBES, warmup=50)
        b = run_once("jsq", "sharded:2:process", seed=5, rounds=300,
                     probes=ALL_EXTRA_PROBES, warmup=50)
        assert_identical(a, b)

    def test_sized_process_equals_serial(self):
        a = run_sized_once("sed", "sharded:2", seed=5, rounds=300)
        b = run_sized_once("sed", "sharded:2:process", seed=5, rounds=300)
        assert_sized_identical(a, b)

    def test_async_feeder_pipelines_many_blocks(self):
        """Enough blocks to wrap the feeder queue several times; results
        must still be the serial strategy's exactly."""
        a = run_once("rr", "sharded:2", seed=8, rounds=5 * 256 + 19)
        b = run_once("rr", "sharded:2:process", seed=8, rounds=5 * 256 + 19)
        assert_identical(a, b)


class TestCompiledResolver:
    """``sharded:N[:strategy]:compiled`` -- shard-side compiled stores
    (numpy fallback without numba) plus the compiled coordinator round
    loop where the policy has one."""

    @pytest.mark.parametrize(
        "policy", DETERMINISTIC_POLICIES + FALLBACK_POLICIES
    )
    def test_fallback_matches_fast(self, policy):
        """Without numba the compiled resolver degrades to the numpy
        stores per worker; results must be untouched."""
        a = run_once(policy, "fast", seed=5)
        b = run_once(policy, "sharded:2:compiled", seed=5)
        assert_identical(a, b)

    @pytest.mark.parametrize("policy", DETERMINISTIC_POLICIES)
    def test_forced_compiled_stores_match_fast(self, policy, monkeypatch):
        """The compiled control flow itself (forced on, serial strategy)
        is bit-identical -- round kernel included for rr/wrr."""
        from repro.sim import compiled

        monkeypatch.setattr(compiled, "_FORCE_STORES", True)
        a = run_once(policy, "fast", seed=5, rounds=600, warmup=100,
                     probes=ALL_EXTRA_PROBES)
        b = run_once(policy, "sharded:3:compiled", seed=5, rounds=600,
                     warmup=100, probes=ALL_EXTRA_PROBES)
        assert_identical(a, b)

    def test_forced_sized_compiled_stores_match_fast(self, monkeypatch):
        from repro.sim import compiled

        monkeypatch.setattr(compiled, "_FORCE_STORES", True)
        a = run_sized_once("jsq", "fast", seed=17, rounds=600, rho=1.02)
        b = run_sized_once("jsq", "sharded:3:compiled", seed=17, rounds=600,
                           rho=1.02)
        assert_sized_identical(a, b)

    def test_process_strategy_composes(self):
        a = run_once("rr", "sharded:2", seed=5, rounds=300)
        b = run_once("rr", "sharded:2:process:compiled", seed=5, rounds=300)
        assert_identical(a, b)


class TestShardingPropertyBased:
    @given(
        policy=st.sampled_from(DETERMINISTIC_POLICIES),
        shards=st.integers(1, 5),
        seed=st.integers(0, 2**20),
        n=st.integers(2, 7),
        m=st.integers(1, 4),
        rho=st.floats(0.3, 1.05),
        rounds=st.integers(1, 120),
        warmup_fraction=st.floats(0.0, 0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_sharded_agrees_with_fast(
        self, policy, shards, seed, n, m, rho, rounds, warmup_fraction
    ):
        """Hypothesis sweep over shard counts, systems, loads (slightly
        inadmissible included), horizons and warmup cuts: the sharded
        kernel must reproduce the fast kernel exactly and conserve jobs."""
        rng = np.random.default_rng(seed % 1000)
        rates = rng.uniform(0.5, 6.0, size=n)
        lambdas = np.full(m, rho * rates.sum() / m)
        warmup = int(rounds * warmup_fraction)
        results = []
        for backend in ("fast", f"sharded:{shards}"):
            result = Simulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(lambdas),
                service=GeometricService(rates),
                config=SimulationConfig(
                    rounds=rounds, seed=seed, warmup=warmup, backend=backend,
                    probes=("server_stats",),
                ),
            ).run()
            assert result.total_arrived == result.total_departed + result.final_queued
            results.append(result)
        assert_identical(*results)

    @given(
        policy=st.sampled_from(DETERMINISTIC_POLICIES),
        shards=st.integers(1, 5),
        seed=st.integers(0, 2**20),
        n=st.integers(2, 7),
        m=st.integers(1, 4),
        rho=st.floats(0.3, 1.05),
        rounds=st.integers(1, 120),
        mean_size=st.floats(1.2, 6.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_sized_sharded_agrees_with_fast(
        self, policy, shards, seed, n, m, rho, rounds, mean_size
    ):
        rng = np.random.default_rng(seed % 1000)
        rates = rng.uniform(1.0, 8.0, size=n)
        sizes = GeometricSize(mean_size)
        jobs_per_round = rho * rates.sum() / sizes.mean
        results = []
        for backend in ("fast", f"sharded:{shards}"):
            result = SizedSimulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(np.full(m, jobs_per_round / m)),
                service=GeometricService(rates),
                sizes=sizes,
                rounds=rounds,
                seed=seed,
                backend=backend,
            ).run()
            assert (
                result.total_units_arrived
                == result.total_units_departed + result.final_units_queued
            )
            results.append(result)
        assert_sized_identical(*results)


class TestMergePartition:
    def _bound_server_stats(self, rates, blocks):
        probe = ServerStatsProbe()
        probe.bind(
            ProbeContext(
                num_servers=len(rates),
                num_dispatchers=2,
                rates=np.asarray(rates, dtype=np.float64),
                rounds=sum(b.length for b in blocks),
                warmup=0,
            )
        )
        for block in blocks:
            probe.observe_block(block)
        return probe

    def _block(self, received, done, queues, start=0):
        from repro.sim.probes import ProbeBlock

        received = np.asarray(received, dtype=np.int64)
        return ProbeBlock(
            start_round=start,
            length=received.shape[0],
            received=received,
            done=np.asarray(done, dtype=np.int64),
            queues=np.asarray(queues, dtype=np.int64),
        )

    def test_server_stats_partition_merge_concatenates(self):
        rng = np.random.default_rng(0)
        received = rng.integers(0, 5, size=(6, 4))
        done = rng.integers(0, 4, size=(6, 4))
        queues = rng.integers(0, 9, size=(6, 4))
        rates = [1.0, 2.0, 3.0, 4.0]
        whole = self._bound_server_stats(
            rates, [self._block(received, done, queues)]
        )
        left = self._bound_server_stats(
            rates[:2], [self._block(received[:, :2], done[:, :2], queues[:, :2])]
        )
        right = self._bound_server_stats(
            rates[2:], [self._block(received[:, 2:], done[:, 2:], queues[:, 2:])]
        )
        left.merge_partition(right)
        np.testing.assert_array_equal(left.utilization(), whole.utilization())
        np.testing.assert_array_equal(left.idle_fraction(), whole.idle_fraction())
        np.testing.assert_array_equal(
            left.mean_queue_lengths(), whole.mean_queue_lengths()
        )
        np.testing.assert_array_equal(
            left.queue_length_distribution(), whole.queue_length_distribution()
        )
        assert left.summary() == whole.summary()

    def test_server_stats_partition_merge_rejects_round_mismatch(self):
        rng = np.random.default_rng(1)
        make = lambda rounds: self._bound_server_stats(
            [1.0, 2.0],
            [
                self._block(
                    rng.integers(0, 3, size=(rounds, 2)),
                    rng.integers(0, 3, size=(rounds, 2)),
                    rng.integers(0, 3, size=(rounds, 2)),
                )
            ],
        )
        with pytest.raises(ValueError, match="same rounds"):
            make(4).merge_partition(make(5))

    def test_replication_merge_still_adds(self):
        """merge (replication pooling) and merge_partition (shard
        concatenation) stay distinct operations on server_stats."""
        rng = np.random.default_rng(2)
        blocks = [
            self._block(
                rng.integers(0, 3, size=(5, 3)),
                rng.integers(0, 3, size=(5, 3)),
                rng.integers(0, 3, size=(5, 3)),
            )
            for _ in range(2)
        ]
        rates = [1.0, 2.0, 3.0]
        a = self._bound_server_stats(rates, blocks[:1])
        b = self._bound_server_stats(rates, blocks[1:])
        a.merge(b)
        assert a.summary()["rounds"] == 10.0
        c = self._bound_server_stats(rates, blocks[:1])
        with pytest.raises(ValueError, match="matching server counts"):
            c.merge(self._bound_server_stats(rates[:2], []))

    def test_default_merge_partition_falls_back_to_merge(self):
        a, b = ResponseTimeProbe(), ResponseTimeProbe()
        a.histogram.record(3, 2)
        b.histogram.record(5, 1)
        a.merge_partition(b)
        assert a.histogram.total == 3
        assert a.histogram.max_response_time == 5

    def test_partitionable_flags(self):
        from repro.sim.probes import (
            DispatcherStatsProbe,
            HerdingSignalProbe,
            WindowedMeanProbe,
        )

        from repro.sim.probes import ServerResponseStatsProbe

        assert ResponseTimeProbe.partitionable
        assert QueueSeriesProbe.partitionable
        assert ServerStatsProbe.partitionable
        assert ServerResponseStatsProbe.partitionable
        assert WindowedMeanProbe.partitionable
        assert HerdingSignalProbe.partitionable
        assert not DispatcherStatsProbe.partitionable
        assert not Probe.partitionable  # custom probes default to global feed


class TestProbeRouting:
    def test_split_routes_by_partitionable(self):
        shard, coordinator = split_probe_specs(
            ("server_stats", "herding", "windowed_mean", "dispatcher_stats")
        )
        assert [s.name for s in shard] == [
            "server_stats", "herding", "windowed_mean"
        ]
        assert [s.name for s in coordinator] == ["dispatcher_stats"]

    def test_custom_global_probe_matches_fast(self):
        """A naive custom probe (all fields, not partitionable) runs in
        the coordinator and sees exactly the fast kernel's block feed."""

        @register_probe("test_shard_totals")
        class TotalsProbe(Probe):
            description = "test: sums every block field"

            def __init__(self):
                super().__init__()
                self.totals = {"batch": 0, "received": 0, "done": 0, "queues": 0}

            def observe_block(self, block):
                for key in self.totals:
                    array = getattr(block, key)
                    if array is not None:
                        self.totals[key] += int(array.sum())

            def summary(self):
                return {k: float(v) for k, v in self.totals.items()}

            def merge(self, other):
                self._check_merge(other)
                for key in self.totals:
                    self.totals[key] += other.totals[key]

            def get_state(self):
                return dict(self.totals)

            def set_state(self, state):
                self.totals.update(state)

        try:
            a = run_once("jsq", "fast", seed=6, probes=("test_shard_totals",))
            b = run_once("jsq", "sharded:3", seed=6, probes=("test_shard_totals",))
            assert (
                a.probes["test_shard_totals"].totals
                == b.probes["test_shard_totals"].totals
            )
            assert a.probes["test_shard_totals"].totals["received"] == a.total_arrived
        finally:
            probes_module._REGISTRY._factories.pop("test_shard_totals", None)

    def test_response_probe_must_be_partitionable(self):
        @register_probe("test_shard_responses")
        class WantsResponses(Probe):
            description = "test: non-partitionable response listener"
            fields = frozenset()
            wants_responses = True

            def summary(self):
                return {}

            def merge(self, other):
                pass

            def get_state(self):
                return {}

            def set_state(self, state):
                pass

        try:
            with pytest.raises(ValueError, match="wants response events"):
                run_once("jsq", "sharded:2", probes=("test_shard_responses",),
                         rounds=10)
        finally:
            probes_module._REGISTRY._factories.pop("test_shard_responses", None)

    def test_partitionable_probe_must_not_read_batch(self):
        @register_probe("test_shard_batchreader")
        class BatchReader(Probe):
            description = "test: partitionable batch reader"
            fields = frozenset({"batch"})
            partitionable = True

            def summary(self):
                return {}

            def merge(self, other):
                pass

            def get_state(self):
                return {}

            def set_state(self, state):
                pass

        try:
            with pytest.raises(ValueError, match="no server axis"):
                run_once("jsq", "sharded:2", probes=("test_shard_batchreader",),
                         rounds=10)
        finally:
            probes_module._REGISTRY._factories.pop("test_shard_batchreader", None)


class TestEndToEnd:
    def test_experiment_grid_matches_fast(self):
        from repro.experiments import Experiment
        from repro.workloads.scenarios import SystemSpec

        base = dict(
            policies=["jsq", "sed"],
            systems=SystemSpec(10, 3),
            loads=[0.8],
            rounds=200,
            metrics=("server_stats",),
        )
        fast = Experiment(**base, backend="fast").run()
        sharded = Experiment(**base, backend="sharded:2").run()
        assert [r.metrics for r in fast.records] == [
            r.metrics for r in sharded.records
        ]

    def test_sized_experiment_grid_matches_fast(self):
        from repro.experiments import Experiment, WorkloadSpec
        from repro.workloads.scenarios import SystemSpec

        base = dict(
            policies=["jsq"],
            systems=SystemSpec(8, 2),
            loads=[0.7],
            rounds=150,
            warmup=40,
            workloads=(WorkloadSpec.sized(GeometricSize(2.0)),),
        )
        fast = Experiment(**base, backend="fast").run()
        sharded = Experiment(**base, backend="sharded:2").run()
        assert [r.metrics for r in fast.records] == [
            r.metrics for r in sharded.records
        ]

    def test_experiment_validates_shard_parameters(self):
        from repro.experiments import Experiment
        from repro.workloads.scenarios import SystemSpec

        with pytest.raises(ValueError, match="invalid shard count"):
            Experiment(
                policies=["jsq"],
                systems=SystemSpec(4, 1),
                loads=[0.5],
                rounds=50,
                backend="sharded:many",
            )

    def test_result_persistence_round_trip(self, tmp_path):
        from repro.analysis.persistence import load_result, save_result

        result = run_once("jsq", "sharded:2", seed=3, rounds=120,
                          probes=("server_stats",))
        path = save_result(result, tmp_path / "sharded.json")
        loaded = load_result(path)
        assert loaded.config.backend == "sharded:2"
        np.testing.assert_array_equal(
            loaded.histogram.counts, result.histogram.counts
        )
        assert (
            loaded.probes["server_stats"].summary()
            == result.probes["server_stats"].summary()
        )

    def test_experiment_persistence_round_trip(self, tmp_path):
        from repro.analysis.persistence import load_experiment, save_experiment
        from repro.experiments import Experiment
        from repro.workloads.scenarios import SystemSpec

        result = Experiment(
            policies=["jsq"],
            systems=SystemSpec(6, 2),
            loads=[0.7],
            rounds=80,
            backend="sharded:2",
        ).run()
        path = save_experiment(result, tmp_path / "grid.json")
        loaded = load_experiment(path)
        assert loaded.experiment.backend == "sharded:2"
        assert list(loaded.records) == list(result.records)


class TestCLI:
    def test_backends_lists_sharded_in_both_registries(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert out.count("sharded") >= 2

    def test_experiment_with_sharded_backend(self, capsys):
        from repro.cli import main

        code = main([
            "experiment", "--policies", "jsq", "--systems", "10x2",
            "--loads", "0.7", "--rounds", "100", "--backend", "sharded:2",
        ])
        assert code == 0
        assert "backend: sharded:2" in capsys.readouterr().out

    def test_simulate_with_sharded_backend(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "result.json"
        code = main([
            "simulate", "--policy", "jsq", "--servers", "10",
            "--dispatchers", "2", "--rho", "0.7", "--rounds", "100",
            "--backend", "sharded:2", "--save", str(path),
        ])
        assert code == 0
        assert json.loads(path.read_text())["config"]["backend"] == "sharded:2"

    def test_simulate_rejects_bad_shard_spec(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="invalid backend"):
            main([
                "simulate", "--policy", "jsq", "--rho", "0.7",
                "--rounds", "50", "--backend", "sharded:many",
            ])
