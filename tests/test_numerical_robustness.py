"""Numerical robustness of the core math at extreme scales.

Production clusters can present inputs far outside the evaluation's cozy
ranges: rates spanning orders of magnitude (a CPU next to a TPU pod),
queues in the millions after an incident, estimated arrivals in the
hundreds of thousands.  The closed-form KKT solution must stay a valid,
optimal distribution there -- these tests pin that down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.iwl import compute_iba, compute_iwl, compute_iwl_reference
from repro.core.probabilities import (
    kkt_residuals,
    scd_probabilities,
    scd_probabilities_loop,
)
from repro.policies.greedy import greedy_batch_assign, greedy_certificate_ok


def assert_valid_distribution(p):
    assert np.all(np.isfinite(p))
    assert np.all(p >= 0)
    assert p.sum() == pytest.approx(1.0, abs=1e-8)


class TestExtremeRates:
    def test_six_orders_of_magnitude(self):
        rates = np.array([1e-3, 1.0, 1e3])
        queues = np.array([5, 5, 5])
        iwl = compute_iwl(queues, rates, 50)
        p = scd_probabilities(queues, rates, 50, iwl)
        assert_valid_distribution(p)
        # Essentially all work belongs on the fast server.
        assert p[2] > 0.99

    def test_tiny_rates_only(self):
        rates = np.array([1e-6, 2e-6])
        queues = np.array([3, 1])
        iwl = compute_iwl(queues, rates, 10)
        p = scd_probabilities(queues, rates, 10, iwl)
        assert_valid_distribution(p)

    @given(
        st.lists(
            st.floats(min_value=1e-4, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=80)
    def test_wild_rate_vectors(self, rate_list):
        rates = np.array(rate_list)
        queues = np.arange(rates.size, dtype=np.int64) * 3
        arrivals = 40
        iwl = compute_iwl(queues, rates, arrivals)
        p = scd_probabilities(queues, rates, arrivals, iwl)
        assert_valid_distribution(p)


class TestHugeQueues:
    def test_million_deep_queues(self):
        queues = np.array([1_000_000, 0, 500_000])
        rates = np.array([5.0, 1.0, 2.0])
        iwl = compute_iwl(queues, rates, 100)
        p = scd_probabilities(queues, rates, 100, iwl)
        assert_valid_distribution(p)
        assert p[1] > 0.9  # the empty server takes nearly everything

    def test_iwl_precision_at_scale(self):
        queues = np.array([10**7, 10**7 + 3])
        rates = np.ones(2)
        iwl = compute_iwl(queues, rates, 5)
        reference = compute_iwl_reference(queues, rates, 5)
        assert iwl == pytest.approx(reference, rel=1e-12)
        iba = compute_iba(queues, rates, iwl)
        assert iba.sum() == pytest.approx(5.0, abs=1e-6)


class TestHugeArrivals:
    def test_hundred_thousand_estimate(self):
        rng = np.random.default_rng(0)
        queues = rng.integers(0, 100, size=50)
        rates = rng.uniform(1, 10, size=50)
        a = 100_000
        iwl = compute_iwl(queues, rates, a)
        p = scd_probabilities(queues, rates, a, iwl)
        assert_valid_distribution(p)
        res = kkt_residuals(p, queues, rates, a, iwl)
        assert res["stationarity"] < 1e-4  # scaled by the huge a

    def test_loop_and_vectorized_agree_at_scale(self):
        rng = np.random.default_rng(1)
        queues = rng.integers(0, 10**6, size=200)
        rates = rng.uniform(0.01, 100.0, size=200)
        a = 50_000
        iwl = compute_iwl(queues, rates, a)
        np.testing.assert_allclose(
            scd_probabilities(queues, rates, a, iwl),
            scd_probabilities_loop(queues, rates, a, iwl),
            atol=1e-9,
        )


class TestLargeSystems:
    def test_ten_thousand_servers(self):
        rng = np.random.default_rng(2)
        queues = rng.integers(0, 50, size=10_000)
        rates = rng.uniform(1, 100, size=10_000)
        a = int(rates.sum() * 0.9)
        iwl = compute_iwl(queues, rates, a)
        p = scd_probabilities(queues, rates, a, iwl)
        assert_valid_distribution(p)

    def test_greedy_at_scale(self):
        rng = np.random.default_rng(3)
        queues = rng.integers(0, 50, size=5_000)
        rates = rng.uniform(1, 10, size=5_000)
        counts = greedy_batch_assign(queues, rates, 25_000)
        assert counts.sum() == 25_000
        assert greedy_certificate_ok(queues, rates, counts)


class TestDegenerateShapes:
    def test_single_server_gets_everything(self):
        p = scd_probabilities(np.array([7]), np.array([2.0]), 10, 8.5)
        np.testing.assert_allclose(p, [1.0])

    def test_two_identical_servers_split(self):
        queues = np.array([4, 4])
        rates = np.array([3.0, 3.0])
        iwl = compute_iwl(queues, rates, 6)
        p = scd_probabilities(queues, rates, 6, iwl)
        np.testing.assert_allclose(p, [0.5, 0.5], atol=1e-12)

    def test_all_empty_heterogeneous(self):
        queues = np.zeros(5, dtype=np.int64)
        rates = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        a = 31
        iwl = compute_iwl(queues, rates, a)
        assert iwl == pytest.approx(1.0)
        p = scd_probabilities(queues, rates, a, iwl)
        assert_valid_distribution(p)
        # Probabilities order like the rates (faster -> more likely).
        assert np.all(np.diff(p) > 0)
