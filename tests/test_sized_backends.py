"""Tests for the sized-engine backend registry and the vectorized sized kernel.

The contract under test (ISSUE 3 acceptance):

* the sized backend registry mirrors the base engine registry
  (names, errors, descriptions);
* the ``"fast"`` sized backend is *bit-identical* to ``"reference"`` --
  same seeds give the same :class:`SizedSimulationResult` including
  histograms, queue series, and unit accounting -- for deterministic
  policies (native batch paths included) and for every policy on the
  base-class ``dispatch_round`` fallback, across all three job-size
  distributions;
* stochastic policies with native batch paths keep exact unit
  accounting and see the identical workload realization;
* the unit-denominated :class:`SizedBatchQueueStore` reproduces the
  reference :class:`SizedServerQueue` drain exactly, job by job,
  including partial service of the head job across block boundaries;
* ``wrr``'s native smooth-credit batch path is bit-identical to the
  per-dispatcher fallback loop (counts *and* carried credit state);
* the backend choice is plumbed end-to-end: ``SizedSimulation``,
  ``simulate_cell``, ``Experiment`` grids, JSON persistence, and the
  CLI all accept sized + ``"fast"``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.base import Policy, SystemContext, has_native_dispatch_round, make_policy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.batchstore import SizedBatchQueueStore
from repro.sim.metrics import ResponseTimeHistogram
from repro.sim.service import GeometricService
from repro.sim.sized import (
    BimodalSize,
    DeterministicSize,
    GeometricSize,
    SizedServerQueue,
    SizedSimulation,
)
from repro.sim.sizedbackends import (
    SizedFastBackend,
    SizedReferenceBackend,
    available_sized_backends,
    make_sized_backend,
    sized_backend_descriptions,
)

#: Policies whose decisions involve no randomness (native batch paths
#: included): identical runs on both backends are required bit-for-bit.
DETERMINISTIC_POLICIES = ["jsq", "sed", "rr", "wrr"]
#: Stateful / stochastic policies without a native batch path: they run
#: through the fallback, so they must also be bit-identical.
FALLBACK_POLICIES = ["scd", "twf", "scd-sized"]
#: Native batch paths that restructure no RNG consumption (LSQ/LED's
#: vectorized sampled refreshes and JIQ's fused empty-idle fallback draw
#: the identical stream): these must also stay bit-identical across
#: backends.
NATIVE_BIT_IDENTICAL_POLICIES = ["lsq", "hlsq", "led", "jiq"]
#: Stochastic policies with native batch paths: exact accounting plus an
#: identical workload realization only.
NATIVE_STOCHASTIC_POLICIES = ["wr", "random", "jsq(2)", "hjsq(2)"]

SIZE_DISTRIBUTIONS = {
    "det3": DeterministicSize(3),
    "geom2.5": GeometricSize(2.5),
    "bimodal": BimodalSize(small=1, large=20, large_prob=0.05),
}


def run_once(policy, sizes, backend, seed=0, n=8, m=3, rho=0.85, rounds=400):
    rng = np.random.default_rng(123)
    rates = rng.uniform(2.0, 10.0, size=n)
    jobs_per_round = rho * rates.sum() / sizes.mean
    return SizedSimulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(np.full(m, jobs_per_round / m)),
        service=GeometricService(rates),
        sizes=sizes,
        rounds=rounds,
        seed=seed,
        backend=backend,
    ).run()


def forced_sized_compiled():
    """A sized ``compiled`` backend running the compiled control flow
    even without numba (the plain-Python twins of the jitted code)."""
    backend = make_sized_backend("compiled")
    backend.force = True
    return backend


def assert_identical(a, b):
    """Both SizedSimulationResults describe the exact same run."""
    assert a.total_jobs == b.total_jobs
    assert a.total_units_arrived == b.total_units_arrived
    assert a.total_units_departed == b.total_units_departed
    assert a.final_units_queued == b.final_units_queued
    np.testing.assert_array_equal(a.histogram.counts, b.histogram.counts)
    assert a.histogram.max_response_time == b.histogram.max_response_time
    np.testing.assert_array_equal(a.queue_series.values, b.queue_series.values)


class TestRegistry:
    def test_both_backends_registered(self):
        assert {"reference", "fast"} <= set(available_sized_backends())

    def test_mirrors_base_registry_names(self):
        from repro.sim.backends import available_backends, backend_capabilities

        base = set(available_backends())
        sized = set(available_sized_backends())
        # Analytic backends integrate a fluid limit that has no
        # job-size dimension, so they live only in the unsized registry;
        # every simulation kernel must exist in both.
        analytic = {name for name in base if backend_capabilities(name).analytic}
        assert "meanfield" in analytic
        assert base - analytic == sized

    def test_descriptions_cover_all(self):
        descriptions = sized_backend_descriptions()
        assert set(descriptions) == set(available_sized_backends())
        assert all(descriptions.values())

    def test_make_backend_by_name_and_passthrough(self):
        assert isinstance(make_sized_backend("reference"), SizedReferenceBackend)
        assert isinstance(make_sized_backend("FAST"), SizedFastBackend)
        instance = SizedFastBackend()
        assert make_sized_backend(instance) is instance

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown sized engine backend"):
            make_sized_backend("warp-drive")

    def test_simulation_rejects_empty_backend(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_once("jsq", DeterministicSize(1), backend="", rounds=10)

    def test_unknown_backend_fails_at_run(self):
        with pytest.raises(ValueError, match="unknown sized engine backend"):
            run_once("jsq", DeterministicSize(1), backend="warp-drive", rounds=10)


class TestBitExactness:
    @pytest.mark.parametrize("dist", sorted(SIZE_DISTRIBUTIONS))
    @pytest.mark.parametrize("policy", DETERMINISTIC_POLICIES)
    def test_deterministic_policies_identical(self, policy, dist):
        sizes = SIZE_DISTRIBUTIONS[dist]
        a = run_once(policy, sizes, "reference", seed=5)
        b = run_once(policy, sizes, "fast", seed=5)
        assert_identical(a, b)

    @pytest.mark.parametrize("dist", sorted(SIZE_DISTRIBUTIONS))
    @pytest.mark.parametrize("policy", FALLBACK_POLICIES)
    def test_fallback_policies_identical(self, policy, dist):
        assert not has_native_dispatch_round(make_policy(policy))
        sizes = SIZE_DISTRIBUTIONS[dist]
        a = run_once(policy, sizes, "reference", seed=11, rounds=300)
        b = run_once(policy, sizes, "fast", seed=11, rounds=300)
        assert_identical(a, b)

    @pytest.mark.parametrize("policy", NATIVE_BIT_IDENTICAL_POLICIES)
    def test_native_bit_identical_policies(self, policy):
        """LSQ's native path draws the identical refresh stream, so it
        stays bit-identical on the sized engine too."""
        assert has_native_dispatch_round(make_policy(policy))
        sizes = GeometricSize(2.5)
        a = run_once(policy, sizes, "reference", seed=11, rounds=300)
        b = run_once(policy, sizes, "fast", seed=11, rounds=300)
        assert_identical(a, b)

    def test_non_chunk_aligned_rounds(self):
        """Rounds not divisible by the block size exercise the tail block."""
        sizes = GeometricSize(3.0)
        a = run_once("sed", sizes, "reference", seed=3, rounds=259)
        b = run_once("sed", sizes, "fast", seed=3, rounds=259)
        assert_identical(a, b)

    def test_multi_block_carry(self):
        """Several full blocks force jobs (and partial heads) across
        block boundaries at high load."""
        sizes = BimodalSize(small=2, large=40, large_prob=0.1)
        a = run_once("jsq", sizes, "reference", seed=17, rounds=600, rho=1.02)
        b = run_once("jsq", sizes, "fast", seed=17, rounds=600, rho=1.02)
        assert_identical(a, b)

    def test_unit_sizes_match_base_model(self):
        """DeterministicSize(1) recovers the base model's job counting."""
        a = run_once("jsq", DeterministicSize(1), "fast", seed=2)
        assert a.total_units_arrived == a.total_jobs


class TestCompiledBitExactness:
    """The sized ``compiled`` kernel against ``fast``, compiled control
    flow forced on so numba-less hosts cover the jitted per-job resolver's
    exact (plain-Python) body."""

    def test_registered_with_description(self):
        assert "compiled" in available_sized_backends()
        assert sized_backend_descriptions()["compiled"]

    @pytest.mark.parametrize("dist", sorted(SIZE_DISTRIBUTIONS))
    @pytest.mark.parametrize(
        "policy", DETERMINISTIC_POLICIES + FALLBACK_POLICIES
    )
    def test_bit_identical_to_fast(self, policy, dist):
        sizes = SIZE_DISTRIBUTIONS[dist]
        a = run_once(policy, sizes, "fast", seed=5, rounds=300)
        b = run_once(policy, sizes, forced_sized_compiled(), seed=5, rounds=300)
        assert_identical(a, b)

    def test_multi_block_partial_head_carry(self):
        """Large jobs partially served across block boundaries must carry
        their remaining units identically."""
        sizes = BimodalSize(small=2, large=40, large_prob=0.1)
        a = run_once("jsq", sizes, "fast", seed=17, rounds=600, rho=1.02)
        b = run_once(
            "jsq", sizes, forced_sized_compiled(), seed=17, rounds=600, rho=1.02
        )
        assert_identical(a, b)

    @given(
        policy=st.sampled_from(DETERMINISTIC_POLICIES + ["scd"]),
        dist=st.sampled_from(sorted(SIZE_DISTRIBUTIONS)),
        seed=st.integers(0, 2**20),
        n=st.integers(2, 7),
        m=st.integers(1, 4),
        rho=st.floats(0.3, 1.05),
        rounds=st.integers(1, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_compiled_agrees_with_fast(
        self, policy, dist, seed, n, m, rho, rounds
    ):
        sizes = SIZE_DISTRIBUTIONS[dist]
        rng = np.random.default_rng(seed % 1000)
        rates = rng.uniform(0.5, 12.0, size=n)
        jobs_per_round = rho * rates.sum() / sizes.mean
        lambdas = np.full(m, jobs_per_round / m)
        results = []
        for backend in ("fast", forced_sized_compiled()):
            result = SizedSimulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(lambdas),
                service=GeometricService(rates),
                sizes=sizes,
                rounds=rounds,
                seed=seed,
                backend=backend,
            ).run()
            assert (
                result.total_units_arrived
                == result.total_units_departed + result.final_units_queued
            )
            results.append(result)
        assert_identical(*results)


class TestStochasticNativePaths:
    @pytest.mark.parametrize("policy", NATIVE_STOCHASTIC_POLICIES)
    def test_native_override_present(self, policy):
        assert has_native_dispatch_round(make_policy(policy))

    @pytest.mark.parametrize("policy", NATIVE_STOCHASTIC_POLICIES)
    def test_exact_unit_accounting(self, policy):
        result = run_once(policy, GeometricSize(2.5), "fast", seed=7, rounds=500)
        assert (
            result.total_units_arrived
            == result.total_units_departed + result.final_units_queued
        )
        assert result.histogram.total <= result.total_jobs

    @pytest.mark.parametrize("policy", NATIVE_STOCHASTIC_POLICIES)
    def test_identical_workload_realization(self, policy):
        """Arrival and size streams are untouched by the policy's path."""
        a = run_once(policy, GeometricSize(2.5), "reference", seed=9)
        b = run_once(policy, GeometricSize(2.5), "fast", seed=9)
        assert a.total_jobs == b.total_jobs
        assert a.total_units_arrived == b.total_units_arrived


class TestSizedBackendPropertyBased:
    @given(
        policy=st.sampled_from(DETERMINISTIC_POLICIES + ["scd"]),
        dist=st.sampled_from(sorted(SIZE_DISTRIBUTIONS)),
        seed=st.integers(0, 2**20),
        n=st.integers(2, 7),
        m=st.integers(1, 4),
        rho=st.floats(0.3, 1.05),
        rounds=st.integers(1, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_backends_agree_and_conserve_units(
        self, policy, dist, seed, n, m, rho, rounds
    ):
        """Hypothesis sweep: identical records + exact accounting over
        random sizes, loads (including slightly inadmissible ones), and
        heterogeneous rate draws."""
        sizes = SIZE_DISTRIBUTIONS[dist]
        rng = np.random.default_rng(seed % 1000)
        rates = rng.uniform(0.5, 12.0, size=n)
        jobs_per_round = rho * rates.sum() / sizes.mean
        lambdas = np.full(m, jobs_per_round / m)
        results = []
        for backend in ("reference", "fast"):
            result = SizedSimulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(lambdas),
                service=GeometricService(rates),
                sizes=sizes,
                rounds=rounds,
                seed=seed,
                backend=backend,
            ).run()
            assert (
                result.total_units_arrived
                == result.total_units_departed + result.final_units_queued
            )
            assert result.histogram.total <= result.total_jobs
            results.append(result)
        assert_identical(*results)


class TestWRRNativeBatchPath:
    """Satellite: the smooth-credit loop batched across dispatchers."""

    def _bound_pair(self, n, m, seed):
        rng = np.random.default_rng(seed)
        rates = rng.uniform(0.5, 10.0, size=n)
        native, fallback = make_policy("wrr"), make_policy("wrr")
        for policy in (native, fallback):
            policy.bind(
                SystemContext(
                    rates=rates,
                    num_dispatchers=m,
                    rng=np.random.default_rng(1),
                )
            )
        return native, fallback

    def test_native_override_present(self):
        assert has_native_dispatch_round(make_policy("wrr"))

    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 8),
        m=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_and_credit_state_bit_identical(self, seed, n, m):
        native, fallback = self._bound_pair(n, m, seed)
        rng = np.random.default_rng(seed + 1)
        for _ in range(4):
            batch = rng.integers(0, 9, size=m)
            queues = rng.integers(0, 30, size=n)
            rows_native = native.dispatch_round(batch, queues)
            rows_fallback = Policy.dispatch_round(fallback, batch, queues)
            np.testing.assert_array_equal(rows_native, rows_fallback)
            np.testing.assert_array_equal(native._credits, fallback._credits)

    def test_empty_round_leaves_credits_untouched(self):
        native, _ = self._bound_pair(4, 3, seed=0)
        before = native._credits.copy()
        rows = native.dispatch_round(np.zeros(3, dtype=np.int64), np.zeros(4))
        assert rows.sum() == 0
        np.testing.assert_array_equal(native._credits, before)


class TestSizedBatchQueueStore:
    """The unit-denominated block resolver against the reference deques."""

    def reference_drain(self, n, admissions, done_blocks, warmup):
        """Replay the same sized admissions/completions through
        SizedServerQueues (warmup gated like the store's contract)."""
        servers = [SizedServerQueue() for _ in range(n)]
        histogram = ResponseTimeHistogram()
        gated = ResponseTimeHistogram()
        t = 0
        for per_round, done_block in zip(admissions, done_blocks):
            for jobs_by_server, done in zip(per_round, done_block):
                for s, sizes in jobs_by_server.items():
                    servers[s].admit(t, np.asarray(sizes, dtype=np.int64))
                for s in np.flatnonzero(done):
                    sink = gated if t >= warmup else None
                    completed = servers[s].complete(int(done[s]), t, sink)
                    assert completed == int(done[s])
                t += 1
        del histogram
        return gated, np.array([q.units for q in servers], dtype=np.int64)

    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(1, 5),
        blocks=st.integers(1, 3),
        block_len=st.integers(1, 10),
        warmup=st.integers(0, 6),
        max_size=st.integers(1, 9),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_sized_server_queue_semantics(
        self, seed, n, blocks, block_len, warmup, max_size
    ):
        rng = np.random.default_rng(seed)
        store = SizedBatchQueueStore(n)
        histogram = ResponseTimeHistogram()
        queued_units = np.zeros(n, dtype=np.int64)
        admissions, done_blocks = [], []
        start = 0
        for _ in range(blocks):
            per_round = []
            done_block = np.zeros((block_len, n), dtype=np.int64)
            job_servers, job_rounds, job_sizes = [], [], []
            for i in range(block_len):
                jobs_by_server = {}
                for s in range(n):
                    count = int(rng.integers(0, 4))
                    if count:
                        sizes = rng.integers(1, max_size + 1, size=count)
                        jobs_by_server[s] = sizes
                        queued_units[s] += int(sizes.sum())
                        job_servers.append(np.full(count, s, dtype=np.int64))
                        job_rounds.append(np.full(count, start + i, dtype=np.int64))
                        job_sizes.append(sizes.astype(np.int64))
                per_round.append(jobs_by_server)
                # Any feasible unit-completion vector (<= queued) is legal.
                done_block[i] = rng.integers(0, queued_units + 1)
                queued_units -= done_block[i]
            flat = lambda parts: (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            # Jobs were generated round-major; server-major stable sort
            # is the order the store requires.
            srv = flat(job_servers)
            order = np.argsort(srv, kind="stable")
            store.process_block(
                start,
                srv[order],
                flat(job_rounds)[order],
                flat(job_sizes)[order],
                done_block,
                histogram,
                warmup,
            )
            admissions.append(per_round)
            done_blocks.append(done_block)
            start += block_len
        expected_hist, expected_units = self.reference_drain(
            n, admissions, done_blocks, warmup
        )
        np.testing.assert_array_equal(histogram.counts, expected_hist.counts)
        np.testing.assert_array_equal(store.queued_units(), expected_units)
        assert int(store.queued_units().sum()) == int(queued_units.sum())

    def test_partial_head_job_carries_across_blocks(self):
        """A job half-served at a block boundary finishes with the
        response time of its *last* unit's round."""
        store = SizedBatchQueueStore(1)
        histogram = ResponseTimeHistogram()
        # Round 0: one job of 5 units; rounds 0-1 drain 2+2 units.
        store.process_block(
            0,
            np.array([0]),
            np.array([0]),
            np.array([5]),
            np.array([[2], [2]], dtype=np.int64),
            histogram,
        )
        assert histogram.total == 0
        assert store.queued_units()[0] == 1
        assert store.job_counts()[0] == 1
        # Round 2: the final unit drains -> response 2 - 0 + 1 = 3.
        store.process_block(
            2,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.array([[1]], dtype=np.int64),
            histogram,
        )
        np.testing.assert_array_equal(histogram.counts, [0, 0, 0, 1])
        assert store.queued_units()[0] == 0
        assert store.job_counts()[0] == 0

    def test_fifo_across_jobs_and_servers(self):
        store = SizedBatchQueueStore(2)
        histogram = ResponseTimeHistogram()
        # Server 0: jobs of 2 and 1 units (round 0); server 1: 3 units.
        store.process_block(
            0,
            np.array([0, 0, 1]),
            np.array([0, 0, 0]),
            np.array([2, 1, 3]),
            np.array([[3, 3]], dtype=np.int64),
            histogram,
        )
        # All three jobs complete in round 0 -> response 1 each.
        np.testing.assert_array_equal(histogram.counts, [0, 3])

    def test_overdrain_detected(self):
        store = SizedBatchQueueStore(2)
        with pytest.raises(RuntimeError, match="drained past"):
            store.process_block(
                0,
                np.array([0]),
                np.array([0]),
                np.array([3]),
                np.array([[4, 0]], dtype=np.int64),
                ResponseTimeHistogram(),
            )

    def test_unsorted_jobs_rejected(self):
        store = SizedBatchQueueStore(2)
        with pytest.raises(ValueError, match="server-major"):
            store.process_block(
                0,
                np.array([1, 0]),
                np.array([0, 0]),
                np.array([1, 1]),
                np.zeros((1, 2), dtype=np.int64),
                None,
            )

    def test_empty_block_is_noop(self):
        store = SizedBatchQueueStore(3)
        empty = np.empty(0, dtype=np.int64)
        store.process_block(
            0, empty, empty, empty, np.zeros((4, 3), dtype=np.int64), None
        )
        np.testing.assert_array_equal(store.queued_units(), np.zeros(3, np.int64))
        np.testing.assert_array_equal(store.job_counts(), np.zeros(3, np.int64))


class TestEndToEndPlumbing:
    def test_simulate_cell_runs_sized_fast(self):
        from repro.experiments.executor import simulate_cell
        from repro.experiments.workload import WorkloadSpec
        from repro.workloads.scenarios import SystemSpec

        system = SystemSpec(6, 2)
        workload = WorkloadSpec.sized(GeometricSize(2.0))
        results = [
            simulate_cell(
                "jsq", system, 0.8, workload, seed=3, rounds=300, backend=backend
            )
            for backend in ("reference", "fast")
        ]
        assert_identical(*results)

    def test_simulate_cell_unknown_sized_backend_uses_registry_error(self):
        from repro.experiments.executor import simulate_cell
        from repro.experiments.workload import WorkloadSpec
        from repro.workloads.scenarios import SystemSpec

        with pytest.raises(ValueError, match="unknown sized engine backend"):
            simulate_cell(
                "jsq",
                SystemSpec(4, 1),
                0.5,
                WorkloadSpec.sized(DeterministicSize(2)),
                seed=0,
                rounds=10,
                backend="warp-drive",
            )

    def test_experiment_grid_identical_records_across_backends(self):
        from repro.experiments import Experiment, WorkloadSpec
        from repro.workloads.scenarios import SystemSpec

        def grid(backend):
            return Experiment(
                policies=["jsq", "scd"],
                systems=SystemSpec(6, 2),
                loads=[0.7],
                rounds=250,
                workloads=(WorkloadSpec.sized(GeometricSize(2.0)),),
                backend=backend,
            ).run(keep_results=False)

        reference, fast = grid("reference"), grid("fast")
        assert reference.records == fast.records
        assert {"jobs", "arrived"} <= set(fast.records[0].metrics)

    def test_sized_fast_experiment_json_round_trip(self, tmp_path):
        from repro.analysis.persistence import load_experiment, save_experiment
        from repro.experiments import Experiment, WorkloadSpec
        from repro.workloads.scenarios import SystemSpec

        result = Experiment(
            policies="jsq",
            systems=SystemSpec(5, 2),
            loads=0.6,
            rounds=120,
            workloads=(WorkloadSpec.sized(GeometricSize(2.0)),),
            backend="fast",
        ).run(keep_results=False)
        path = save_experiment(result, tmp_path / "sized.json")
        loaded = load_experiment(path)
        assert loaded.experiment.backend == "fast"
        assert loaded.records == result.records
