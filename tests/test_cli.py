"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestPolicies:
    def test_lists_all(self, capsys):
        code, out = run_cli(capsys, "policies")
        assert code == 0
        names = out.split()
        assert "scd" in names and "jsq" in names and "hlsq" in names


class TestBackends:
    def test_lists_both_registries(self, capsys):
        code, out = run_cli(capsys, "backends")
        assert code == 0
        assert "engine backends (unsized jobs):" in out
        assert "sized engine backends (unit-denominated queues):" in out
        # Both registries carry reference and fast.
        assert out.count("reference") == 2
        assert out.count("fast") >= 2


class TestExperiment:
    def test_grid_table_and_best(self, capsys):
        code, out = run_cli(
            capsys,
            "experiment", "--policies", "scd", "random", "--systems", "12x3",
            "--loads", "0.8", "--replications", "2", "--rounds", "150",
        )
        assert code == 0
        assert "Running 4 cells" in out
        assert "best on n12_m3_u1_10 at rho=0.8: scd" in out

    def test_workers_and_save(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        code, out = run_cli(
            capsys,
            "experiment", "--policies", "scd", "--systems", "10x2",
            "--loads", "0.7", "--rounds", "100", "--workers", "2",
            "--save", str(path),
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "experiment_result"
        assert len(payload["records"]) == 1

    def test_skewed_workload(self, capsys):
        code, out = run_cli(
            capsys,
            "experiment", "--policies", "scd", "--systems", "12x3",
            "--loads", "0.8", "--rounds", "100", "--workload", "skew:3",
        )
        assert code == 0
        assert "workload: skew3" in out

    def test_sized_workload_on_fast_backend(self, capsys):
        code, out = run_cli(
            capsys,
            "experiment", "--policies", "jsq", "--systems", "10x2",
            "--loads", "0.7", "--rounds", "120", "--workload", "sized:geom:3",
            "--backend", "fast",
        )
        assert code == 0
        assert "workload: sized-geom3" in out
        assert "backend: fast" in out

    def test_sized_workload_tokens(self, capsys):
        for token, name in [
            ("sized", "sized-geom2"),
            ("sized:det:4", "sized-det4"),
            ("sized:bimodal:1:10:0.1", "sized-bimodal1-10-0.1"),
        ]:
            code, out = run_cli(
                capsys,
                "experiment", "--policies", "jsq", "--systems", "8x2",
                "--loads", "0.6", "--rounds", "60", "--workload", token,
            )
            assert code == 0
            assert f"workload: {name}" in out

    def test_bad_sized_workload_token(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "experiment", "--systems", "10x2",
                "--workload", "sized:zipf:2",
            ])

    def test_bad_system_token(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "--systems", "hundred"])

    def test_bad_workload_token(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "--systems", "10x2", "--workload", "chaotic"])

    def test_metrics_table(self, capsys):
        code, out = run_cli(
            capsys,
            "experiment", "--policies", "scd", "jsq", "--systems", "10x2",
            "--loads", "0.8", "--rounds", "150", "--backend", "fast",
            "--metrics", "herding", "server_stats",
        )
        assert code == 0
        assert "Probe metrics (replication-averaged)" in out
        assert "herding.max_spike" in out
        assert "server_stats.utilization_mean" in out

    def test_metrics_with_kwargs_and_save(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        code, out = run_cli(
            capsys,
            "experiment", "--policies", "jsq", "--systems", "10x2",
            "--loads", "0.8", "--rounds", "150",
            "--metrics", "windowed_mean:window=50", "--save", str(path),
        )
        assert code == 0
        assert "windowed_mean[window=50].drift" in out
        payload = json.loads(path.read_text())
        assert payload["experiment"]["metrics"] == [
            {"name": "windowed_mean", "kwargs": {"window": 50}}
        ]

    def test_metrics_on_sized_workload(self, capsys):
        code, out = run_cli(
            capsys,
            "experiment", "--policies", "jsq", "--systems", "10x2",
            "--loads", "0.8", "--rounds", "150", "--backend", "fast",
            "--workload", "sized:geom:3", "--metrics", "herding",
        )
        assert code == 0
        assert "herding.max_spike" in out

    def test_bad_metric_name(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "experiment", "--systems", "10x2", "--metrics", "frobnicator",
            ])

    def test_bad_metric_params(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "experiment", "--systems", "10x2",
                "--metrics", "windowed_mean:50",
            ])

    def test_duplicate_metric_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit, match="duplicate probe"):
            main([
                "simulate", "--servers", "4", "--dispatchers", "2",
                "--rounds", "20", "--metrics", "herding", "herding",
            ])

    def test_default_collector_in_metrics_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit, match="default collector"):
            main([
                "simulate", "--servers", "4", "--dispatchers", "2",
                "--rounds", "20", "--metrics", "responses",
            ])


class TestProbes:
    def test_lists_probes_with_default_markers(self, capsys):
        code, out = run_cli(capsys, "probes")
        assert code == 0
        for name in (
            "responses", "queue_series", "server_stats",
            "dispatcher_stats", "windowed_mean", "herding",
        ):
            assert name in out
        assert "* responses" in out  # default collectors are marked
        assert "* queue_series" in out


class TestSimulate:
    def test_basic_run(self, capsys):
        code, out = run_cli(
            capsys,
            "simulate", "--policy", "scd", "--servers", "15",
            "--dispatchers", "3", "--rho", "0.8", "--rounds", "200",
        )
        assert code == 0
        assert "mean" in out
        assert "arrived=" in out

    def test_metrics_summary_printed(self, capsys):
        code, out = run_cli(
            capsys,
            "simulate", "--policy", "jsq", "--servers", "10",
            "--dispatchers", "2", "--rounds", "150",
            "--metrics", "herding",
        )
        assert code == 0
        assert "probe herding" in out
        assert "max_spike" in out

    def test_save_json(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        code, out = run_cli(
            capsys,
            "simulate", "--policy", "jsq", "--servers", "10",
            "--dispatchers", "2", "--rho", "0.7", "--rounds", "100",
            "--save", str(path),
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["policy_name"] == "jsq"


class TestSweep:
    def test_table_and_best(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep", "--policies", "scd", "random", "--loads", "0.8",
            "--servers", "12", "--dispatchers", "2", "--rounds", "200",
        )
        assert code == 0
        assert "best at rho=0.8: scd" in out


class TestTails:
    def test_quantile_table(self, capsys):
        code, out = run_cli(
            capsys,
            "tails", "--policies", "scd", "sed", "--rho", "0.9",
            "--servers", "12", "--dispatchers", "2", "--rounds", "300",
        )
        assert code == 0
        assert "p99.9" in out


class TestRuntime:
    def test_landmarks(self, capsys):
        code, out = run_cli(
            capsys,
            "runtime", "--servers", "30", "--snapshots", "10",
            "--sim-rounds", "15",
        )
        assert code == 0
        assert "scd-alg4" in out
        assert "p50_us" in out


class TestStability:
    def test_verdict_and_bound(self, capsys):
        code, out = run_cli(
            capsys,
            "stability", "--policy", "scd", "--rho", "0.8",
            "--servers", "10", "--dispatchers", "2", "--rounds", "400",
        )
        assert code == 0
        assert "STABLE" in out
        assert "Appendix D" in out
