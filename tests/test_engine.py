"""Integration tests for the round-based simulation engine."""

import numpy as np
import pytest

from repro.policies.base import make_policy
from repro.sim.arrivals import DeterministicArrivals, PoissonArrivals
from repro.sim.engine import Simulation, SimulationConfig, simulate
from repro.sim.service import DeterministicService, GeometricService


def small_sim(policy="scd", rounds=300, seed=0, n=8, m=3, rho=0.8, **cfg_kwargs):
    rng = np.random.default_rng(123)
    rates = rng.uniform(1.0, 8.0, size=n)
    lambdas = np.full(m, rho * rates.sum() / m)
    return Simulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(lambdas),
        service=GeometricService(rates),
        config=SimulationConfig(rounds=rounds, seed=seed, **cfg_kwargs),
    )


class TestConfigValidation:
    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(rounds=0)

    def test_rejects_warmup_at_rounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(rounds=10, warmup=10)

    def test_rejects_mismatched_service(self):
        with pytest.raises(ValueError):
            Simulation(
                rates=np.ones(3),
                policy=make_policy("jsq"),
                arrivals=PoissonArrivals(np.ones(2)),
                service=GeometricService(np.ones(4)),
            )


class TestConservation:
    @pytest.mark.parametrize(
        "policy", ["scd", "twf", "jsq", "sed", "hjsq(2)", "jiq", "hlsq", "wr"]
    )
    def test_jobs_conserved(self, policy):
        result = small_sim(policy).run()
        assert result.total_arrived == result.total_departed + result.final_queued
        assert result.final_queued == int(result.final_queues.sum())
        assert result.histogram.total == result.total_departed

    def test_no_arrivals_no_departures(self):
        result = Simulation(
            rates=np.ones(2),
            policy=make_policy("jsq"),
            arrivals=DeterministicArrivals(np.zeros(2)),
            service=GeometricService(np.ones(2)),
            config=SimulationConfig(rounds=50),
        ).run()
        assert result.total_arrived == 0
        assert result.total_departed == 0
        assert result.histogram.total == 0


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = small_sim(seed=7).run()
        b = small_sim(seed=7).run()
        assert a.total_arrived == b.total_arrived
        assert a.mean_response_time == b.mean_response_time
        np.testing.assert_array_equal(a.final_queues, b.final_queues)
        np.testing.assert_array_equal(a.histogram.counts, b.histogram.counts)

    def test_different_seed_different_workload(self):
        a = small_sim(seed=1).run()
        b = small_sim(seed=2).run()
        assert a.total_arrived != b.total_arrived

    def test_common_random_numbers_across_policies(self):
        """Different policies, same seed => identical workload realization."""
        arrived = {
            policy: small_sim(policy, seed=5).run().total_arrived
            for policy in ["scd", "jsq", "wr", "jiq"]
        }
        assert len(set(arrived.values())) == 1


class TestWarmup:
    def test_warmup_discards_early_completions(self):
        full = small_sim(seed=3, rounds=400).run()
        warmed = small_sim(seed=3, rounds=400, warmup=200).run()
        assert warmed.histogram.total < full.histogram.total
        # Accounting still covers all jobs.
        assert warmed.total_arrived == warmed.total_departed + warmed.final_queued


class TestDeterministicMicroScenario:
    """A fully deterministic 2-server run with hand-computable dynamics."""

    def test_exact_dynamics(self):
        # One dispatcher gets exactly 2 jobs per round; server rates are
        # [1, 1] with deterministic unit capacity; JSQ spreads 1+1 each
        # round, so each server serves its job the same round: all
        # response times are exactly 1 and queues stay empty.
        result = Simulation(
            rates=np.ones(2),
            policy=make_policy("jsq"),
            arrivals=DeterministicArrivals(np.array([2.0])),
            service=DeterministicService(np.ones(2)),
            config=SimulationConfig(rounds=100),
        ).run()
        assert result.total_arrived == 200
        assert result.total_departed == 200
        assert result.final_queued == 0
        assert result.mean_response_time == 1.0

    def test_overload_queues_grow(self):
        # 3 jobs/round into 2 unit-rate servers: 1 job/round accumulates.
        result = Simulation(
            rates=np.ones(2),
            policy=make_policy("jsq"),
            arrivals=DeterministicArrivals(np.array([3.0])),
            service=DeterministicService(np.ones(2)),
            config=SimulationConfig(rounds=100),
        ).run()
        assert result.final_queued == 100
        assert result.queue_series.growth_slope() == pytest.approx(1.0, rel=0.05)


class TestResultSummary:
    def test_summary_keys(self):
        result = small_sim(rounds=200).run()
        summary = result.summary()
        assert set(summary) == {"mean", "p50", "p95", "p99", "p999", "max"}
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

    def test_queue_series_disabled(self):
        result = small_sim(rounds=50, track_queue_series=False).run()
        assert result.queue_series is None

    def test_simulate_helper(self):
        rng = np.random.default_rng(1)
        rates = rng.uniform(1, 4, size=4)
        result = simulate(
            rates=rates,
            policy=make_policy("sed"),
            arrivals=PoissonArrivals(np.full(2, rates.sum() * 0.4)),
            service=GeometricService(rates),
            config=SimulationConfig(rounds=100),
        )
        assert result.policy_name == "sed"
        assert result.total_arrived > 0


class TestPerServerAccounting:
    def test_received_and_departed_sum_to_totals(self):
        result = small_sim(rounds=300).run()
        assert result.server_received.sum() == result.total_arrived
        assert result.server_departed.sum() == result.total_departed
        np.testing.assert_array_equal(
            result.server_received - result.server_departed, result.final_queues
        )

    def test_utilization_bounds(self):
        sim = small_sim(rounds=400, rho=0.9)
        result = sim.run()
        util = result.utilization(sim.rates)
        assert np.all(util >= 0)
        # A server cannot do more work than it got: utilization is also
        # bounded by received/(mu*rounds), and with geometric capacity the
        # realized value can exceed 1 only slightly by chance; allow slack.
        assert np.all(util <= 1.5)

    def test_scd_utilizes_fast_servers_better_than_twf(self):
        """The paper's under-utilization story: TWF balances job counts,
        starving fast servers relative to their capacity."""
        rng = np.random.default_rng(2)
        rates = np.concatenate([[20.0, 20.0], np.ones(10)])
        lambdas = np.full(4, 0.9 * rates.sum() / 4)

        def util_of(policy):
            sim = Simulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(lambdas),
                service=GeometricService(rates),
                config=SimulationConfig(rounds=1500, seed=13),
            )
            result = sim.run()
            return result.utilization(rates)[:2].mean()  # the fast pair

        assert util_of("scd") > util_of("twf")

    def test_utilization_requires_accounting(self):
        import dataclasses
        result = small_sim(rounds=50).run()
        bare = dataclasses.replace(result, server_departed=None)
        with pytest.raises(ValueError):
            bare.utilization(np.ones(8))
