"""Shared hypothesis strategies and statistical assertions for the suite.

A plain helper module (not a conftest) so test files can ``from _helpers
import ...`` without depending on pytest's conftest import machinery --
importing from ``conftest`` breaks when another rootdir directory (e.g.
``benchmarks/``) registers its own ``conftest`` module first.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import strategies as st

__all__ = [
    "server_instances",
    "dispatch_instances",
    "ensemble_tolerance",
    "assert_ensemble_close",
]


def ensemble_tolerance(n: int, base: float = 1.0, floor: float = 0.01) -> float:
    """Relative tolerance for an ``n``-sample ensemble vs a prediction.

    Sampling error of an ensemble mean shrinks like ``1/sqrt(n)``, so
    the tolerance is ``floor + base / sqrt(n)``: bigger ensembles (or
    bigger simulated systems) must match their analytical prediction
    *more* tightly, while ``floor`` absorbs model error that does not
    vanish with ``n`` (e.g. the O(1/n) finite-system gap to a
    mean-field limit, or histogram discretization).
    """
    if n < 1:
        raise ValueError("ensemble size must be >= 1")
    return floor + base / math.sqrt(n)


def assert_ensemble_close(
    observed: float,
    predicted: float,
    *,
    n: int,
    base: float = 1.0,
    floor: float = 0.01,
    label: str = "ensemble mean",
) -> None:
    """Assert an empirical ensemble statistic matches a prediction.

    The shared check for every "simulation agrees with theory" test:
    second-moment formulas (``test_theory``), fluid-limit parity
    (``test_meanfield``).  Relative error is measured against the
    prediction; tolerance comes from :func:`ensemble_tolerance`.
    """
    scale = max(abs(float(predicted)), 1e-12)
    error = abs(float(observed) - float(predicted)) / scale
    tolerance = ensemble_tolerance(n, base=base, floor=floor)
    assert error <= tolerance, (
        f"{label}: observed {observed!r} vs predicted {predicted!r} -> "
        f"relative error {error:.4f} > tolerance {tolerance:.4f} (n={n})"
    )


@st.composite
def server_instances(draw, max_servers: int = 24, max_queue: int = 60):
    """A random (queues, rates) pair with well-conditioned rates."""
    n = draw(st.integers(min_value=1, max_value=max_servers))
    queues = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=max_queue),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    rates = np.array(
        draw(
            st.lists(
                st.floats(
                    min_value=0.25,
                    max_value=64.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    return queues, rates


@st.composite
def dispatch_instances(draw, max_servers: int = 24, max_arrivals: int = 200):
    """A random (queues, rates, arrivals) dispatching instance."""
    queues, rates = draw(server_instances(max_servers=max_servers))
    arrivals = draw(st.integers(min_value=1, max_value=max_arrivals))
    return queues, rates, arrivals
