"""Shared hypothesis strategies for the test suite.

A plain helper module (not a conftest) so test files can ``from _helpers
import ...`` without depending on pytest's conftest import machinery --
importing from ``conftest`` breaks when another rootdir directory (e.g.
``benchmarks/``) registers its own ``conftest`` module first.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

__all__ = ["server_instances", "dispatch_instances"]


@st.composite
def server_instances(draw, max_servers: int = 24, max_queue: int = 60):
    """A random (queues, rates) pair with well-conditioned rates."""
    n = draw(st.integers(min_value=1, max_value=max_servers))
    queues = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=max_queue),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    rates = np.array(
        draw(
            st.lists(
                st.floats(
                    min_value=0.25,
                    max_value=64.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    return queues, rates


@st.composite
def dispatch_instances(draw, max_servers: int = 24, max_arrivals: int = 200):
    """A random (queues, rates, arrivals) dispatching instance."""
    queues, rates = draw(server_instances(max_servers=max_servers))
    arrivals = draw(st.integers(min_value=1, max_value=max_arrivals))
    return queues, rates, arrivals
