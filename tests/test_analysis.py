"""Tests for the analysis layer: runner, CCDF helpers, tables, run-time."""

import numpy as np
import pytest

from repro.analysis.ccdf import ccdf_series, tail_improvement_factor, tail_quantiles
from repro.analysis.runner import (
    ExperimentConfig,
    mean_response_sweep,
    run_simulation,
    tail_experiment,
)
from repro.analysis.runtime import (
    RUNTIME_TECHNIQUES,
    collect_snapshots,
    measure_decision_times,
    runtime_cdf_summary,
)
from repro.analysis.tables import format_series_table, format_table
from repro.sim.metrics import ResponseTimeHistogram
from repro.workloads.scenarios import SystemSpec

SMALL = SystemSpec(num_servers=12, num_dispatchers=3, profile="u1_10")
QUICK = ExperimentConfig(rounds=250, base_seed=0)


class TestRunner:
    def test_run_simulation_smoke(self):
        result = run_simulation("scd", SMALL, rho=0.8, config=QUICK)
        assert result.policy_name == "scd"
        assert result.total_arrived > 0
        assert result.mean_response_time >= 1.0

    def test_common_random_numbers(self):
        a = run_simulation("scd", SMALL, rho=0.8, config=QUICK)
        b = run_simulation("jsq", SMALL, rho=0.8, config=QUICK)
        assert a.total_arrived == b.total_arrived

    def test_policy_kwargs_forwarded(self):
        result = run_simulation("jsq(d)", SMALL, rho=0.5, config=QUICK, d=3)
        assert result.policy_name == "jsq(3)"

    def test_sweep_structure(self):
        sweep = mean_response_sweep(
            ["scd", "wr"], SMALL, loads=(0.5, 0.8), config=QUICK
        )
        assert sweep.policies == ("scd", "wr")
        assert sweep.loads == (0.5, 0.8)
        assert len(sweep.row("scd")) == 2
        assert all(v >= 1.0 for v in sweep.row("wr"))

    def test_sweep_best_policy(self):
        sweep = mean_response_sweep(
            ["scd", "random"], SMALL, loads=(0.9,), config=QUICK
        )
        assert sweep.best_policy_at(0.9) == "scd"

    def test_tail_experiment(self):
        results = tail_experiment(["scd", "wr"], SMALL, rho=0.9, config=QUICK)
        assert set(results) == {"scd", "wr"}
        for result in results.values():
            assert result.histogram.total > 0


class TestCCDFHelpers:
    def make_hist(self):
        hist = ResponseTimeHistogram()
        hist.record(1, count=900)
        hist.record(5, count=90)
        hist.record(20, count=9)
        hist.record(100, count=1)
        return hist

    def test_ccdf_series_shape(self):
        taus, values = ccdf_series(self.make_hist(), num_points=20)
        assert taus.shape == values.shape
        assert values[0] == 1.0
        assert values[-1] == 0.0
        assert np.all(np.diff(values) <= 1e-12)  # non-increasing

    def test_ccdf_series_max_tau(self):
        taus, _ = ccdf_series(self.make_hist(), max_tau=10, num_points=5)
        assert taus.max() <= 10

    def test_tail_quantiles(self):
        q = tail_quantiles(self.make_hist(), levels=(1e-1, 1e-2, 1e-3))
        assert q[1e-1] == 1
        assert q[1e-2] == 5
        assert q[1e-3] == 20

    def test_tail_quantiles_beyond_resolution(self):
        hist = ResponseTimeHistogram()
        hist.record(3, count=10)
        q = tail_quantiles(hist, levels=(1e-6,))
        assert q[1e-6] == 3  # falls back to the max observed

    def test_improvement_factor(self):
        good = ResponseTimeHistogram()
        good.record(2, count=10_000)
        good.record(10, count=2)  # P(T > 2) ~ 2e-4 > 1e-4
        bad = ResponseTimeHistogram()
        bad.record(2, count=10_000)
        bad.record(40, count=2)
        factor, name = tail_improvement_factor(good, {"bad": bad}, level=1e-4)
        assert name == "bad"
        assert factor == pytest.approx(4.0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["policy", "mean"], [["scd", 2.5], ["jsq", 4.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "policy" in lines[1]
        assert "2.500" in text
        assert "4.250" in text

    def test_format_series_table(self):
        text = format_series_table(
            "rho",
            [0.5, 0.9],
            {"scd": [1.0, 2.0], "jsq": [1.5, 4.0]},
        )
        assert "rho" in text
        assert "scd" in text and "jsq" in text
        assert "4.000" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestRuntimeHarness:
    def test_collect_snapshots(self):
        snaps = collect_snapshots(SMALL, rho=0.9, rounds=30, max_snapshots=40)
        assert 0 < len(snaps) <= 40
        for snap in snaps[:5]:
            assert snap.queues.shape == (SMALL.num_servers,)
            assert snap.batch_size >= 1

    def test_measure_all_techniques(self):
        snaps = collect_snapshots(SMALL, rho=0.9, rounds=20, max_snapshots=10)
        rates = SMALL.rates()
        for technique in RUNTIME_TECHNIQUES:
            times = measure_decision_times(
                technique, snaps, rates, SMALL.num_dispatchers
            )
            assert times.shape == (len(snaps),)
            assert np.all(times > 0)

    def test_summary_keys(self):
        summary = runtime_cdf_summary(np.array([1e-6, 2e-6, 3e-6]))
        assert summary["p50_us"] == pytest.approx(2.0)
        assert summary["mean_us"] == pytest.approx(2.0)
