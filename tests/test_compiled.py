"""Tests for the compiled kernel module itself (ISSUE 7 acceptance).

The backend-level bit-identity lives in the three parity suites
(``test_backends``, ``test_sized_backends``, ``test_sharding``); this
file covers the pieces those run through indirectly:

* the jitted two-pointer resolvers against the numpy stores directly,
  over randomized block streams (records, order, carry, and state);
* import-time fallback: with numba absent the ``compiled`` name still
  resolves to a working, correctly-labeled backend that runs the numpy
  paths and reports ``jit_active = False``;
* checkpoint round-trips between compiled and numpy stores (pickled
  state is interchangeable, so kill/resume may switch kernels);
* the store-level error contract (overdrain, sized validation) is
  preserved verbatim on the compiled path;
* ``make_shard_store`` / ``compiled_round_kernel_for`` selection rules.

Everything runs with ``force=True`` where the compiled control flow is
under test, so numba-less hosts execute the exact plain-Python twins of
the jitted functions.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.base import make_policy
from repro.sim import compiled
from repro.sim.backends import available_backends, make_backend
from repro.sim.batchstore import BatchQueueStore, SizedBatchQueueStore
from repro.sim.compiled import (
    CompiledBackend,
    CompiledBatchQueueStore,
    CompiledSizedBatchQueueStore,
    SizedCompiledBackend,
    compiled_round_kernel_for,
    make_shard_store,
)
from repro.sim.metrics import ResponseTimeHistogram
from repro.sim.sizedbackends import available_sized_backends, make_sized_backend


class Recorder:
    """Collects response_sink callbacks for exact comparison."""

    def __init__(self):
        self.calls = []

    def __call__(self, rounds, times, counts, servers):
        self.calls.append(
            (rounds.copy(), times.copy(), counts.copy(), servers.copy())
        )


def random_blocks(rng, n, num_blocks, block_len, load=2.0):
    """A plausible admission/completion stream: completions never exceed
    what is present (tracked per server), arrivals are bursty."""
    queued = np.zeros(n, dtype=np.int64)
    blocks = []
    for _ in range(num_blocks):
        received = rng.poisson(load, size=(block_len, n)).astype(np.int64)
        done = np.zeros((block_len, n), dtype=np.int64)
        for i in range(block_len):
            queued += received[i]
            drain = np.minimum(queued, rng.integers(0, 4, size=n))
            done[i] = drain
            queued -= drain
        blocks.append((received, done))
    return blocks


def assert_store_states_equal(a, b):
    np.testing.assert_array_equal(a._rounds, b._rounds)
    np.testing.assert_array_equal(a._counts, b._counts)
    np.testing.assert_array_equal(a._lengths, b._lengths)
    np.testing.assert_array_equal(a._jobs, b._jobs)


class TestUnsizedResolverParity:
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 6),
           num_blocks=st.integers(1, 4), block_len=st.integers(1, 40),
           warmup=st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_store(self, seed, n, num_blocks, block_len, warmup):
        """Identical records (values AND order), histogram, and carry."""
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, n, num_blocks, block_len)
        numpy_store, numpy_hist, numpy_rec = (
            BatchQueueStore(n), ResponseTimeHistogram(), Recorder())
        comp_store, comp_hist, comp_rec = (
            CompiledBatchQueueStore(n, force=True),
            ResponseTimeHistogram(), Recorder())
        start = 0
        for received, done in blocks:
            numpy_store.process_block(
                start, received, done, numpy_hist, warmup,
                response_sink=numpy_rec)
            comp_store.process_block(
                start, received, done, comp_hist, warmup,
                response_sink=comp_rec)
            start += block_len
        np.testing.assert_array_equal(numpy_hist.counts, comp_hist.counts)
        assert len(numpy_rec.calls) == len(comp_rec.calls)
        for call_a, call_b in zip(numpy_rec.calls, comp_rec.calls):
            for array_a, array_b in zip(call_a, call_b):
                np.testing.assert_array_equal(array_a, array_b)
        assert_store_states_equal(numpy_store, comp_store)

    def test_overdrain_error_preserved(self):
        store = CompiledBatchQueueStore(2, force=True)
        received = np.zeros((1, 2), dtype=np.int64)
        done = np.ones((1, 2), dtype=np.int64)
        with pytest.raises(RuntimeError, match="drained past its contents"):
            store.process_block(0, received, done, ResponseTimeHistogram())

    def test_empty_block_leaves_state_untouched(self):
        store = CompiledBatchQueueStore(2, force=True)
        zeros = np.zeros((3, 2), dtype=np.int64)
        before = pickle.dumps(store)
        store.process_block(0, zeros, zeros, ResponseTimeHistogram())
        assert pickle.dumps(store) == before


class TestSizedResolverParity:
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 5),
           num_blocks=st.integers(1, 3), block_len=st.integers(1, 30),
           warmup=st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_store(self, seed, n, num_blocks, block_len, warmup):
        rng = np.random.default_rng(seed)
        numpy_store, numpy_hist, numpy_rec = (
            SizedBatchQueueStore(n), ResponseTimeHistogram(), Recorder())
        comp_store, comp_hist, comp_rec = (
            CompiledSizedBatchQueueStore(n, force=True),
            ResponseTimeHistogram(), Recorder())
        unit_queues = np.zeros(n, dtype=np.int64)
        start = 0
        for _ in range(num_blocks):
            jobs_per_round = [
                np.sort(rng.integers(0, n, size=rng.integers(0, 5)))
                for _ in range(block_len)
            ]
            servers, rounds_arr, sizes = [], [], []
            for i, row in enumerate(jobs_per_round):
                for server in row:
                    servers.append(server)
                    rounds_arr.append(start + i)
                    sizes.append(int(rng.integers(1, 7)))
            order = np.lexsort(
                (np.arange(len(servers)), np.asarray(servers, dtype=np.int64))
            ) if servers else np.empty(0, dtype=np.int64)
            job_servers = np.asarray(servers, dtype=np.int64)[order]
            job_rounds = np.asarray(rounds_arr, dtype=np.int64)[order]
            job_sizes = np.asarray(sizes, dtype=np.int64)[order]
            done = np.zeros((block_len, n), dtype=np.int64)
            # conservative completion stream: never drain more than present
            arrived_by_round = np.zeros((block_len, n), dtype=np.int64)
            for server, round_index, size in zip(
                job_servers, job_rounds, job_sizes
            ):
                arrived_by_round[round_index - start, server] += size
            for i in range(block_len):
                unit_queues += arrived_by_round[i]
                drain = np.minimum(unit_queues, rng.integers(0, 6, size=n))
                done[i] = drain
                unit_queues -= drain
            numpy_store.process_block(
                start, job_servers, job_rounds, job_sizes, done,
                numpy_hist, warmup, response_sink=numpy_rec)
            comp_store.process_block(
                start, job_servers, job_rounds, job_sizes, done,
                comp_hist, warmup, response_sink=comp_rec)
            start += block_len
        np.testing.assert_array_equal(numpy_hist.counts, comp_hist.counts)
        assert len(numpy_rec.calls) == len(comp_rec.calls)
        for call_a, call_b in zip(numpy_rec.calls, comp_rec.calls):
            for array_a, array_b in zip(call_a, call_b):
                np.testing.assert_array_equal(array_a, array_b)
        np.testing.assert_array_equal(numpy_store._rounds, comp_store._rounds)
        np.testing.assert_array_equal(
            numpy_store._remaining, comp_store._remaining)
        np.testing.assert_array_equal(
            numpy_store._lengths, comp_store._lengths)
        np.testing.assert_array_equal(numpy_store._units, comp_store._units)

    def test_validation_errors_preserved(self):
        store = CompiledSizedBatchQueueStore(2, force=True)
        histogram = ResponseTimeHistogram()
        ok = np.asarray([0, 1], dtype=np.int64)
        done = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="parallel 1-D"):
            store.process_block(0, ok, ok[:1], ok, done, histogram)
        with pytest.raises(ValueError, match="sizes must be >= 1"):
            store.process_block(0, ok, ok, np.asarray([0, 1]), done, histogram)
        with pytest.raises(ValueError, match="sorted server-major"):
            store.process_block(
                0, ok[::-1].copy(), ok, np.asarray([1, 1]), done, histogram)
        with pytest.raises(RuntimeError, match="drained past its contents"):
            store.process_block(
                0, ok[:0], ok[:0], ok[:0], np.ones((1, 2), dtype=np.int64),
                histogram)


class TestFallback:
    def test_import_time_fallback_yields_working_backend(self, monkeypatch):
        """With numba (simulated) absent, the registered name still runs
        and labels itself honestly."""
        monkeypatch.setattr(compiled, "_FORCE_DISABLED", True)
        assert not compiled.numba_enabled()
        backend = make_backend("compiled")
        assert isinstance(backend, CompiledBackend)
        assert backend.name == "compiled"
        assert backend.jit_active is False
        assert "fallback" in backend.description
        sized = make_sized_backend("compiled")
        assert isinstance(sized, SizedCompiledBackend)
        assert sized.jit_active is False
        # The store delegates to the numpy resolver...
        store = backend._make_store(3)
        assert isinstance(store, CompiledBatchQueueStore)
        histogram = ResponseTimeHistogram()
        block = np.ones((2, 3), dtype=np.int64)
        store.process_block(0, block, block, histogram)
        assert histogram.total == 6
        # ...and no round kernel is installed.
        assert backend._round_kernel(_FakeSim(make_policy("rr"))) is None

    def test_registered_in_both_registries(self):
        assert "compiled" in available_backends()
        assert "compiled" in available_sized_backends()

    def test_compiled_takes_no_parameters(self):
        with pytest.raises(ValueError, match="takes no ':' parameters"):
            make_backend("compiled:2")


class _FakeSim:
    def __init__(self, policy):
        self.policy = policy


class TestRoundKernelSelection:
    def _bound(self, name, n=4, m=2):
        from repro.policies.base import SystemContext

        policy = make_policy(name)
        policy.bind(SystemContext(
            rates=np.linspace(1.0, 2.0, n),
            num_dispatchers=m,
            rng=np.random.default_rng(0)))
        return policy

    def test_rr_and_wrr_have_kernels(self):
        assert compiled_round_kernel_for(self._bound("rr")) is not None
        assert compiled_round_kernel_for(self._bound("wrr")) is not None

    def test_other_policies_do_not(self):
        for name in ("jsq", "sed", "lsq", "scd"):
            assert compiled_round_kernel_for(self._bound(name)) is None

    def test_subclasses_excluded(self):
        from repro.policies.round_robin import RoundRobinPolicy

        class Tweaked(RoundRobinPolicy):
            pass

        policy = Tweaked()
        assert compiled_round_kernel_for(policy) is None

    def test_backend_installs_kernel_only_when_active(self):
        backend = make_backend("compiled")
        policy = self._bound("rr")
        if compiled.numba_enabled():
            assert backend._round_kernel(_FakeSim(policy)) is not None
        else:
            assert backend._round_kernel(_FakeSim(policy)) is None
        backend.force = True
        assert backend._round_kernel(_FakeSim(policy)) is not None


class TestShardStoreSelection:
    def test_fallback_uses_numpy_stores(self, monkeypatch):
        monkeypatch.setattr(compiled, "_FORCE_DISABLED", True)
        monkeypatch.setattr(compiled, "_FORCE_STORES", False)
        assert type(make_shard_store(3, sized=False)) is BatchQueueStore
        assert type(make_shard_store(3, sized=True)) is SizedBatchQueueStore

    def test_forced_uses_compiled_stores(self, monkeypatch):
        monkeypatch.setattr(compiled, "_FORCE_STORES", True)
        store = make_shard_store(3, sized=False)
        assert isinstance(store, CompiledBatchQueueStore) and store.force
        sized = make_shard_store(3, sized=True)
        assert isinstance(sized, CompiledSizedBatchQueueStore) and sized.force


class TestCheckpointInterchange:
    def test_store_state_round_trips_across_implementations(self):
        """A pickled compiled store restores as-is, and its state arrays
        match the numpy store's after identical traffic -- kill/resume
        may therefore switch between ``fast`` and ``compiled``."""
        rng = np.random.default_rng(7)
        numpy_store = BatchQueueStore(3)
        comp_store = CompiledBatchQueueStore(3, force=True)
        histogram_a, histogram_b = (
            ResponseTimeHistogram(), ResponseTimeHistogram())
        for start, (received, done) in enumerate(
            random_blocks(rng, 3, 4, 32)
        ):
            numpy_store.process_block(start * 32, received, done, histogram_a)
            comp_store.process_block(start * 32, received, done, histogram_b)
        revived = pickle.loads(pickle.dumps(comp_store))
        assert isinstance(revived, CompiledBatchQueueStore)
        assert revived.force  # instance attr survives pickling
        assert_store_states_equal(numpy_store, revived)
        # Cross-adoption: the numpy store's arrays drive the compiled
        # resolver (and vice versa) without translation.
        received = np.ones((8, 3), dtype=np.int64)
        done = np.ones((8, 3), dtype=np.int64)
        numpy_store.process_block(200, received, done, histogram_a)
        revived.process_block(200, received, done, histogram_b)
        np.testing.assert_array_equal(histogram_a.counts, histogram_b.counts)
        assert_store_states_equal(numpy_store, revived)

    def test_backend_checkpoint_resume_bit_identical(self, tmp_path):
        """Kill/resume through the Run lifecycle on the compiled backend."""
        from repro.runs import Run
        from test_runs import build_sim, fingerprint

        directory = tmp_path / "run"
        run = Run.create(build_sim("compiled", sized=False), directory)
        run.execute(max_legs=1)  # stop after the first checkpoint
        resumed = Run.open(directory).execute()
        plain = build_sim("compiled", sized=False).run()
        assert fingerprint(resumed) == fingerprint(plain)
