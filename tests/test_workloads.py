"""Tests for heterogeneity profiles and the paper's scenario registry."""

import numpy as np
import pytest

from repro.workloads.heterogeneity import (
    bimodal_rates,
    constant_rates,
    make_rates,
    uniform_rates,
)
from repro.workloads.scenarios import (
    PAPER_LOADS,
    PAPER_SYSTEMS,
    TAIL_LOADS,
    SystemSpec,
    lambdas_for_load,
    paper_system,
)


class TestRateSamplers:
    def test_uniform_range(self):
        rates = uniform_rates(1000, 1.0, 10.0, rng=0)
        assert rates.min() >= 1.0
        assert rates.max() <= 10.0
        assert rates.mean() == pytest.approx(5.5, rel=0.05)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_rates(0)
        with pytest.raises(ValueError):
            uniform_rates(5, 2.0, 1.0)
        with pytest.raises(ValueError):
            uniform_rates(5, 0.0, 1.0)

    def test_bimodal_counts(self):
        rates = bimodal_rates(100, slow=1.0, fast=50.0, fast_fraction=0.1, rng=0)
        assert (rates == 50.0).sum() == 10
        assert (rates == 1.0).sum() == 90

    def test_bimodal_zero_fraction(self):
        rates = bimodal_rates(10, fast_fraction=0.0)
        assert np.all(rates == 1.0)

    def test_bimodal_at_least_one_fast(self):
        rates = bimodal_rates(100, fast_fraction=0.001, rng=1)
        assert (rates > 1.0).sum() == 1

    def test_constant(self):
        np.testing.assert_array_equal(constant_rates(3, 2.0), [2.0, 2.0, 2.0])

    def test_make_rates_profiles(self):
        for profile in ["u1_10", "u1_100", "bimodal", "homogeneous"]:
            rates = make_rates(profile, 20, rng=0)
            assert rates.shape == (20,)
            assert np.all(rates > 0)

    def test_make_rates_unknown(self):
        with pytest.raises(ValueError, match="unknown profile"):
            make_rates("exotic", 5)


class TestSystemSpec:
    def test_rates_are_deterministic(self):
        spec = SystemSpec(50, 5, "u1_10")
        np.testing.assert_array_equal(spec.rates(), spec.rates())

    def test_different_sizes_different_rates(self):
        a = SystemSpec(50, 5, "u1_10").rates()
        b = SystemSpec(60, 5, "u1_10").rates()
        assert not np.array_equal(a[:50], b[:50]) or a.size != b.size

    def test_name_format(self):
        assert SystemSpec(100, 10, "u1_100").name == "n100_m10_u1_100"

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemSpec(0, 5)
        with pytest.raises(ValueError):
            SystemSpec(5, 0)

    def test_lambdas_give_requested_load(self):
        spec = SystemSpec(30, 4, "u1_10")
        rates = spec.rates()
        for rho in [0.5, 0.9, 0.99]:
            lambdas = spec.lambdas(rho)
            assert lambdas.sum() == pytest.approx(rho * rates.sum())
            assert np.all(lambdas == lambdas[0])  # symmetric dispatchers


class TestLambdasForLoad:
    def test_formula(self):
        lambdas = lambdas_for_load(0.8, np.array([5.0, 5.0]), 4)
        np.testing.assert_allclose(lambdas, 0.8 * 10.0 / 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lambdas_for_load(-0.1, np.ones(2), 1)

    def test_overload_allowed_for_instability_experiments(self):
        lambdas = lambdas_for_load(1.2, np.ones(2), 1)
        assert lambdas[0] == pytest.approx(2.4)


class TestPaperRegistry:
    def test_four_systems_per_profile(self):
        for profile in ("u1_10", "u1_100"):
            systems = PAPER_SYSTEMS[profile]
            assert [(s.num_servers, s.num_dispatchers) for s in systems] == [
                (100, 5),
                (100, 10),
                (200, 10),
                (200, 20),
            ]

    def test_rate_ranges_match_profiles(self):
        for spec in PAPER_SYSTEMS["u1_10"]:
            rates = spec.rates()
            assert rates.min() >= 1.0 and rates.max() <= 10.0
        for spec in PAPER_SYSTEMS["u1_100"]:
            rates = spec.rates()
            assert rates.max() > 10.0  # actually uses the wider range

    def test_load_grids(self):
        assert 0.99 in PAPER_LOADS
        assert TAIL_LOADS == (0.70, 0.90, 0.99)
        assert all(0 < rho < 1 for rho in PAPER_LOADS)

    def test_paper_system_helper(self):
        spec = paper_system(100, 10, "u1_100")
        assert spec.num_servers == 100
        assert spec.profile == "u1_100"


class TestAsymmetricLambdas:
    def test_weights_split_total(self):
        rates = np.array([5.0, 5.0])
        lambdas = lambdas_for_load(0.8, rates, 4, weights=np.array([1, 1, 2, 4]))
        assert lambdas.sum() == pytest.approx(8.0)
        np.testing.assert_allclose(lambdas, [1.0, 1.0, 2.0, 4.0])

    def test_weights_shape_validated(self):
        with pytest.raises(ValueError, match="one entry per dispatcher"):
            lambdas_for_load(0.5, np.ones(2), 3, weights=np.ones(2))

    def test_weights_values_validated(self):
        with pytest.raises(ValueError):
            lambdas_for_load(0.5, np.ones(2), 2, weights=np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            lambdas_for_load(0.5, np.ones(2), 2, weights=np.zeros(2))

    def test_spec_lambdas_accept_weights(self):
        spec = SystemSpec(10, 3, "u1_10")
        lambdas = spec.lambdas(0.9, weights=np.array([1.0, 2.0, 3.0]))
        assert lambdas.sum() == pytest.approx(0.9 * spec.rates().sum())
        assert lambdas[2] == pytest.approx(3 * lambdas[0])
