"""Tests for the LED policy and the round-robin family."""

import numpy as np
import pytest

from repro.analysis.runner import ExperimentConfig, run_simulation
from repro.policies.base import SystemContext, make_policy
from repro.workloads.scenarios import SystemSpec


def bind(policy, rates, m=2, seed=0):
    policy.bind(
        SystemContext(
            rates=np.asarray(rates, dtype=np.float64),
            num_dispatchers=m,
            rng=np.random.default_rng(seed),
        )
    )
    return policy


class TestLED:
    def test_registered_variants(self):
        assert make_policy("led").name == "led"
        assert make_policy("hled").name == "hled"
        assert make_policy("hled").heterogeneity_aware

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            make_policy("led", samples_per_job=-1)

    def test_estimates_drain_by_service_rates(self):
        rates = np.array([3.0, 1.0])
        policy = bind(make_policy("led"), rates=rates, m=1)
        queues = np.array([10, 10])
        policy.begin_round(0, queues)
        policy.dispatch(0, 0 + 1)  # tiny batch; establishes batch size
        policy._local[0] = np.array([10.0, 10.0])
        policy.end_round(0, np.array([0, 0]))
        # Drift applies before sampling: entries fall by mu (then any
        # sampled entry snaps to the true value 0).
        assert np.all(policy._local[0] <= np.array([7.0, 9.0]) + 1e-12)

    def test_estimates_never_negative(self):
        policy = bind(make_policy("led"), rates=np.array([5.0, 5.0]), m=1)
        policy.begin_round(0, np.array([1, 1]))
        policy.dispatch(0, 1)
        for t in range(5):
            policy.end_round(t, np.array([0, 0]))
        assert np.all(policy._local >= 0.0)

    def test_led_tracks_better_than_lsq_between_samples(self):
        """With sparse sampling, LED's drift correction keeps estimates
        closer to the truth than LSQ's frozen entries."""
        rates = np.full(20, 2.0)
        system_queues = np.full(20, 6, dtype=np.int64)
        led = bind(make_policy("led", samples_per_job=0.01), rates, m=1, seed=3)
        lsq = bind(make_policy("lsq", samples_per_job=0.01), rates, m=1, seed=3)
        # Teach both the same initial view, then let queues drain for
        # several rounds with (almost) no refreshes.
        for policy in (led, lsq):
            policy._local[0] = system_queues.astype(float)
        drained = np.zeros(20, dtype=np.int64)
        for t in range(3):
            led.begin_round(t, system_queues)
            lsq.begin_round(t, system_queues)
            led._batch_sizes[0] = 0
            lsq._batch_sizes[0] = 0
            led.end_round(t, drained)
            lsq.end_round(t, drained)
        led_error = np.abs(led._local[0] - drained).mean()
        lsq_error = np.abs(lsq._local[0] - drained).mean()
        assert led_error < lsq_error

    def test_end_to_end_and_competitive(self):
        system = SystemSpec(num_servers=30, num_dispatchers=4, profile="u1_10")
        config = ExperimentConfig(rounds=1200, base_seed=2)
        led = run_simulation("hled", system, rho=0.9, config=config)
        lsq = run_simulation("hlsq", system, rho=0.9, config=config)
        assert led.total_arrived == led.total_departed + led.final_queued
        # LED's fresher views should not be (much) worse than LSQ's.
        assert led.mean_response_time < 1.5 * lsq.mean_response_time


class TestRoundRobin:
    def test_rr_cycles(self):
        policy = bind(make_policy("rr"), rates=np.ones(4), m=1)
        counts = policy.dispatch(0, 8)
        np.testing.assert_array_equal(counts, [2, 2, 2, 2])

    def test_rr_position_persists_across_rounds(self):
        policy = bind(make_policy("rr"), rates=np.ones(4), m=1)
        policy.dispatch(0, 2)  # servers 0, 1
        counts = policy.dispatch(0, 2)  # servers 2, 3
        np.testing.assert_array_equal(counts, [0, 0, 1, 1])

    def test_rr_dispatchers_staggered(self):
        policy = bind(make_policy("rr"), rates=np.ones(4), m=2)
        first = policy.dispatch(0, 1)
        second = policy.dispatch(1, 1)
        assert np.argmax(first) != np.argmax(second)

    def test_wrr_long_run_shares_match_rates(self):
        rates = np.array([6.0, 3.0, 1.0])
        policy = bind(make_policy("wrr"), rates=rates, m=1)
        counts = policy.dispatch(0, 1000)
        np.testing.assert_allclose(counts / 1000, rates / rates.sum(), atol=0.01)

    def test_wrr_smooth_interleaving(self):
        # Weights 2:1 -> pattern avoids consecutive same-server runs
        # longer than necessary: in any prefix the share error is <= 1.
        rates = np.array([2.0, 1.0])
        policy = bind(make_policy("wrr"), rates=rates, m=1)
        placements = []
        for _ in range(12):
            counts = policy.dispatch(0, 1)
            placements.append(int(np.argmax(counts)))
        for k in range(1, 13):
            share0 = placements[:k].count(0)
            assert abs(share0 - 2 * k / 3) <= 1.0

    def test_wrr_stable_where_rr_is_not(self):
        rates = np.array([20.0] + [1.0] * 5)
        system_kwargs = {"rounds": 1500, "base_seed": 6}
        from repro.analysis.stability import assess_stability
        from repro.sim.arrivals import PoissonArrivals
        from repro.sim.engine import Simulation, SimulationConfig
        from repro.sim.service import GeometricService

        def run(policy):
            sim = Simulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(np.full(3, 0.95 * rates.sum() / 3)),
                service=GeometricService(rates),
                config=SimulationConfig(rounds=2500, seed=8),
            )
            return assess_stability(sim.run(), float(rates.sum()))

        assert run("wrr").stable
        assert not run("rr").stable  # uniform rotation overloads slow servers
