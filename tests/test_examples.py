"""Smoke tests: every example script runs cleanly in a quick configuration."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"


def run_example(script: str, *args: str) -> str:
    # The subprocess needs src/ on its path even when the parent test run
    # got it from pytest's pythonpath setting rather than the environment.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "--rounds", "300")
    assert "1.375" in out  # Figure 1's IWL
    assert "0.875" in out  # Figure 2's IWL
    assert "Best mean response time" in out


def test_heterogeneous_datacenter():
    out = run_example(
        "heterogeneous_datacenter.py", "--rounds", "400", "--loads", "0.8", "0.95"
    )
    assert "accelerators" in out
    assert "best at rho=0.95" in out


def test_herding_demo():
    out = run_example("herding_demo.py", "--rounds", "400")
    assert "worst pile-up" in out
    assert "scd" in out and "jsq" in out


def test_custom_policy():
    out = run_example("custom_policy.py", "--rounds", "400")
    assert "memsed(3)" in out


@pytest.mark.parametrize("figure", ["3a", "3b", "5"])
def test_paper_figures(figure):
    out = run_example(
        "paper_figures.py",
        "--figure", figure,
        "--rounds", "200",
        "--loads", "0.7", "0.9",
        "--servers", "50",
        "--snapshots", "20",
        "--runtime-rounds", "20",
    )
    assert f"Figure {figure}" in out


def test_bursty_arrivals():
    out = run_example("bursty_arrivals.py", "--rounds", "300")
    assert "bursty" in out
    assert "scd" in out


def test_experiment_grid():
    out = run_example("experiment_grid.py", "--rounds", "150", "--workers", "2")
    assert "records identical: True" in out
    assert "round-trip identical: True" in out


def test_sized_jobs():
    out = run_example("sized_jobs.py", "--rounds", "500")
    assert "size-aware" in out
    assert "worth" in out


def test_probes_tour():
    out = run_example("probes_tour.py", "--rounds", "400")
    assert "utilization / herding" in out
    assert "scd" in out and "jsq" in out
    assert "worst spike" in out


def test_nonmonotone_stability():
    out = run_example(
        "nonmonotone_stability.py",
        "--choices", "1", "2", "--iters", "4", "--horizon", "250",
    )
    assert "closed-form d=1 anchor" in out
    assert "anchor checks passed" in out
    assert "rho*(d)" in out
    assert "verdict:" in out


def test_flash_crowd():
    out = run_example("flash_crowd.py", "--rounds", "1024")
    assert "scenario flash:spike=" in out
    assert "Queue backlog through the spike" in out
    assert "peak queue" in out and "growth" in out
