"""Tests for the pluggable engine backends and the vectorized kernel.

The contract under test (ISSUE 2 acceptance):

* the backend registry mirrors the policy registry (names, errors);
* the fast backend is *bit-identical* to the reference backend --
  same seeds give the same ``SimulationResult`` including histograms,
  queue series, and per-server accounting -- for deterministic policies
  and for any policy using the base-class ``dispatch_round`` fallback;
* stochastic policies with native batch paths preserve exact job
  accounting and are statistically equivalent;
* the block-resolved :class:`BatchQueueStore` reproduces the reference
  :class:`ServerQueue` drain exactly, batch by batch;
* ``ResponseTimeHistogram.record_many`` equals the equivalent sequence
  of ``record`` calls.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.base import has_native_dispatch_round, make_policy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.backends import (
    FastBackend,
    ReferenceBackend,
    available_backends,
    backend_descriptions,
    make_backend,
)
from repro.sim.batchstore import BatchQueueStore
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.metrics import ResponseTimeHistogram
from repro.sim.server import ServerQueue
from repro.sim.service import GeometricService

#: Policies whose decisions involve no randomness: identical runs on both
#: backends are required bit-for-bit.
DETERMINISTIC_POLICIES = ["jsq", "sed", "rr", "wrr"]
#: Stateful / stochastic policies without a native batch path: they run
#: through the fallback, so they must also be bit-identical.
FALLBACK_POLICIES = ["scd", "twf"]
#: Native batch paths that restructure no RNG consumption (LSQ/LED's
#: vectorized sampled refreshes and JIQ's fused empty-idle fallback draw
#: the identical stream): these must also stay bit-identical across
#: backends.
NATIVE_BIT_IDENTICAL_POLICIES = ["lsq", "hlsq", "led", "jiq"]
#: Stochastic policies with native batch paths: exact accounting plus
#: statistical equivalence only.
NATIVE_STOCHASTIC_POLICIES = ["wr", "random", "jsq(2)", "hjsq(2)"]


def run_once(policy, backend, seed=0, n=8, m=3, rho=0.85, rounds=400, warmup=0):
    rng = np.random.default_rng(123)
    rates = rng.uniform(1.0, 8.0, size=n)
    lambdas = np.full(m, rho * rates.sum() / m)
    return Simulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(lambdas),
        service=GeometricService(rates),
        config=SimulationConfig(
            rounds=rounds, seed=seed, warmup=warmup, backend=backend
        ),
    ).run()


def forced_compiled():
    """A ``compiled`` backend running the compiled control flow even
    without numba (the plain-Python twins of the jitted functions)."""
    backend = make_backend("compiled")
    backend.force = True
    return backend


def assert_identical(a, b):
    """Both SimulationResults describe the exact same run."""
    assert a.total_arrived == b.total_arrived
    assert a.total_departed == b.total_departed
    assert a.final_queued == b.final_queued
    np.testing.assert_array_equal(a.final_queues, b.final_queues)
    np.testing.assert_array_equal(a.histogram.counts, b.histogram.counts)
    assert a.histogram.max_response_time == b.histogram.max_response_time
    np.testing.assert_array_equal(a.server_received, b.server_received)
    np.testing.assert_array_equal(a.server_departed, b.server_departed)
    np.testing.assert_array_equal(a.queue_series.values, b.queue_series.values)


class TestRegistry:
    def test_both_backends_registered(self):
        assert {"reference", "fast"} <= set(available_backends())

    def test_descriptions_cover_all(self):
        descriptions = backend_descriptions()
        assert set(descriptions) == set(available_backends())
        assert all(descriptions.values())

    def test_make_backend_by_name_and_passthrough(self):
        assert isinstance(make_backend("reference"), ReferenceBackend)
        assert isinstance(make_backend("FAST"), FastBackend)
        instance = FastBackend()
        assert make_backend(instance) is instance

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_backend("warp-drive")

    def test_config_rejects_empty_backend(self):
        with pytest.raises(ValueError):
            SimulationConfig(backend="")

    def test_unknown_backend_fails_at_run(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            run_once("jsq", backend="warp-drive", rounds=10)

    def test_legacy_wrappers_honor_backend(self):
        """Every ExperimentConfig consumer forwards config.backend."""
        from repro.analysis.replication import replicated_runs
        from repro.analysis.runner import (
            ExperimentConfig,
            mean_response_sweep,
            run_simulation,
            tail_experiment,
        )
        from repro.workloads.scenarios import SystemSpec

        system = SystemSpec(6, 2)
        config = ExperimentConfig(rounds=150, backend="fast")
        reference = ExperimentConfig(rounds=150, backend="reference")
        fast = run_simulation("jsq", system, 0.8, config)
        assert fast.config.backend == "fast"
        assert (
            fast.mean_response_time
            == run_simulation("jsq", system, 0.8, reference).mean_response_time
        )
        sweep = mean_response_sweep(["jsq"], system, (0.8,), config)
        assert sweep.row("jsq") == mean_response_sweep(
            ["jsq"], system, (0.8,), reference
        ).row("jsq")
        tails = tail_experiment(["jsq"], system, 0.8, config)
        assert tails["jsq"].config.backend == "fast"
        reps = replicated_runs("jsq", system, 0.8, config, replications=2)
        assert reps.replication_means == replicated_runs(
            "jsq", system, 0.8, reference, replications=2
        ).replication_means
        # Forwarding is observable via validation: a bogus backend in the
        # config must reach the Experiment and be rejected there.
        for wrapper in (
            lambda c: run_simulation("jsq", system, 0.8, c),
            lambda c: mean_response_sweep(["jsq"], system, (0.8,), c),
            lambda c: tail_experiment(["jsq"], system, 0.8, c),
            lambda c: replicated_runs("jsq", system, 0.8, c, replications=2),
        ):
            with pytest.raises(ValueError, match="unknown engine backend"):
                wrapper(ExperimentConfig(rounds=150, backend="bogus"))

    def test_experiment_validates_backend_per_registry(self):
        """Sized cells resolve the backend in the sized registry: known
        names (fast included) construct, unknown names fail at
        construction with the sized registry's own error message."""
        from repro.experiments import Experiment, WorkloadSpec
        from repro.sim.sized import GeometricSize
        from repro.workloads.scenarios import SystemSpec

        sized = dict(
            policies=["jsq"],
            systems=SystemSpec(4, 1),
            loads=[0.5],
            rounds=50,
            workloads=(WorkloadSpec.sized(GeometricSize(2.0)),),
        )
        assert Experiment(**sized, backend="fast").backend == "fast"
        with pytest.raises(ValueError, match="unknown sized engine backend"):
            Experiment(**sized, backend="warp-drive")
        with pytest.raises(ValueError, match="unknown engine backend"):
            Experiment(
                policies=["jsq"],
                systems=SystemSpec(4, 1),
                loads=[0.5],
                rounds=50,
                backend="warp-drive",
            )


class TestBitExactness:
    @pytest.mark.parametrize("policy", DETERMINISTIC_POLICIES)
    def test_deterministic_policies_identical(self, policy):
        a = run_once(policy, "reference", seed=5)
        b = run_once(policy, "fast", seed=5)
        assert_identical(a, b)

    @pytest.mark.parametrize("policy", FALLBACK_POLICIES)
    def test_fallback_policies_identical(self, policy):
        assert not has_native_dispatch_round(make_policy(policy))
        a = run_once(policy, "reference", seed=11)
        b = run_once(policy, "fast", seed=11)
        assert_identical(a, b)

    @pytest.mark.parametrize("policy", NATIVE_BIT_IDENTICAL_POLICIES)
    def test_native_bit_identical_policies(self, policy):
        """LSQ's native path (vectorized sampled refreshes: one RNG draw
        per round across dispatchers) must not perturb the stream."""
        assert has_native_dispatch_round(make_policy(policy))
        a = run_once(policy, "reference", seed=11)
        b = run_once(policy, "fast", seed=11)
        assert_identical(a, b)

    def test_warmup_boundary_identical(self):
        """The warmup cut falls mid-block; gating must match per round."""
        a = run_once("jsq", "reference", seed=2, rounds=600, warmup=300)
        b = run_once("jsq", "fast", seed=2, rounds=600, warmup=300)
        assert_identical(a, b)

    def test_non_chunk_aligned_rounds(self):
        """Rounds not divisible by the block size exercise the tail block."""
        a = run_once("sed", "reference", seed=3, rounds=259)
        b = run_once("sed", "fast", seed=3, rounds=259)
        assert_identical(a, b)


class TestCompiledBitExactness:
    """The ``compiled`` kernel against ``fast``, compiled control flow
    forced on so numba-less hosts cover the jitted functions' exact
    (plain-Python) bodies."""

    def test_registered_with_description(self):
        assert "compiled" in available_backends()
        assert backend_descriptions()["compiled"]

    @pytest.mark.parametrize(
        "policy",
        DETERMINISTIC_POLICIES
        + FALLBACK_POLICIES
        + NATIVE_BIT_IDENTICAL_POLICIES,
    )
    def test_bit_identical_to_fast(self, policy):
        a = run_once(policy, "fast", seed=5)
        b = run_once(policy, forced_compiled(), seed=5)
        assert_identical(a, b)

    def test_warmup_boundary_identical(self):
        """The warmup cut falls mid-block; the compiled resolver gates
        record emission per departure round exactly like the store."""
        a = run_once("rr", "fast", seed=2, rounds=600, warmup=300)
        b = run_once("rr", forced_compiled(), seed=2, rounds=600, warmup=300)
        assert_identical(a, b)

    def test_non_chunk_aligned_rounds(self):
        a = run_once("wrr", "fast", seed=3, rounds=259)
        b = run_once("wrr", forced_compiled(), seed=3, rounds=259)
        assert_identical(a, b)

    @given(
        policy=st.sampled_from(DETERMINISTIC_POLICIES),
        seed=st.integers(0, 2**20),
        n=st.integers(2, 7),
        m=st.integers(1, 4),
        rho=st.floats(0.3, 1.05),
        rounds=st.integers(1, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_compiled_agrees_with_fast(self, policy, seed, n, m, rho, rounds):
        rng = np.random.default_rng(seed % 1000)
        rates = rng.uniform(0.5, 6.0, size=n)
        lambdas = np.full(m, rho * rates.sum() / m)
        results = []
        for backend in ("fast", forced_compiled()):
            result = Simulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(lambdas),
                service=GeometricService(rates),
                config=SimulationConfig(rounds=rounds, seed=seed, backend=backend),
            ).run()
            assert (
                result.total_arrived
                == result.total_departed + result.final_queued
            )
            results.append(result)
        assert_identical(*results)


class TestStochasticNativePaths:
    @pytest.mark.parametrize("policy", NATIVE_STOCHASTIC_POLICIES)
    def test_native_override_present(self, policy):
        assert has_native_dispatch_round(make_policy(policy))

    @pytest.mark.parametrize("policy", NATIVE_STOCHASTIC_POLICIES)
    def test_exact_job_accounting(self, policy):
        result = run_once(policy, "fast", seed=7, rounds=500)
        assert result.total_arrived == result.total_departed + result.final_queued
        assert result.final_queued == int(result.final_queues.sum())
        assert result.histogram.total == result.total_departed
        np.testing.assert_array_equal(
            result.server_received - result.server_departed, result.final_queues
        )

    @pytest.mark.parametrize("policy", NATIVE_STOCHASTIC_POLICIES)
    def test_identical_workload_realization(self, policy):
        """Arrival/departure streams are untouched by the policy's path."""
        a = run_once(policy, "reference", seed=9)
        b = run_once(policy, "fast", seed=9)
        assert a.total_arrived == b.total_arrived

    @pytest.mark.parametrize("policy", ["wr", "jsq(2)"])
    def test_distributional_equivalence(self, policy):
        """Replicated means agree within a loose statistical tolerance."""
        ref = np.mean(
            [
                run_once(policy, "reference", seed=s, rounds=1500).mean_response_time
                for s in range(3)
            ]
        )
        fast = np.mean(
            [
                run_once(policy, "fast", seed=s, rounds=1500).mean_response_time
                for s in range(3)
            ]
        )
        assert fast == pytest.approx(ref, rel=0.25)


class TestBackendPropertyBased:
    @given(
        policy=st.sampled_from(DETERMINISTIC_POLICIES),
        seed=st.integers(0, 2**20),
        n=st.integers(2, 7),
        m=st.integers(1, 4),
        rho=st.floats(0.3, 1.05),
        rounds=st.integers(1, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_backends_agree_and_conserve_jobs(self, policy, seed, n, m, rho, rounds):
        """Hypothesis sweep: identical records + exact accounting.

        Covers the deterministic policy set over random small systems,
        loads (including slightly inadmissible ones), and horizons that
        exercise block-boundary effects.
        """
        rng = np.random.default_rng(seed % 1000)
        rates = rng.uniform(0.5, 6.0, size=n)
        lambdas = np.full(m, rho * rates.sum() / m)
        results = []
        for backend in ("reference", "fast"):
            result = Simulation(
                rates=rates,
                policy=make_policy(policy),
                arrivals=PoissonArrivals(lambdas),
                service=GeometricService(rates),
                config=SimulationConfig(rounds=rounds, seed=seed, backend=backend),
            ).run()
            assert (
                result.total_arrived
                == result.total_departed + result.final_queued
            )
            assert result.histogram.total == result.total_departed
            results.append(result)
        assert_identical(*results)


class TestBatchQueueStore:
    """The block resolver against the reference per-server deques."""

    def reference_drain(self, n, received_blocks, done_blocks, warmup):
        """Replay the same admissions/completions through ServerQueues."""
        servers = [ServerQueue() for _ in range(n)]
        histogram = ResponseTimeHistogram()
        t = 0
        for received_block, done_block in zip(received_blocks, done_blocks):
            for i in range(received_block.shape[0]):
                for s in np.flatnonzero(received_block[i]):
                    servers[s].admit(t, int(received_block[i, s]))
                sink = histogram if t >= warmup else None
                for s in np.flatnonzero(done_block[i]):
                    completed = servers[s].complete(int(done_block[i, s]), t, sink)
                    assert completed == int(done_block[i, s])
                t += 1
        return histogram, np.array([q.length for q in servers], dtype=np.int64)

    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(1, 6),
        blocks=st.integers(1, 3),
        block_len=st.integers(1, 12),
        warmup=st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_server_queue_semantics(self, seed, n, blocks, block_len, warmup):
        rng = np.random.default_rng(seed)
        store = BatchQueueStore(n)
        histogram = ResponseTimeHistogram()
        queued = np.zeros(n, dtype=np.int64)
        received_blocks, done_blocks = [], []
        start = 0
        for _ in range(blocks):
            received = rng.integers(0, 5, size=(block_len, n))
            done = np.zeros_like(received)
            for i in range(block_len):
                queued += received[i]
                # Any feasible completion vector (<= queued) is legal.
                done[i] = rng.integers(0, queued + 1)
                queued -= done[i]
            store.process_block(start, received, done, histogram, warmup)
            received_blocks.append(received)
            done_blocks.append(done)
            start += block_len
        expected_hist, expected_queued = self.reference_drain(
            n, received_blocks, done_blocks, warmup
        )
        np.testing.assert_array_equal(histogram.counts, expected_hist.counts)
        np.testing.assert_array_equal(store.queued_jobs(), expected_queued)
        assert int(store.queued_jobs().sum()) == int(queued.sum())

    def test_overdrain_detected(self):
        store = BatchQueueStore(2)
        received = np.array([[3, 0]], dtype=np.int64)
        done = np.array([[4, 0]], dtype=np.int64)
        with pytest.raises(RuntimeError, match="drained past"):
            store.process_block(0, received, done, ResponseTimeHistogram(), 0)

    def test_empty_block_is_noop(self):
        store = BatchQueueStore(3)
        zero = np.zeros((4, 3), dtype=np.int64)
        store.process_block(0, zero, zero, ResponseTimeHistogram(), 0)
        np.testing.assert_array_equal(store.queued_jobs(), np.zeros(3, np.int64))
        np.testing.assert_array_equal(store.batch_counts(), np.zeros(3, np.int64))

    def test_carry_preserves_fifo_order(self):
        """Jobs left over at a block boundary keep their arrival rounds."""
        store = BatchQueueStore(1)
        received = np.array([[2], [3]], dtype=np.int64)
        done = np.zeros_like(received)
        store.process_block(0, received, done, None, 0)
        assert store.batch_counts()[0] == 2
        # Next block: drain 4 of the 5 -- the round-0 batch (2 jobs at
        # response 3) and part of the round-1 batch (2 jobs at response 2).
        histogram = ResponseTimeHistogram()
        store.process_block(
            2,
            np.zeros((1, 1), dtype=np.int64),
            np.array([[4]], dtype=np.int64),
            histogram,
            0,
        )
        np.testing.assert_array_equal(histogram.counts, [0, 0, 2, 2])
        assert store.queued_jobs()[0] == 1


class TestRecordMany:
    @given(
        times=st.lists(st.integers(1, 40), min_size=0, max_size=30),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_equals_sequential_record(self, times, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 4, size=len(times))
        bulk = ResponseTimeHistogram()
        bulk.record_many(np.asarray(times), counts)
        sequential = ResponseTimeHistogram()
        for value, count in zip(times, counts):
            sequential.record(value, int(count))
        np.testing.assert_array_equal(bulk.counts, sequential.counts)
        assert bulk.total == sequential.total
        assert bulk.max_response_time == sequential.max_response_time

    def test_rejects_nonpositive_times_with_positive_count(self):
        histogram = ResponseTimeHistogram()
        with pytest.raises(ValueError):
            histogram.record_many(np.array([0]), np.array([1]))

    def test_zero_count_entries_ignored(self):
        histogram = ResponseTimeHistogram()
        histogram.record_many(np.array([-5, 3]), np.array([0, 2]))
        assert histogram.total == 2
        assert histogram.max_response_time == 3

    def test_shape_mismatch_rejected(self):
        histogram = ResponseTimeHistogram()
        with pytest.raises(ValueError):
            histogram.record_many(np.array([1, 2]), np.array([1]))
