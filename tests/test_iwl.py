"""Tests for the ideal-workload computation (Algorithm 3 and Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _helpers import dispatch_instances
from repro.core.iwl import (
    compute_iba,
    compute_iwl,
    compute_iwl_reference,
    load_vector,
)


class TestFigure1:
    """The paper's worked example must reproduce to the printed digits."""

    def test_iwl_value(self, figure1_instance):
        inst = figure1_instance
        iwl = compute_iwl(inst["queues"], inst["rates"], inst["arrivals"])
        assert iwl == pytest.approx(inst["iwl"], abs=1e-12)

    def test_reference_algorithm_agrees(self, figure1_instance):
        inst = figure1_instance
        iwl = compute_iwl_reference(inst["queues"], inst["rates"], inst["arrivals"])
        assert iwl == pytest.approx(inst["iwl"], abs=1e-12)

    def test_iba_values(self, figure1_instance):
        inst = figure1_instance
        iba = compute_iba(inst["queues"], inst["rates"], inst["iwl"])
        np.testing.assert_allclose(iba, inst["iba"], atol=1e-12)

    def test_iba_conserves_work(self, figure1_instance):
        inst = figure1_instance
        iba = compute_iba(inst["queues"], inst["rates"], inst["iwl"])
        assert iba.sum() == pytest.approx(inst["arrivals"])


class TestSmallCases:
    def test_single_server(self):
        assert compute_iwl([3], [2.0], 5) == pytest.approx((3 + 5) / 2.0)

    def test_zero_arrivals_is_min_load(self):
        q = np.array([4, 2, 9])
        mu = np.array([1.0, 2.0, 3.0])
        assert compute_iwl(q, mu, 0) == pytest.approx(1.0)  # min(4/1, 2/2, 9/3)

    def test_all_equal_loads_spread_evenly(self):
        q = np.array([2, 4, 6])
        mu = np.array([1.0, 2.0, 3.0])  # all loads are 2.0
        iwl = compute_iwl(q, mu, 12)
        assert iwl == pytest.approx(2.0 + 12 / 6.0)

    def test_exactly_reaching_next_level(self):
        # Filling server 0 (load 0) up to server 1's load (2) costs exactly 2.
        q = np.array([0, 2])
        mu = np.array([1.0, 1.0])
        assert compute_iwl(q, mu, 2) == pytest.approx(2.0)
        # One more unit is then split across both servers.
        assert compute_iwl(q, mu, 4) == pytest.approx(3.0)

    def test_homogeneous_water_fill(self):
        q = np.array([0, 0, 10])
        mu = np.ones(3)
        # 6 jobs fill the two empty servers to 3 each; server 2 stays at 10.
        assert compute_iwl(q, mu, 6) == pytest.approx(3.0)

    def test_fast_server_absorbs_more(self):
        q = np.array([0, 0])
        mu = np.array([9.0, 1.0])
        iwl = compute_iwl(q, mu, 10)
        assert iwl == pytest.approx(1.0)
        iba = compute_iba(q, mu, iwl)
        np.testing.assert_allclose(iba, [9.0, 1.0])

    def test_fractional_arrivals(self):
        assert compute_iwl([0, 0], [1.0, 1.0], 1.5) == pytest.approx(0.75)


class TestValidation:
    def test_rejects_negative_arrivals(self):
        with pytest.raises(ValueError):
            compute_iwl([1], [1.0], -1)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            compute_iwl([1, 2], [1.0, 0.0], 3)

    def test_rejects_negative_queues(self):
        with pytest.raises(ValueError):
            compute_iwl([1, -2], [1.0, 1.0], 3)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            compute_iwl([1, 2], [1.0], 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compute_iwl([], [], 3)


class TestProperties:
    """Invariants that must hold on arbitrary instances."""

    @given(dispatch_instances())
    @settings(max_examples=200)
    def test_vectorized_matches_reference(self, instance):
        queues, rates, arrivals = instance
        fast = compute_iwl(queues, rates, arrivals)
        slow = compute_iwl_reference(queues, rates, arrivals)
        assert fast == pytest.approx(slow, rel=1e-12, abs=1e-12)

    @given(dispatch_instances())
    @settings(max_examples=200)
    def test_iba_conservation_and_nonnegativity(self, instance):
        queues, rates, arrivals = instance
        iwl = compute_iwl(queues, rates, arrivals)
        iba = compute_iba(queues, rates, iwl)
        assert np.all(iba >= 0)
        assert iba.sum() == pytest.approx(arrivals, rel=1e-9, abs=1e-9)

    @given(dispatch_instances())
    @settings(max_examples=200)
    def test_iwl_at_least_min_load(self, instance):
        queues, rates, arrivals = instance
        iwl = compute_iwl(queues, rates, arrivals)
        assert iwl >= load_vector(queues, rates).min() - 1e-12

    @given(dispatch_instances())
    @settings(max_examples=200)
    def test_post_assignment_loads_equalized_on_support(self, instance):
        """Every server receiving work ends exactly at the IWL; others above."""
        queues, rates, arrivals = instance
        iwl = compute_iwl(queues, rates, arrivals)
        iba = compute_iba(queues, rates, iwl)
        post = (queues + iba) / rates
        receiving = iba > 1e-9
        if receiving.any():
            np.testing.assert_allclose(post[receiving], iwl, rtol=1e-9, atol=1e-9)
        assert np.all(post >= iwl - 1e-9)

    @given(dispatch_instances(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=100)
    def test_iwl_monotone_in_arrivals(self, instance, extra):
        queues, rates, arrivals = instance
        assert compute_iwl(queues, rates, arrivals + extra) > compute_iwl(
            queues, rates, arrivals
        ) - 1e-12

    @given(dispatch_instances())
    @settings(max_examples=100)
    def test_order_argument_is_equivalent(self, instance):
        queues, rates, arrivals = instance
        order = np.argsort(queues / rates, kind="stable")
        with_order = compute_iwl(queues, rates, arrivals, order=order)
        without = compute_iwl(queues, rates, arrivals)
        assert with_order == pytest.approx(without, abs=1e-12)

    @given(dispatch_instances())
    @settings(max_examples=100)
    def test_permutation_invariance(self, instance):
        queues, rates, arrivals = instance
        rng = np.random.default_rng(0)
        perm = rng.permutation(queues.size)
        assert compute_iwl(queues[perm], rates[perm], arrivals) == pytest.approx(
            compute_iwl(queues, rates, arrivals), rel=1e-12, abs=1e-12
        )
