"""Tests for arrival and service processes and seed-stream management."""

import numpy as np
import pytest

from repro.sim.arrivals import (
    DeterministicArrivals,
    ModulatedPoissonArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.sim.seeding import derive_seed, spawn_streams
from repro.sim.service import DeterministicService, GeometricService, TraceService


class TestPoissonArrivals:
    def test_shape_and_dtype(self):
        proc = PoissonArrivals(np.array([2.0, 5.0, 0.0]))
        batch = proc.sample(np.random.default_rng(0), 0)
        assert batch.shape == (3,)
        assert batch.dtype == np.int64
        assert proc.num_dispatchers == 3

    def test_zero_rate_dispatcher_never_receives(self):
        proc = PoissonArrivals(np.array([0.0, 3.0]))
        rng = np.random.default_rng(0)
        for t in range(50):
            assert proc.sample(rng, t)[0] == 0

    def test_empirical_mean(self):
        proc = PoissonArrivals(np.array([4.0]))
        rng = np.random.default_rng(1)
        draws = [proc.sample(rng, t)[0] for t in range(5000)]
        assert np.mean(draws) == pytest.approx(4.0, rel=0.05)
        assert proc.mean_rate == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(np.array([-1.0]))
        with pytest.raises(ValueError):
            PoissonArrivals(np.array([]))


class TestDeterministicArrivals:
    def test_integer_rates_exact(self):
        proc = DeterministicArrivals(np.array([3.0]))
        rng = np.random.default_rng(0)
        assert [proc.sample(rng, t)[0] for t in range(3)] == [3, 3, 3]

    def test_fractional_rates_average_out(self):
        proc = DeterministicArrivals(np.array([2.5]))
        rng = np.random.default_rng(0)
        draws = [proc.sample(rng, t)[0] for t in range(10)]
        assert sum(draws) == 25
        assert set(draws) <= {2, 3}

    def test_reset(self):
        proc = DeterministicArrivals(np.array([0.5]))
        rng = np.random.default_rng(0)
        first = [proc.sample(rng, t)[0] for t in range(4)]
        proc.reset()
        second = [proc.sample(rng, t)[0] for t in range(4)]
        assert first == second


class TestTraceProcesses:
    def test_arrival_trace_cycles(self):
        trace = np.array([[1, 2], [3, 4]])
        proc = TraceArrivals(trace)
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(proc.sample(rng, 0), [1, 2])
        np.testing.assert_array_equal(proc.sample(rng, 1), [3, 4])
        np.testing.assert_array_equal(proc.sample(rng, 2), [1, 2])
        assert proc.mean_rate == pytest.approx(5.0)

    def test_service_trace(self):
        trace = np.array([[2, 0], [1, 1]])
        proc = TraceService(trace)
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(proc.sample(rng, 1), [1, 1])
        np.testing.assert_allclose(proc.mean_rates, [1.5, 0.5])

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals(np.array([[1, -2]]))
        with pytest.raises(ValueError):
            TraceService(np.zeros((0, 3), dtype=int))


class TestModulatedPoisson:
    def test_phases_change_rates(self):
        proc = ModulatedPoissonArrivals(
            calm_lambdas=np.array([1.0]),
            surge_lambdas=np.array([50.0]),
            switch_prob=0.5,
        )
        rng = np.random.default_rng(3)
        draws = np.array([proc.sample(rng, t)[0] for t in range(2000)])
        # Bimodal: plenty of near-zero draws and plenty of large ones.
        assert (draws < 5).sum() > 300
        assert (draws > 25).sum() > 300
        assert proc.mean_rate == pytest.approx(25.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModulatedPoissonArrivals(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            ModulatedPoissonArrivals(np.ones(2), np.ones(2), switch_prob=0.0)


class TestGeometricService:
    def test_mean_matches_mu(self):
        rates = np.array([0.5, 3.0, 10.0])
        proc = GeometricService(rates)
        rng = np.random.default_rng(0)
        draws = np.array([proc.sample(rng, t) for t in range(20_000)])
        np.testing.assert_allclose(draws.mean(axis=0), rates, rtol=0.05)

    def test_support_includes_zero(self):
        proc = GeometricService(np.array([1.0]))
        rng = np.random.default_rng(0)
        draws = [proc.sample(rng, t)[0] for t in range(100)]
        assert min(draws) == 0  # Geom on {0,1,...}: p(0) = 1/(1+mu) = 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricService(np.array([0.0]))


class TestDeterministicService:
    def test_fractional_credit(self):
        proc = DeterministicService(np.array([1.5]))
        rng = np.random.default_rng(0)
        draws = [proc.sample(rng, t)[0] for t in range(4)]
        assert sum(draws) == 6
        assert set(draws) <= {1, 2}


class TestSeeding:
    def test_same_seed_same_streams(self):
        a = spawn_streams(42)
        b = spawn_streams(42)
        assert a.arrivals.random() == b.arrivals.random()
        assert a.departures.random() == b.departures.random()
        assert a.policy.random() == b.policy.random()

    def test_streams_are_distinct(self):
        s = spawn_streams(42)
        assert s.arrivals.random() != s.departures.random()

    def test_different_seeds_differ(self):
        assert spawn_streams(1).arrivals.random() != spawn_streams(2).arrivals.random()

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "sys", 0.9) == derive_seed(1, "sys", 0.9)

    def test_derive_seed_sensitivity(self):
        base = derive_seed(1, "sys", 0.9)
        assert derive_seed(2, "sys", 0.9) != base
        assert derive_seed(1, "other", 0.9) != base
        assert derive_seed(1, "sys", 0.91) != base
