"""Tests for the SCD policy (Algorithm 2) and its TWF baseline."""

import numpy as np
import pytest

from repro.core.estimation import OracleTotal
from repro.core.iwl import compute_iwl
from repro.core.probabilities import scd_probabilities
from repro.core.scd import SCDPolicy, scd_decision
from repro.core.twf import TWFPolicy, twf_probabilities
from repro.policies.base import SystemContext, make_policy


def bind(policy, rates, m=4, seed=0):
    policy.bind(
        SystemContext(
            rates=np.asarray(rates, dtype=np.float64),
            num_dispatchers=m,
            rng=np.random.default_rng(seed),
        )
    )
    return policy


class TestSCDDecision:
    def test_decision_matches_direct_computation(self):
        queues = np.array([4, 0, 9, 2])
        rates = np.array([2.0, 1.0, 5.0, 1.0])
        iwl, probs = scd_decision(queues, rates, own_arrivals=3, num_dispatchers=4)
        a_est = 12.0  # 4 dispatchers x 3 jobs (Eq. 18)
        expected_iwl = compute_iwl(queues, rates, a_est)
        assert iwl == pytest.approx(expected_iwl)
        np.testing.assert_allclose(
            probs, scd_probabilities(queues, rates, a_est, expected_iwl), atol=1e-12
        )

    @pytest.mark.parametrize("algorithm", ["vectorized", "loop", "quadratic"])
    def test_all_algorithms_agree(self, algorithm):
        rng = np.random.default_rng(5)
        queues = rng.integers(0, 30, size=20)
        rates = rng.uniform(1.0, 10.0, size=20)
        iwl_v, p_v = scd_decision(queues, rates, 7, 5, algorithm="vectorized")
        iwl_x, p_x = scd_decision(queues, rates, 7, 5, algorithm=algorithm)
        assert iwl_v == pytest.approx(iwl_x)
        np.testing.assert_allclose(p_v, p_x, atol=1e-9)


class TestSCDPolicy:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            SCDPolicy(algorithm="magic")

    def test_dispatch_totals_and_distribution(self):
        policy = bind(SCDPolicy(), rates=[1.0, 2.0, 4.0], m=2)
        policy.begin_round(0, np.array([5, 1, 0]))
        counts = policy.dispatch(0, 50)
        assert counts.sum() == 50
        assert np.all(counts >= 0)

    def test_empirical_frequencies_match_probabilities(self):
        rates = np.array([1.0, 2.0, 4.0, 8.0])
        queues = np.array([6, 3, 1, 0])
        m = 5
        policy = bind(SCDPolicy(), rates=rates, m=m, seed=42)
        policy.begin_round(0, queues)
        batch = 20
        _, expected = scd_decision(queues, rates, batch, m)
        draws = np.zeros(4)
        trials = 400
        for _ in range(trials):
            draws += policy.dispatch(0, batch)
        freq = draws / (trials * batch)
        np.testing.assert_allclose(freq, expected, atol=0.01)

    def test_round_cache_consistency(self):
        """Two dispatchers with equal batches get the same distribution."""
        policy = bind(SCDPolicy(), rates=[1.0, 5.0], m=2, seed=1)
        policy.begin_round(0, np.array([3, 3]))
        p_first = policy._probabilities(8.0)
        p_again = policy._probabilities(8.0)
        assert p_first is p_again  # cached object, not recomputed

    def test_cache_cleared_between_rounds(self):
        policy = bind(SCDPolicy(), rates=[1.0, 5.0], m=2, seed=1)
        policy.begin_round(0, np.array([3, 3]))
        policy._probabilities(8.0)
        policy.begin_round(1, np.array([0, 9]))
        assert 8.0 not in policy._round_cache

    def test_oracle_estimator_uses_true_total(self):
        oracle = OracleTotal()
        policy = bind(SCDPolicy(estimator=oracle), rates=[1.0, 1.0], m=3)
        policy.begin_round(0, np.array([0, 0]))
        policy.observe_total_arrivals(17)
        assert oracle.estimate(5, 3) == 17.0

    def test_alg1_variant_registered(self):
        policy = make_policy("scd-alg1")
        assert policy.algorithm == "quadratic"
        assert policy.name == "scd-alg1"


class TestSCDConnectivity:
    """The Section 7 extension: partial dispatcher-server connectivity."""

    def test_mask_shape_validated(self):
        policy = SCDPolicy(connectivity=np.ones((2, 3), dtype=bool))
        with pytest.raises(ValueError, match="shaped"):
            bind(policy, rates=[1.0, 1.0], m=2)

    def test_disconnected_dispatcher_rejected(self):
        mask = np.array([[True, True], [False, False]])
        policy = SCDPolicy(connectivity=mask)
        with pytest.raises(ValueError, match="at least one server"):
            bind(policy, rates=[1.0, 1.0], m=2)

    def test_jobs_only_reach_connected_servers(self):
        mask = np.array(
            [
                [True, True, False, False],
                [False, False, True, True],
            ]
        )
        policy = bind(SCDPolicy(connectivity=mask), rates=np.ones(4), m=2)
        policy.begin_round(0, np.zeros(4, dtype=np.int64))
        for d in range(2):
            counts = policy.dispatch(d, 40)
            assert counts.sum() == 40
            assert counts[~mask[d]].sum() == 0

    def test_full_mask_matches_unmasked_distribution(self):
        rates = np.array([1.0, 3.0, 2.0])
        queues = np.array([4, 0, 2])
        masked = bind(
            SCDPolicy(connectivity=np.ones((2, 3), dtype=bool)), rates=rates, m=2
        )
        masked.begin_round(0, queues)
        p_masked = masked._masked_probabilities(0, 6.0)
        plain = bind(SCDPolicy(), rates=rates, m=2)
        plain.begin_round(0, queues)
        p_plain = plain._probabilities(6.0)
        np.testing.assert_allclose(p_masked, p_plain, atol=1e-9)


class TestTWF:
    def test_twf_probabilities_are_rate_oblivious(self):
        queues = np.array([3, 0, 1])
        level, p = twf_probabilities(queues, 6)
        # Must equal SCD's output on a unit-rate system.
        ones = np.ones(3)
        iwl = compute_iwl(queues, ones, 6)
        assert level == pytest.approx(iwl)
        np.testing.assert_allclose(p, scd_probabilities(queues, ones, 6, iwl))

    def test_twf_equals_scd_on_homogeneous_systems(self):
        """On equal rates the two policies define identical distributions."""
        rng = np.random.default_rng(9)
        queues = rng.integers(0, 25, size=15)
        rates = np.full(15, 3.0)
        a_est = 24.0
        _, p_twf = twf_probabilities(queues, a_est)
        iwl = compute_iwl(queues, rates, a_est)
        p_scd = scd_probabilities(queues, rates, a_est, iwl)
        np.testing.assert_allclose(p_twf, p_scd, atol=1e-9)

    def test_twf_differs_from_scd_on_heterogeneous_systems(self):
        queues = np.array([9, 0, 0])
        rates = np.array([10.0, 1.0, 1.0])
        a_est = 6.0
        _, p_twf = twf_probabilities(queues, a_est)
        iwl = compute_iwl(queues, rates, a_est)
        p_scd = scd_probabilities(queues, rates, a_est, iwl)
        # TWF sees the fast server as hopelessly long (q=9) and shuns it.
        assert p_twf[0] == pytest.approx(0.0, abs=1e-9)
        assert p_scd[0] > 0.1

    def test_twf_policy_dispatch(self):
        policy = bind(TWFPolicy(), rates=[5.0, 1.0], m=2)
        policy.begin_round(0, np.array([2, 2]))
        counts = policy.dispatch(0, 30)
        assert counts.sum() == 30
