"""Tests for JSON result/sweep persistence."""

import json

import numpy as np
import pytest

from repro.analysis.persistence import (
    load_result,
    load_sweep,
    result_from_dict,
    result_to_dict,
    save_result,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.analysis.runner import ExperimentConfig, mean_response_sweep, run_simulation
from repro.workloads.scenarios import SystemSpec

SYSTEM = SystemSpec(num_servers=10, num_dispatchers=2, profile="u1_10")
CONFIG = ExperimentConfig(rounds=200, base_seed=0)


@pytest.fixture(scope="module")
def result():
    return run_simulation("scd", SYSTEM, rho=0.8, config=CONFIG)


class TestResultRoundTrip:
    def test_dict_round_trip_is_lossless(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.policy_name == result.policy_name
        assert restored.total_arrived == result.total_arrived
        assert restored.total_departed == result.total_departed
        assert restored.final_queued == result.final_queued
        np.testing.assert_array_equal(restored.final_queues, result.final_queues)
        np.testing.assert_array_equal(
            restored.histogram.counts, result.histogram.counts
        )
        np.testing.assert_array_equal(
            restored.queue_series.values, result.queue_series.values
        )
        assert restored.mean_response_time == result.mean_response_time

    def test_file_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path / "sub" / "run.json")
        assert path.exists()
        restored = load_result(path)
        assert restored.summary() == result.summary()

    def test_payload_is_plain_json(self, result):
        json.dumps(result_to_dict(result))  # must not raise

    def test_version_check(self, result):
        payload = result_to_dict(result)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)

    def test_series_absence_preserved(self, tmp_path):
        from repro.sim.engine import SimulationConfig
        import repro

        run = repro.Simulation(
            rates=np.ones(3),
            policy=repro.make_policy("jsq"),
            arrivals=repro.PoissonArrivals(np.ones(2)),
            service=repro.GeometricService(np.ones(3)),
            config=SimulationConfig(rounds=50, track_queue_series=False),
        ).run()
        restored = result_from_dict(result_to_dict(run))
        assert restored.queue_series is None


class TestSweepRoundTrip:
    def test_round_trip(self, tmp_path):
        sweep = mean_response_sweep(["scd", "wr"], SYSTEM, (0.6, 0.9), CONFIG)
        restored = load_sweep(save_sweep(sweep, tmp_path / "sweep.json"))
        assert restored.policies == sweep.policies
        assert restored.loads == sweep.loads
        assert restored.system == sweep.system
        for policy in sweep.policies:
            assert restored.row(policy) == sweep.row(policy)

    def test_version_check(self):
        sweep = mean_response_sweep(["wr"], SYSTEM, (0.5,), CONFIG)
        payload = sweep_to_dict(sweep)
        payload["format_version"] = 0
        with pytest.raises(ValueError, match="version"):
            sweep_from_dict(payload)
