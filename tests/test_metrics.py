"""Tests for the response-time histogram and queue-length series."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import QueueLengthSeries, ResponseTimeHistogram


def fill(samples):
    hist = ResponseTimeHistogram()
    for s in samples:
        hist.record(int(s))
    return hist


class TestHistogramBasics:
    def test_empty(self):
        hist = ResponseTimeHistogram()
        assert hist.total == 0
        assert np.isnan(hist.mean())
        with pytest.raises(ValueError):
            hist.percentile(0.5)
        with pytest.raises(ValueError):
            hist.ccdf([1])

    def test_rejects_bad_values(self):
        hist = ResponseTimeHistogram()
        with pytest.raises(ValueError):
            hist.record(0)
        with pytest.raises(ValueError):
            ResponseTimeHistogram(initial_capacity=1)

    def test_record_with_count(self):
        hist = ResponseTimeHistogram()
        hist.record(3, count=5)
        assert hist.total == 5
        assert hist.mean() == 3.0

    def test_zero_count_ignored(self):
        hist = ResponseTimeHistogram()
        hist.record(3, count=0)
        assert hist.total == 0

    def test_growth_beyond_initial_capacity(self):
        hist = ResponseTimeHistogram(initial_capacity=2)
        hist.record(1000)
        assert hist.max_response_time == 1000
        assert hist.total == 1

    def test_merge(self):
        a = fill([1, 2, 3])
        b = fill([3, 4])
        a.merge(b)
        assert a.total == 5
        assert a.counts[3] == 2
        assert a.max_response_time == 4

    def test_merge_empty_is_noop(self):
        a = fill([1, 2])
        a.merge(ResponseTimeHistogram())
        assert a.total == 2


class TestHistogramStatistics:
    @given(
        st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=300)
    )
    @settings(max_examples=150)
    def test_mean_matches_numpy(self, samples):
        hist = fill(samples)
        assert hist.mean() == pytest.approx(np.mean(samples))

    @given(
        st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=200),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=150)
    def test_percentile_definition(self, samples, q):
        """percentile(q) is the smallest t with P(T <= t) >= q."""
        hist = fill(samples)
        t = hist.percentile(q)
        arr = np.asarray(samples)
        assert (arr <= t).mean() >= q - 1e-12
        if t > 1:
            assert (arr <= t - 1).mean() < q

    @given(
        st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=200)
    )
    @settings(max_examples=100)
    def test_ccdf_matches_empirical(self, samples):
        hist = fill(samples)
        arr = np.asarray(samples)
        taus = np.arange(0, 105)
        expected = [(arr > tau).mean() for tau in taus]
        np.testing.assert_allclose(hist.ccdf(taus), expected, atol=1e-12)

    def test_ccdf_edges(self):
        hist = fill([1, 2, 3, 4])
        np.testing.assert_allclose(hist.ccdf([0]), [1.0])
        np.testing.assert_allclose(hist.ccdf([4]), [0.0])
        np.testing.assert_allclose(hist.ccdf([100]), [0.0])

    def test_quantile_of_ccdf(self):
        hist = ResponseTimeHistogram()
        hist.record(1, count=9_999)
        hist.record(50, count=1)
        # P(T > 1) = 1e-4 exactly, so the 1e-4 level is met at tau = 1...
        assert hist.quantile_of_ccdf(1e-4) == 1
        # ...while any stricter level needs the full tail.
        assert hist.quantile_of_ccdf(5e-5) == 50
        assert hist.quantile_of_ccdf(0.5) == 1

    def test_percentile_validation(self):
        hist = fill([1])
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)


class TestQueueSeries:
    def test_record_and_values(self):
        series = QueueLengthSeries(rounds_hint=2)
        for v in [1, 2, 3, 4, 5]:
            series.record(v)
        np.testing.assert_array_equal(series.values, [1, 2, 3, 4, 5])
        assert series.mean() == 3.0

    def test_growth_slope_of_linear_series(self):
        series = QueueLengthSeries()
        for t in range(100):
            series.record(5 * t + 3)
        assert series.growth_slope() == pytest.approx(5.0)

    def test_growth_slope_of_flat_series(self):
        series = QueueLengthSeries()
        for _ in range(100):
            series.record(7)
        assert series.growth_slope() == pytest.approx(0.0, abs=1e-9)

    def test_tail_to_head_ratio(self):
        series = QueueLengthSeries()
        for v in [10] * 50 + [100] * 50:
            series.record(v)
        assert series.tail_to_head_ratio() == pytest.approx(10.0)

    def test_tail_to_head_short_series_is_nan(self):
        # Shorter than 8 rounds: no meaningful head/tail split.  (Used
        # to silently report 1.0 -- a confident-looking "stationary".)
        series = QueueLengthSeries()
        series.record(3)
        assert np.isnan(series.tail_to_head_ratio())

    def test_record_many_matches_record(self):
        a, b = QueueLengthSeries(rounds_hint=4), QueueLengthSeries(rounds_hint=4)
        values = [5, 0, 3, 9, 1, 7, 2, 8, 4]
        for v in values:
            a.record(v)
        b.record_many(np.asarray(values))
        assert np.array_equal(a.values, b.values)

    def test_record_many_rejects_matrix(self):
        with pytest.raises(ValueError):
            QueueLengthSeries().record_many(np.zeros((2, 2), dtype=np.int64))

    def test_merge_adds_elementwise(self):
        a, b = QueueLengthSeries(), QueueLengthSeries()
        a.record_many(np.array([1, 2, 3]))
        b.record_many(np.array([10, 20, 30]))
        a.merge(b)
        assert a.values.tolist() == [11, 22, 33]

    def test_merge_rejects_length_mismatch(self):
        a, b = QueueLengthSeries(), QueueLengthSeries()
        a.record_many(np.array([1, 2, 3]))
        b.record_many(np.array([1, 2]))
        with pytest.raises(ValueError, match="same rounds"):
            a.merge(b)

    def test_empty_mean_is_nan(self):
        assert np.isnan(QueueLengthSeries().mean())

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            QueueLengthSeries().tail_to_head_ratio(fraction=0.9)
