"""Tests for the herding diagnostics."""

import numpy as np
import pytest

from repro.analysis.herding import HerdingProbe, HerdingStats
from repro.policies.base import make_policy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.service import GeometricService


class TestHerdingStats:
    def test_empty(self):
        stats = HerdingStats()
        assert stats.mean_spike == 0.0
        assert stats.mean_imbalance == 0.0
        assert stats.max_spike == 0

    def test_observe_tracks_spike(self):
        stats = HerdingStats()
        fair = np.array([2.5, 2.5])
        stats.observe(np.array([5, 0]), fair)
        stats.observe(np.array([3, 2]), fair)
        assert stats.max_spike == 5
        assert stats.mean_spike == 4.0
        assert stats.rounds_observed == 2

    def test_proportional_placement_has_zero_imbalance(self):
        stats = HerdingStats()
        received = np.array([6, 3, 1])
        stats.observe(received, received.astype(float))
        assert stats.mean_imbalance == pytest.approx(0.0)

    def test_concentrated_placement_has_high_imbalance(self):
        balanced = HerdingStats()
        piled = HerdingStats()
        fair = np.full(4, 2.5)
        balanced.observe(np.array([3, 2, 3, 2]), fair)
        piled.observe(np.array([10, 0, 0, 0]), fair)
        assert piled.mean_imbalance > 3 * balanced.mean_imbalance

    def test_empty_round_ignored(self):
        stats = HerdingStats()
        stats.observe(np.zeros(3, dtype=np.int64), np.zeros(3))
        assert stats.rounds_observed == 0


class TestHerdingProbe:
    def run_probe(self, policy_name, m=8, rounds=400):
        rng = np.random.default_rng(5)
        rates = rng.uniform(1.0, 10.0, size=40)
        probe = HerdingProbe(make_policy(policy_name))
        sim = Simulation(
            rates=rates,
            policy=probe,
            arrivals=PoissonArrivals(np.full(m, 0.9 * rates.sum() / m)),
            service=GeometricService(rates),
            config=SimulationConfig(rounds=rounds, seed=17),
        )
        result = sim.run()
        return result, probe.finalize()

    def test_transparent_delegation(self):
        """Wrapping must not change the simulation outcome."""
        rng = np.random.default_rng(5)
        rates = rng.uniform(1.0, 10.0, size=20)

        def run(policy):
            sim = Simulation(
                rates=rates,
                policy=policy,
                arrivals=PoissonArrivals(np.full(4, 0.85 * rates.sum() / 4)),
                service=GeometricService(rates),
                config=SimulationConfig(rounds=200, seed=3),
            )
            return sim.run()

        plain = run(make_policy("scd"))
        probed = run(HerdingProbe(make_policy("scd")))
        assert plain.mean_response_time == probed.mean_response_time
        np.testing.assert_array_equal(plain.final_queues, probed.final_queues)

    def test_probe_keeps_policy_name(self):
        probe = HerdingProbe(make_policy("sed"))
        assert probe.name == "sed"

    def test_jsq_herds_more_than_scd(self):
        """The mechanism claim: deterministic policies spike, SCD does not."""
        _, jsq_stats = self.run_probe("jsq")
        _, scd_stats = self.run_probe("scd")
        assert jsq_stats.mean_spike > 1.5 * scd_stats.mean_spike
        assert jsq_stats.max_spike > scd_stats.max_spike
        assert jsq_stats.mean_imbalance > scd_stats.mean_imbalance

    def test_stats_cover_all_rounds_with_arrivals(self):
        result, stats = self.run_probe("wr", rounds=300)
        assert stats.rounds_observed <= 300
        assert stats.rounds_observed > 250  # Poisson(44)-ish: rarely zero
