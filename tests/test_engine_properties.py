"""Property-based tests of the engine with fully deterministic workloads.

Trace-driven arrivals and services make every simulation outcome exactly
computable, so hypothesis can explore the round dynamics (conservation,
FIFO response-time bounds, warm-up accounting) without statistical slack.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.policies.base import make_policy
from repro.sim.arrivals import TraceArrivals
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.service import TraceService


@st.composite
def traced_system(draw):
    """Random small system with arrival and capacity traces."""
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=3))
    rounds = draw(st.integers(min_value=2, max_value=30))
    arrivals = np.array(
        draw(
            st.lists(
                st.lists(st.integers(0, 6), min_size=m, max_size=m),
                min_size=rounds,
                max_size=rounds,
            )
        ),
        dtype=np.int64,
    )
    capacities = np.array(
        draw(
            st.lists(
                st.lists(st.integers(0, 6), min_size=n, max_size=n),
                min_size=rounds,
                max_size=rounds,
            )
        ),
        dtype=np.int64,
    )
    rates = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    return arrivals, capacities, rates, rounds


POLICIES = ["scd", "jsq", "sed", "wr", "rr", "twf"]


class TestTraceDrivenInvariants:
    @given(traced_system(), st.sampled_from(POLICIES))
    def test_exact_conservation(self, system, policy_name):
        arrivals, capacities, rates, rounds = system
        result = Simulation(
            rates=rates,
            policy=make_policy(policy_name),
            arrivals=TraceArrivals(arrivals),
            service=TraceService(capacities),
            config=SimulationConfig(rounds=rounds, seed=0),
        ).run()
        assert result.total_arrived == int(arrivals[:rounds].sum())
        assert result.total_arrived == result.total_departed + result.final_queued
        assert result.histogram.total == result.total_departed
        assert result.server_received.sum() == result.total_arrived

    @given(traced_system(), st.sampled_from(POLICIES))
    def test_departures_bounded_by_capacity(self, system, policy_name):
        arrivals, capacities, rates, rounds = system
        result = Simulation(
            rates=rates,
            policy=make_policy(policy_name),
            arrivals=TraceArrivals(arrivals),
            service=TraceService(capacities),
            config=SimulationConfig(rounds=rounds, seed=0),
        ).run()
        assert result.total_departed <= int(capacities[:rounds].sum())

    @given(traced_system())
    def test_response_times_within_horizon(self, system):
        arrivals, capacities, rates, rounds = system
        result = Simulation(
            rates=rates,
            policy=make_policy("jsq"),
            arrivals=TraceArrivals(arrivals),
            service=TraceService(capacities),
            config=SimulationConfig(rounds=rounds, seed=0),
        ).run()
        if result.histogram.total:
            assert 1 <= result.histogram.max_response_time <= rounds

    @given(traced_system())
    def test_work_conserving_single_server(self, system):
        """With one server every policy is work-conserving: departures
        equal the running min of accumulated work and capacity."""
        arrivals, capacities, rates, rounds = system
        if rates.size != 1:
            return
        result = Simulation(
            rates=rates,
            policy=make_policy("jsq"),
            arrivals=TraceArrivals(arrivals),
            service=TraceService(capacities),
            config=SimulationConfig(rounds=rounds, seed=0),
        ).run()
        queued = 0
        done = 0
        for t in range(rounds):
            queued += int(arrivals[t].sum())
            served = min(queued, int(capacities[t][0]))
            queued -= served
            done += served
        assert result.total_departed == done
        assert result.final_queued == queued


class TestPolicyIndependenceOfWorkload:
    @given(traced_system(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_workload_streams_not_consumed_by_policy(self, system, seed):
        """Changing only the policy leaves arrivals/departures untouched --
        the common-random-numbers guarantee, bit-exact under traces and
        preserved under stochastic processes by stream separation."""
        arrivals, capacities, rates, rounds = system

        def run(policy_name):
            return Simulation(
                rates=rates,
                policy=make_policy(policy_name),
                arrivals=TraceArrivals(arrivals),
                service=TraceService(capacities),
                config=SimulationConfig(rounds=rounds, seed=seed),
            ).run()

        a = run("scd")
        b = run("jsq")
        assert a.total_arrived == b.total_arrived
        # Total departures can differ (different queue placement), but
        # neither can exceed the trace's capacity budget.
        assert max(a.total_departed, b.total_departed) <= int(
            capacities[:rounds].sum()
        )
