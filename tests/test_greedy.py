"""Tests for the greedy batch assignment (the JSQ/SED inner loop)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from _helpers import dispatch_instances
from repro.policies.greedy import (
    greedy_batch_assign,
    greedy_batch_assign_heap,
    greedy_certificate_ok,
)


class TestHeapReference:
    def test_fills_shortest_first(self):
        counts = greedy_batch_assign_heap([0, 5], np.ones(2), 3)
        np.testing.assert_array_equal(counts, [3, 0])

    def test_balances_equal_queues(self):
        counts = greedy_batch_assign_heap([0, 0], np.ones(2), 4)
        np.testing.assert_array_equal(counts, [2, 2])

    def test_sed_prefers_fast_server(self):
        # Server 0: marginals 1/10, 2/10, ...; server 1: 1, 2, ...
        # The first nine go to the fast server outright; the tenth ties
        # (1.0 vs 1.0) and may break either way.
        counts = greedy_batch_assign_heap([0, 0], np.array([10.0, 1.0]), 10)
        assert counts[0] >= 9
        assert counts.sum() == 10
        assert greedy_certificate_ok([0, 0], np.array([10.0, 1.0]), counts)

    def test_zero_jobs(self):
        counts = greedy_batch_assign_heap([1, 2], np.ones(2), 0)
        np.testing.assert_array_equal(counts, [0, 0])

    def test_exact_sequential_equivalence(self):
        """Heap result equals a literal one-job-at-a-time simulation."""
        rng = np.random.default_rng(7)
        queues = rng.integers(0, 20, size=8).astype(np.float64)
        rates = rng.uniform(0.5, 8.0, size=8)
        k = 37
        expected = np.zeros(8, dtype=np.int64)
        for _ in range(k):
            marginals = (queues + expected + 1) / rates
            expected[int(np.argmin(marginals))] += 1
        got = greedy_batch_assign_heap(queues, rates, k)
        # Tie-breaking may differ; certificate + totals are the contract.
        assert got.sum() == k
        assert greedy_certificate_ok(queues, rates, got)
        assert greedy_certificate_ok(queues, rates, expected)


class TestVectorizedAssign:
    @given(dispatch_instances(max_servers=20, max_arrivals=300))
    @settings(max_examples=200, deadline=None)
    def test_conservation_and_certificate(self, instance):
        queues, rates, k = instance
        counts = greedy_batch_assign(queues, rates, k)
        assert counts.sum() == k
        assert np.all(counts >= 0)
        assert greedy_certificate_ok(queues, rates, counts)

    @given(dispatch_instances(max_servers=16, max_arrivals=120))
    @settings(max_examples=150, deadline=None)
    def test_matches_heap_final_loads(self, instance):
        """Both implementations select the same multiset of marginals.

        Their count vectors can differ on ties, but the sorted multiset of
        chosen marginal values -- hence the objective -- is unique.
        """
        queues, rates, k = instance
        fast = greedy_batch_assign(queues, rates, k)
        slow = greedy_batch_assign_heap(queues, rates, k)

        def chosen_marginals(counts):
            values = []
            for s in range(queues.size):
                for j in range(1, int(counts[s]) + 1):
                    values.append((queues[s] + j) / rates[s])
            return np.sort(values)

        np.testing.assert_allclose(
            chosen_marginals(fast), chosen_marginals(slow), rtol=1e-9
        )

    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_empty_servers_split_evenly(self, k, n):
        counts = greedy_batch_assign(np.zeros(n), np.ones(n), k)
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == k

    def test_jsq_semantics_on_integer_queues(self):
        queues = np.array([5, 0, 3])
        counts = greedy_batch_assign(queues, np.ones(3), 6)
        # Final queue lengths should be as balanced as integers allow.
        final = queues + counts
        assert final.max() - final.min() <= 1

    def test_large_batch_waterfill_path(self):
        rng = np.random.default_rng(11)
        queues = rng.integers(0, 50, size=100)
        rates = rng.uniform(1.0, 10.0, size=100)
        k = 5_000
        counts = greedy_batch_assign(queues, rates, k)
        assert counts.sum() == k
        assert greedy_certificate_ok(queues, rates, counts)

    def test_certificate_rejects_bad_assignment(self):
        queues = np.array([0, 10])
        rates = np.ones(2)
        bad = np.array([0, 3])  # piling onto the long queue is not greedy
        assert not greedy_certificate_ok(queues, rates, bad)

    def test_certificate_rejects_negative_counts(self):
        assert not greedy_certificate_ok(np.zeros(2), np.ones(2), np.array([-1, 2]))
