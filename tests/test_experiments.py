"""Tests for the declarative experiment API (repro.experiments).

The two load-bearing guarantees:

1. **Legacy equivalence** -- an ``Experiment`` with the default
   :class:`WorkloadSpec` reproduces ``run_simulation``'s results
   bit-identically at the same (policy, system, rho, seed) coordinates.
2. **Executor equivalence** -- the process-pool executor returns records
   identical to the serial executor (seed-stable scheduling).
"""

import numpy as np
import pytest

import repro
from repro.analysis.persistence import (
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.analysis.replication import replicated_runs
from repro.analysis.runner import ExperimentConfig, mean_response_sweep, run_simulation
from repro.experiments import (
    Cell,
    Experiment,
    PolicySpec,
    ProcessPoolExecutor,
    SerialExecutor,
    WorkloadSpec,
    resolve_executor,
)
from repro.sim.sized import GeometricSize
from repro.workloads.scenarios import SystemSpec

SMALL = SystemSpec(num_servers=12, num_dispatchers=3, profile="u1_10")
OTHER = SystemSpec(num_servers=10, num_dispatchers=2, profile="u1_10")
ROUNDS = 250


class TestGrid:
    def test_scalar_axes_normalize(self):
        exp = Experiment(policies="scd", systems=SMALL, loads=0.8, rounds=100)
        assert exp.policies == (PolicySpec("scd"),)
        assert exp.systems == (SMALL,)
        assert exp.loads == (0.8,)
        assert exp.size == 1

    def test_size_and_cell_order(self):
        exp = Experiment(
            policies=["scd", "jsq"],
            systems=[SMALL, OTHER],
            loads=[0.7, 0.9],
            replications=2,
            rounds=100,
        )
        cells = list(exp.cells())
        assert exp.size == len(cells) == 16
        assert [c.index for c in cells] == list(range(16))
        # Policy is the innermost axis: consecutive cells share the seed.
        assert cells[0].seed == cells[1].seed
        assert cells[0].policy.label == "scd" and cells[1].policy.label == "jsq"

    def test_seeds_policy_independent_and_coordinate_distinct(self):
        exp = Experiment(
            policies=["scd", "jsq"], systems=SMALL, loads=[0.7, 0.9], rounds=100
        )
        seeds = {}
        for cell in exp.cells():
            seeds.setdefault(cell.rho, set()).add(cell.seed)
        assert all(len(s) == 1 for s in seeds.values())  # common across policies
        assert seeds[0.7] != seeds[0.9]  # distinct across loads

    def test_validation(self):
        with pytest.raises(ValueError):
            Experiment(policies=[], systems=SMALL, loads=0.8)
        with pytest.raises(ValueError):
            Experiment(policies="scd", systems=SMALL, loads=0.8, replications=0)
        with pytest.raises(ValueError):
            Experiment(policies="scd", systems=SMALL, loads=0.8, rounds=0)
        with pytest.raises(ValueError):
            Experiment(
                policies="scd", systems=SMALL, loads=0.8, rounds=10, warmup=10
            )
        with pytest.raises(ValueError):
            Experiment(policies=["scd", "scd"], systems=SMALL, loads=0.8)

    def test_policy_kwargs_label_and_build(self):
        spec = PolicySpec.of("jsq(d)", d=3)
        assert spec.label == "jsq(d)[d=3]"
        assert spec.build().name == "jsq(3)"


class TestLegacyEquivalence:
    def test_default_workload_bit_identical_to_run_simulation(self):
        """Acceptance criterion: same metrics, same seed, same histogram."""
        exp = Experiment(
            policies=["scd", "jsq"], systems=SMALL, loads=[0.7, 0.9], rounds=ROUNDS
        )
        result = exp.run()
        config = ExperimentConfig(rounds=ROUNDS)
        for policy in ("scd", "jsq"):
            for rho in (0.7, 0.9):
                legacy = run_simulation(policy, SMALL, rho, config)
                record = result.only(policy=policy, rho=rho)
                assert record.seed == legacy.config.seed
                assert record.metrics["mean"] == legacy.mean_response_time
                assert record.metrics["arrived"] == legacy.total_arrived
                np.testing.assert_array_equal(
                    record.result.histogram.counts, legacy.histogram.counts
                )
                np.testing.assert_array_equal(
                    record.result.final_queues, legacy.final_queues
                )

    def test_sweep_wrapper_bit_identical(self):
        config = ExperimentConfig(rounds=ROUNDS)
        sweep = mean_response_sweep(["scd", "wr"], SMALL, (0.5, 0.8), config)
        for policy in ("scd", "wr"):
            for rho in (0.5, 0.8):
                direct = run_simulation(policy, SMALL, rho, config)
                assert sweep.means[policy][rho] == direct.mean_response_time

    def test_replication_axis_matches_replicated_runs(self):
        config = ExperimentConfig(rounds=ROUNDS, base_seed=1)
        legacy = replicated_runs("scd", SMALL, 0.9, config, replications=3)
        exp = Experiment(
            policies="scd",
            systems=SMALL,
            loads=0.9,
            replications=3,
            rounds=ROUNDS,
            base_seed=1,
        )
        grid_means = tuple(
            r.metrics["mean"]
            for r in sorted(exp.run().records, key=lambda r: r.replication)
        )
        assert grid_means == legacy.replication_means

    def test_common_random_numbers_across_policies(self):
        exp = Experiment(
            policies=["scd", "jsq", "wr"], systems=SMALL, loads=0.8, rounds=ROUNDS
        )
        arrived = {r.metrics["arrived"] for r in exp.run().records}
        assert len(arrived) == 1


class TestExecutors:
    def test_parallel_records_identical_to_serial(self):
        """Acceptance criterion: process pool == serial, order included."""
        exp = Experiment(
            policies=["scd", "jsq"],
            systems=SMALL,
            loads=[0.7, 0.9],
            replications=2,
            rounds=200,
        )
        serial = exp.run(executor=SerialExecutor())
        parallel = exp.run(executor=ProcessPoolExecutor(workers=2))
        assert serial.records == parallel.records
        assert [r.seed for r in serial.records] == [r.seed for r in parallel.records]

    def test_workers_shorthand(self):
        exp = Experiment(policies="scd", systems=SMALL, loads=0.8, rounds=100)
        assert exp.run(workers=2).records == exp.run().records

    def test_resolve_executor(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(None, workers=4), ProcessPoolExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process", workers=2), ProcessPoolExecutor)
        with pytest.raises(ValueError):
            resolve_executor("threads")
        with pytest.raises(ValueError):
            resolve_executor(SerialExecutor(), workers=2)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(workers=0)

    def test_progress_callback(self):
        exp = Experiment(policies=["scd", "wr"], systems=SMALL, loads=0.8, rounds=100)
        seen = []
        exp.run(progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_keep_results_false_drops_payload_not_metrics(self):
        exp = Experiment(policies="scd", systems=SMALL, loads=0.8, rounds=100)
        with_payload = exp.run(keep_results=True)
        without = exp.run(keep_results=False)
        assert with_payload.records == without.records
        assert without.records[0].result is None
        assert with_payload.records[0].result is not None


class TestWorkloads:
    def test_paper_default_contributes_no_seed_components(self):
        assert WorkloadSpec().seed_components() == ()
        assert WorkloadSpec.skewed(3.0).seed_components() == ("skew3",)

    def test_skewed_changes_results_but_not_total_load(self):
        base = Experiment(policies="scd", systems=SMALL, loads=0.9, rounds=ROUNDS)
        skew = Experiment(
            policies="scd",
            systems=SMALL,
            loads=0.9,
            rounds=ROUNDS,
            workloads=WorkloadSpec.skewed(4.0),
        )
        a, b = base.run().records[0], skew.run().records[0]
        assert a.seed != b.seed
        assert a.metrics != b.metrics
        lambdas = WorkloadSpec.skewed(4.0).build_arrivals(SMALL, 0.9).lambdas
        np.testing.assert_allclose(lambdas.sum(), SMALL.lambdas(0.9).sum())

    def test_explicit_weights_validated_per_system(self):
        spec = WorkloadSpec(name="w", dispatcher_weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            spec.build_arrivals(SMALL, 0.8)  # SMALL has 3 dispatchers

    def test_skew_and_weights_mutually_exclusive(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", skew=2.0, dispatcher_weights=(1.0, 1.0, 1.0))

    def test_bursty_workload_runs_at_equal_average_load(self):
        spec = WorkloadSpec.bursty(surge_factor=3.0)
        arrivals = spec.build_arrivals(SMALL, 0.9)
        np.testing.assert_allclose(arrivals.mean_rate, SMALL.lambdas(0.9).sum())
        exp = Experiment(
            policies="scd", systems=SMALL, loads=0.9, rounds=200, workloads=spec
        )
        assert exp.run().records[0].metrics["mean"] >= 1.0

    def test_sized_workload_uses_sized_engine(self):
        exp = Experiment(
            policies="scd",
            systems=SMALL,
            loads=0.5,
            rounds=200,
            workloads=WorkloadSpec.sized(GeometricSize(mean_size=2.0)),
        )
        record = exp.run().records[0]
        assert "jobs" in record.metrics
        assert record.metrics["arrived"] >= record.metrics["jobs"]  # units >= jobs

    def test_multi_workload_grid(self):
        exp = Experiment(
            policies=["scd", "sed"],
            systems=SMALL,
            loads=0.9,
            rounds=150,
            workloads=[WorkloadSpec.paper(), WorkloadSpec.skewed(3.0)],
        )
        result = exp.run()
        assert len(result) == 4
        assert {r.workload for r in result.records} == {"paper", "skew3"}
        paper = result.filter(workload="paper")
        assert len(paper) == 2


class TestResults:
    def make_result(self):
        return Experiment(
            policies=["scd", "wr"],
            systems=SMALL,
            loads=[0.7, 0.9],
            replications=2,
            rounds=150,
        ).run()

    def test_filter_and_only(self):
        result = self.make_result()
        assert len(result.filter(policy="scd")) == 4
        assert len(result.filter(policy=["scd", "wr"], rho=0.9)) == 4
        record = result.only(policy="scd", rho=0.9, replication=1)
        assert record.policy == "scd" and record.replication == 1
        with pytest.raises(ValueError):
            result.only(policy="scd")  # four matches

    def test_aggregate_over_replications(self):
        result = self.make_result()
        stats = result.aggregate("mean")
        key = ("scd", SMALL.name, 0.9, "paper")
        assert stats[key]["n"] == 2
        reps = [
            r.metrics["mean"]
            for r in result.filter(policy="scd", rho=0.9).records
        ]
        assert stats[key]["mean"] == pytest.approx(sum(reps) / 2)
        assert stats[key]["stderr"] >= 0.0

    def test_best_policy_at(self):
        result = self.make_result()
        assert result.best_policy_at(0.9) == "scd"

    def test_as_rows_tidy(self):
        rows = self.make_result().as_rows()
        assert len(rows) == 8
        assert {"policy", "system", "rho", "replication", "workload", "seed", "mean"} <= set(
            rows[0]
        )

    def test_to_sweep_matches_legacy(self):
        exp = Experiment(
            policies=["scd", "wr"], systems=SMALL, loads=[0.5, 0.8], rounds=ROUNDS
        )
        sweep = exp.run().to_sweep()
        legacy = mean_response_sweep(
            ["scd", "wr"], SMALL, (0.5, 0.8), ExperimentConfig(rounds=ROUNDS)
        )
        assert sweep.policies == legacy.policies
        assert sweep.means == legacy.means


class TestPersistence:
    def test_round_trip_with_full_results(self, tmp_path):
        result = Experiment(
            policies=["scd"], systems=SMALL, loads=0.8, rounds=150
        ).run()
        path = result.save(tmp_path / "result.json")
        loaded = repro.ExperimentResult.load(path)
        assert loaded.records == result.records
        assert loaded.experiment == result.experiment
        # Full payload survives too.
        np.testing.assert_array_equal(
            loaded.records[0].result.histogram.counts,
            result.records[0].result.histogram.counts,
        )

    def test_round_trip_metrics_only(self):
        result = Experiment(
            policies=["scd"],
            systems=SMALL,
            loads=0.8,
            rounds=150,
            workloads=WorkloadSpec.skewed(2.0),
        ).run(keep_results=False)
        payload = experiment_result_to_dict(result)
        loaded = experiment_result_from_dict(payload)
        assert loaded.records == result.records
        assert loaded.experiment.workloads[0].skew == 2.0

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            experiment_result_from_dict({"kind": "nope", "format_version": 1})

    def test_loaded_registered_factory_workload_reruns(self):
        """Registered factories survive JSON: a loaded bursty experiment
        re-runs and reproduces the original records exactly."""
        result = Experiment(
            policies="scd",
            systems=SMALL,
            loads=0.8,
            rounds=100,
            workloads=WorkloadSpec.bursty(3.0),
        ).run(keep_results=False)
        loaded = experiment_result_from_dict(experiment_result_to_dict(result))
        assert loaded.records == result.records  # records stay usable
        assert loaded.experiment == result.experiment
        rerun = loaded.experiment.run(keep_results=False)
        assert rerun.records == result.records

    def test_loaded_unregistered_workload_rerun_fails_loudly(self):
        """Components without a registry entry (job-size distributions)
        do not survive JSON; re-running must raise, not silently
        simulate the default workload under the old name."""
        result = Experiment(
            policies="scd",
            systems=SMALL,
            loads=0.8,
            rounds=100,
            workloads=WorkloadSpec.sized(GeometricSize(mean_size=2.0)),
        ).run(keep_results=False)
        loaded = experiment_result_from_dict(experiment_result_to_dict(result))
        assert loaded.records == result.records  # records stay usable
        with pytest.raises(ValueError, match="loaded from JSON"):
            loaded.experiment.run()
