"""Tests for the optimal-probability solvers (Algorithms 1 and 4)."""

import numpy as np
import pytest
from hypothesis import given, settings

from _helpers import dispatch_instances
from repro.core.iwl import compute_iwl
from repro.core.probabilities import (
    kkt_residuals,
    priority_key,
    scd_objective,
    scd_probabilities,
    scd_probabilities_loop,
    scd_probabilities_quadratic,
    single_job_probabilities,
)

ALL_SOLVERS = [
    scd_probabilities,
    scd_probabilities_loop,
    scd_probabilities_quadratic,
]


def solve_all(queues, rates, arrivals):
    iwl = compute_iwl(queues, rates, arrivals)
    return iwl, [solver(queues, rates, arrivals, iwl) for solver in ALL_SOLVERS]


class TestFigure2:
    """The paper's heterogeneous worked example (Section 4.1)."""

    def test_iwl(self, figure2_instance):
        inst = figure2_instance
        iwl = compute_iwl(inst["queues"], inst["rates"], inst["arrivals"])
        assert iwl == pytest.approx(inst["iwl"], abs=1e-12)

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_fast_server_above_iwl_gets_positive_probability(
        self, figure2_instance, solver
    ):
        inst = figure2_instance
        p = solver(inst["queues"], inst["rates"], inst["arrivals"], inst["iwl"])
        # The fast server's load (9/10) exceeds the IWL (0.875), yet the
        # optimum assigns it probability ~0.221 -- the paper's headline
        # contrast with the homogeneous analysis of [22].
        assert p[0] == pytest.approx(inst["p_fast_approx"], abs=5e-3)
        assert inst["arrivals"] * p[0] == pytest.approx(
            inst["expected_jobs_fast_approx"], abs=0.02
        )

    def test_slow_servers_share_rest_equally(self, figure2_instance):
        inst = figure2_instance
        p = scd_probabilities(
            inst["queues"], inst["rates"], inst["arrivals"], inst["iwl"]
        )
        np.testing.assert_allclose(p[1:], p[1], atol=1e-12)
        # Expected post-dispatch workload of slow servers ~0.68 (Figure 2b).
        expected_slow = inst["arrivals"] * p[1]
        assert expected_slow == pytest.approx(0.68, abs=0.01)


class TestSingleJob:
    """The a == 1 closed form (Eq. 9)."""

    def test_unique_minimizer_gets_everything(self):
        q = np.array([3, 0, 5])
        mu = np.array([1.0, 1.0, 1.0])
        p = single_job_probabilities(q, mu)
        np.testing.assert_allclose(p, [0.0, 1.0, 0.0])

    def test_ties_are_split_uniformly(self):
        q = np.array([1, 1, 7])
        mu = np.array([1.0, 1.0, 1.0])
        p = single_job_probabilities(q, mu)
        np.testing.assert_allclose(p, [0.5, 0.5, 0.0])

    def test_rate_weighting_in_key(self):
        # (2*5+1)/10 = 1.1 beats (2*0+1)/0.5 = 2.0: the busy-but-fast
        # server is preferred to the idle-but-slow one.
        q = np.array([5, 0])
        mu = np.array([10.0, 0.5])
        p = single_job_probabilities(q, mu)
        np.testing.assert_allclose(p, [1.0, 0.0])

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_solvers_dispatch_to_single_job_form(self, solver):
        q = np.array([3, 0, 5])
        mu = np.array([2.0, 1.0, 4.0])
        iwl = compute_iwl(q, mu, 1)
        p = solver(q, mu, 1, iwl)
        np.testing.assert_allclose(p, single_job_probabilities(q, mu))


class TestAgreementAndOptimality:
    @given(dispatch_instances())
    @settings(max_examples=150, deadline=None)
    def test_all_three_algorithms_agree(self, instance):
        queues, rates, arrivals = instance
        _, solutions = solve_all(queues, rates, arrivals)
        for other in solutions[1:]:
            np.testing.assert_allclose(solutions[0], other, atol=1e-7)

    @given(dispatch_instances())
    @settings(max_examples=150, deadline=None)
    def test_output_is_a_distribution(self, instance):
        queues, rates, arrivals = instance
        _, solutions = solve_all(queues, rates, arrivals)
        for p in solutions:
            assert np.all(p >= 0)
            assert p.sum() == pytest.approx(1.0, abs=1e-9)

    @given(dispatch_instances())
    @settings(max_examples=150, deadline=None)
    def test_kkt_conditions_hold(self, instance):
        queues, rates, arrivals = instance
        if arrivals == 1:
            return  # Eq. (9) regime; KKT checker targets the a > 1 QP.
        iwl = compute_iwl(queues, rates, arrivals)
        p = scd_probabilities(queues, rates, arrivals, iwl)
        res = kkt_residuals(p, queues, rates, arrivals, iwl)
        scale = max(1.0, float(np.max((2 * queues + 1) / rates)))
        assert res["primal_sum"] < 1e-9
        assert res["primal_nonneg"] < 1e-12
        assert res["stationarity"] < 1e-7 * scale
        assert res["dual_feasibility"] < 1e-7 * scale

    @given(dispatch_instances())
    @settings(max_examples=100, deadline=None)
    def test_probable_set_is_prefix_of_key_order(self, instance):
        """Corollary 1: S+ is a prefix of the (2q+1)/mu ordering."""
        queues, rates, arrivals = instance
        if arrivals == 1:
            return
        iwl = compute_iwl(queues, rates, arrivals)
        p = scd_probabilities(queues, rates, arrivals, iwl)
        key = priority_key(queues, rates)
        support_keys = key[p > 1e-9]
        zero_keys = key[p <= 1e-9]
        if support_keys.size and zero_keys.size:
            # max key inside the support <= min key outside (ties allowed).
            assert support_keys.max() <= zero_keys.min() + 1e-9

    @given(dispatch_instances())
    @settings(max_examples=100, deadline=None)
    def test_beats_random_feasible_points(self, instance):
        """The returned P has no worse objective than sampled alternatives."""
        queues, rates, arrivals = instance
        if arrivals == 1:
            return
        iwl = compute_iwl(queues, rates, arrivals)
        p = scd_probabilities(queues, rates, arrivals, iwl)
        opt = scd_objective(p, queues, rates, arrivals, iwl)
        rng = np.random.default_rng(12345)
        for _ in range(10):
            candidate = rng.dirichlet(np.ones(queues.size))
            val = scd_objective(candidate, queues, rates, arrivals, iwl)
            assert opt <= val + 1e-9 * max(1.0, abs(val))

    @given(dispatch_instances())
    @settings(max_examples=80, deadline=None)
    def test_order_argument_is_equivalent(self, instance):
        queues, rates, arrivals = instance
        iwl = compute_iwl(queues, rates, arrivals)
        order = np.argsort(priority_key(queues, rates), kind="stable")
        np.testing.assert_allclose(
            scd_probabilities(queues, rates, arrivals, iwl, order=order),
            scd_probabilities(queues, rates, arrivals, iwl),
            atol=1e-12,
        )


class TestHomogeneousCase:
    """With equal rates the probable set is a prefix of the queue order.

    Note: Section 4.1 states the homogeneous probable set is exactly
    ``{s : q_s/mu < iwl}``.  That holds in the large-``a`` regime but not
    for small ``a`` (e.g. q=[0,1], mu=[1,1], a=2 gives iwl=1.5 yet the
    KKT-certified optimum is p=[1,0]); the always-true structural fact is
    Corollary 1's prefix property, which we assert here.
    """

    @pytest.mark.parametrize("arrivals", [2, 5, 20, 100])
    def test_probable_set_is_queue_prefix(self, arrivals):
        rng = np.random.default_rng(3)
        queues = rng.integers(0, 30, size=12)
        rates = np.full(12, 2.0)
        iwl = compute_iwl(queues, rates, arrivals)
        p = scd_probabilities(queues, rates, arrivals, iwl)
        support_q = queues[p > 1e-9]
        zero_q = queues[p <= 1e-9]
        if support_q.size and zero_q.size:
            assert support_q.max() <= zero_q.min()

    def test_small_a_excludes_a_below_iwl_server(self):
        """The documented counterexample to the literal Section 4.1 claim."""
        queues = np.array([0, 1])
        rates = np.ones(2)
        iwl = compute_iwl(queues, rates, 2)
        assert iwl == pytest.approx(1.5)
        p = scd_probabilities(queues, rates, 2, iwl)
        np.testing.assert_allclose(p, [1.0, 0.0], atol=1e-12)
        # and this really is the global optimum:
        from repro.core.qp_reference import brute_force_probabilities

        np.testing.assert_allclose(
            brute_force_probabilities(queues, rates, 2, iwl), p, atol=1e-12
        )

    def test_large_a_includes_all_below_iwl_servers(self):
        queues = np.array([0, 1, 2, 3, 40])
        rates = np.ones(5)
        a = 100
        iwl = compute_iwl(queues, rates, a)
        p = scd_probabilities(queues, rates, a, iwl)
        below = queues < iwl - 1e-9
        assert np.all(p[below] > 0)

    def test_equal_queues_equal_probabilities(self):
        queues = np.full(6, 4)
        rates = np.full(6, 3.0)
        iwl = compute_iwl(queues, rates, 10)
        p = scd_probabilities(queues, rates, 10, iwl)
        np.testing.assert_allclose(p, 1.0 / 6, atol=1e-12)


class TestValidation:
    def test_rejects_arrivals_below_one(self):
        with pytest.raises(ValueError):
            scd_probabilities([1, 2], [1.0, 1.0], 0.5, 1.0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            scd_probabilities([1, 2], [1.0, -1.0], 5, 1.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            scd_probabilities([1, 2, 3], [1.0, 1.0], 5, 1.0)


class TestLargeArrivals:
    """As a_est grows, P approaches the IBA proportions (weighted-random
    over the water-filled gap), per the Section 5.2 discussion."""

    def test_limit_matches_iba_fractions(self):
        queues = np.array([0, 0, 12])
        rates = np.array([2.0, 1.0, 3.0])
        a = 100_000
        iwl = compute_iwl(queues, rates, a)
        p = scd_probabilities(queues, rates, a, iwl)
        from repro.core.iwl import compute_iba

        iba = compute_iba(queues, rates, iwl)
        np.testing.assert_allclose(p, iba / iba.sum(), atol=1e-3)
