"""Tests for the scenario subsystem (repro.scenarios).

The load-bearing property (ISSUE 9 acceptance): every built-in scenario
-- nonstationary arrival curves and server-churn capacity masks -- runs
*bit-identically* across the reference loop, the vectorized fast kernel,
the compiled kernel, and the sharded coordinator, on both the unsized
and the sized engine, and survives a checkpoint kill/resume with an
active churn mask.  Around that sit the registry grammar, the churn
adapter's redirection contract, the batch stores' admission guard, the
``windowed_stability`` probe, and JSON persistence of the scenario axis.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.persistence import (
    experiment_from_descriptor,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.executor import build_cell_simulation, simulate_cell
from repro.experiments.grid import Experiment
from repro.experiments.workload import WorkloadSpec
from repro.policies.base import make_policy
from repro.runs import Run
from repro.scenarios import (
    UNAVAILABLE_QUEUE,
    ChurnPolicyAdapter,
    ModulatedRateArrivals,
    PeriodicChurnSchedule,
    apply_scenario,
    available_scenarios,
    make_scenario,
    scenario_descriptions,
)
from repro.sim.arrivals import PoissonArrivals
from repro.sim.batchstore import BatchQueueStore
from repro.sim.blockdriver import BLOCK_ROUNDS
from repro.sim.probes import ProbeSpec, WindowedStabilityProbe, probe_from_state
from repro.sim.sized import GeometricSize, SizedSimulation
from repro.sim.service import GeometricService
from repro.workloads.scenarios import SystemSpec

SYSTEM = SystemSpec(num_servers=8, num_dispatchers=2)

#: Short-horizon variants of every built-in so nonstationarity actually
#: happens inside a few-hundred-round test run.
SCENARIOS = [
    "diurnal:period=512",
    "flash:spike=5,at=64,decay=128",
    "regime:calm=0.7,surge=1.5,mean_dwell=100",
    "churn:down=0.4,period=2",
    "elastic:period=512,reserve=0.3",
]

#: Kernels that must reproduce the reference loop bit for bit.
BACKENDS = ["fast", "compiled", "sharded:2"]


def paper_with(scenario: str | None) -> WorkloadSpec:
    return dataclasses.replace(WorkloadSpec.paper(), scenario=scenario)


def assert_identical(a, b):
    assert a.histogram.state_dict() == b.histogram.state_dict()
    np.testing.assert_array_equal(a.queue_series.values, b.queue_series.values)
    np.testing.assert_array_equal(a.final_queues, b.final_queues)


# ---------------------------------------------------------------------------
# Registry and grammar.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert {"diurnal", "flash", "regime", "churn", "elastic"} <= set(
            available_scenarios()
        )

    def test_descriptions_cover_all(self):
        descriptions = scenario_descriptions()
        assert set(descriptions) == set(available_scenarios())
        assert all(descriptions.values())

    def test_param_grammar_lands_on_the_curve(self):
        scenario = make_scenario("flash:spike=6,at=100,decay=50")
        assert scenario.curve.spike == 6.0
        assert scenario.curve.at == 100
        assert scenario.curve.decay == 50.0

    def test_names_are_case_insensitive(self):
        assert type(make_scenario("DIURNAL")) is type(make_scenario("diurnal"))

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="diurnal"):
            make_scenario("no-such-scenario")

    def test_bad_parameter_rejected(self):
        with pytest.raises(ValueError):
            make_scenario("churn:down=2.0")
        with pytest.raises(ValueError):
            make_scenario("diurnal:bogus=1")

    def test_workload_spec_validates_at_construction(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", scenario="no-such-scenario")

    def test_scenario_enters_seed_components_and_descriptor(self):
        plain = WorkloadSpec.paper()
        shaped = paper_with("diurnal")
        assert plain.seed_components() != shaped.seed_components()
        assert shaped.describe()["scenario"] == "diurnal"
        assert "scenario" not in plain.describe()


# ---------------------------------------------------------------------------
# Bit-identity across every kernel family, both engines.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestUnsizedBitIdentity:
    @settings(max_examples=3, deadline=None)
    @given(
        policy=st.sampled_from(["jsq", "rr"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_all_kernels_match_reference(self, scenario, policy, seed):
        workload = paper_with(scenario)
        reference = simulate_cell(
            policy, SYSTEM, 0.85, workload, seed, rounds=512
        )
        for backend in BACKENDS:
            other = simulate_cell(
                policy, SYSTEM, 0.85, workload, seed, rounds=512, backend=backend
            )
            assert_identical(reference, other)


def sized_run(scenario, policy, seed, backend):
    rng = np.random.default_rng(123)
    rates = rng.uniform(2.0, 10.0, size=8)
    sizes = GeometricSize(2.5)
    jobs_per_round = 0.85 * rates.sum() / sizes.mean
    return SizedSimulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(np.full(2, jobs_per_round / 2)),
        service=GeometricService(rates),
        sizes=sizes,
        rounds=512,
        seed=seed,
        backend=backend,
        scenario=scenario,
    ).run()


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestSizedBitIdentity:
    @settings(max_examples=2, deadline=None)
    @given(
        policy=st.sampled_from(["jsq", "wrr"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_all_kernels_match_reference(self, scenario, policy, seed):
        reference = sized_run(scenario, policy, seed, "reference")
        for backend in BACKENDS:
            other = sized_run(scenario, policy, seed, backend)
            assert reference.histogram.state_dict() == other.histogram.state_dict()
            np.testing.assert_array_equal(
                reference.queue_series.values, other.queue_series.values
            )
            assert reference.total_units_departed == other.total_units_departed


class TestStationaryDefault:
    def test_scenario_none_changes_nothing(self):
        """The scenario axis is invisible until opted into: a default
        run must be bit-identical to one built before scenarios existed
        (same seeds, same draws, same objects)."""
        workload = WorkloadSpec.paper()
        shaped = paper_with(None)
        for backend in ["reference", "fast"]:
            a = simulate_cell("jsq", SYSTEM, 0.9, workload, 7, 400, backend=backend)
            b = simulate_cell("jsq", SYSTEM, 0.9, shaped, 7, 400, backend=backend)
            assert_identical(a, b)

    def test_apply_scenario_is_identity_for_none(self):
        policy = make_policy("jsq")
        arrivals = PoissonArrivals(np.full(2, 3.0))
        out_policy, out_arrivals = apply_scenario(None, policy, arrivals, 8)
        assert out_policy is policy
        assert out_arrivals is arrivals


# ---------------------------------------------------------------------------
# The churn adapter and the stores' admission guard.
# ---------------------------------------------------------------------------


class TestChurnSchedule:
    def test_periodic_square_wave(self):
        schedule = PeriodicChurnSchedule(8, down=0.25, period=4, duty=0.5)
        up = schedule.mask_for_block(0)
        down = schedule.mask_for_block(3)
        assert up.all()
        assert down.sum() == 6  # 25% of 8 = 2 highest-indexed servers off
        assert not down[-1] and not down[-2]

    def test_mask_changes_only_at_block_edges(self):
        schedule = PeriodicChurnSchedule(8, down=0.5, period=2, duty=0.5)
        first = schedule.mask_for_round(0)
        np.testing.assert_array_equal(
            first, schedule.mask_for_round(BLOCK_ROUNDS - 1)
        )
        assert first.sum() != schedule.mask_for_round(BLOCK_ROUNDS).sum()

    def test_all_servers_never_masked(self):
        schedule = PeriodicChurnSchedule(2, down=0.9, period=2)
        assert schedule.mask_for_block(1).sum() >= 1


class TestChurnAdapter:
    def adapter(self, policy_name: str) -> ChurnPolicyAdapter:
        policy, _ = apply_scenario(
            "churn:down=0.5,period=2,offset=1",  # masked from block 0
            make_policy(policy_name),
            PoissonArrivals(np.full(2, 3.0)),
            8,
        )
        assert isinstance(policy, ChurnPolicyAdapter)
        return policy

    def test_queue_oblivious_dispatches_are_redirected(self):
        from repro.policies.base import SystemContext

        adapter = self.adapter("rr")
        adapter.bind(
            SystemContext(rates=np.ones(8), num_dispatchers=2, rng=np.random.default_rng(0))
        )
        queues = np.zeros(8, dtype=np.int64)
        adapter.begin_round(0, queues)
        mask = adapter.capacity_mask()
        assert mask is not None and not mask.all()
        for dispatcher in range(2):
            row = adapter.dispatch(dispatcher, 12)
            assert row.sum() == 12
            assert row[~mask].sum() == 0  # nothing lands on masked servers

    def test_masked_view_uses_sentinel(self):
        from repro.policies.base import SystemContext

        adapter = self.adapter("jsq")
        adapter.bind(
            SystemContext(rates=np.ones(8), num_dispatchers=2, rng=np.random.default_rng(0))
        )
        adapter.begin_round(0, np.zeros(8, dtype=np.int64))
        assert (adapter._masked[~adapter.capacity_mask()] == UNAVAILABLE_QUEUE).all()

    def test_wrapping_a_bound_policy_rejected(self):
        from repro.policies.base import SystemContext

        policy = make_policy("jsq")
        policy.bind(
            SystemContext(rates=np.ones(8), num_dispatchers=2, rng=np.random.default_rng(0))
        )
        with pytest.raises(ValueError, match="before"):
            ChurnPolicyAdapter(policy, PeriodicChurnSchedule(8))

    def test_schedule_size_mismatch_rejected_at_bind(self):
        from repro.policies.base import SystemContext

        adapter = ChurnPolicyAdapter(make_policy("jsq"), PeriodicChurnSchedule(4))
        with pytest.raises(ValueError, match="4 servers"):
            adapter.bind(
                SystemContext(rates=np.ones(8), num_dispatchers=2, rng=np.random.default_rng(0))
            )


class TestStoreAdmissionGuard:
    def test_masked_admission_raises(self):
        store = BatchQueueStore(4)
        store.set_capacity_mask(np.array([True, True, False, False]))
        received = np.zeros((1, 4), dtype=np.int64)
        received[0, 3] = 1  # a job on a masked server: adapter bug
        done = np.zeros((1, 4), dtype=np.int64)
        with pytest.raises(RuntimeError, match="churn-masked"):
            store.process_block(0, received, done, histogram=None)

    def test_unmasked_admission_passes(self):
        store = BatchQueueStore(4)
        store.set_capacity_mask(np.array([True, True, False, False]))
        received = np.zeros((1, 4), dtype=np.int64)
        received[0, 0] = 2
        store.process_block(0, received, np.zeros((1, 4), np.int64), None)
        assert store.queued_jobs()[0] == 2

    def test_mask_shape_checked(self):
        store = BatchQueueStore(4)
        with pytest.raises(ValueError, match="shape"):
            store.set_capacity_mask(np.array([True, False]))

    def test_none_clears_the_mask(self):
        store = BatchQueueStore(2)
        store.set_capacity_mask(np.array([True, False]))
        store.set_capacity_mask(None)
        assert store.capacity_mask() is None


# ---------------------------------------------------------------------------
# Checkpoint / resume under an active churn mask.
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    #: Masked from the very first block (offset puts block 0 in the down
    #: phase), so the pause at the first checkpoint happens under an
    #: active mask and the resumed leg must rebuild it from the pickle.
    CHURN = "churn:down=0.4,period=2,duty=0.5,offset=1"

    def build(self, scenario: str, backend: str = "fast"):
        return build_cell_simulation(
            "jsq", SYSTEM, 0.85, paper_with(scenario), 7, 1024, backend=backend
        )

    @pytest.mark.parametrize(
        "scenario", ["diurnal:period=512", CHURN, "flash:spike=5,at=300,decay=200"]
    )
    def test_kill_and_resume_is_bit_identical(self, scenario, tmp_path):
        """``execute(max_legs=1)`` stops exactly where a SIGKILL would
        (after one committed checkpoint); ``Run.open`` rebuilds purely
        from disk, as ``repro resume`` does after a process death."""
        baseline = self.build(scenario).run()
        directory = tmp_path / "run"
        run = Run.create(self.build(scenario), directory)
        assert run.execute(max_legs=1) is None  # paused mid-run
        resumed = Run.open(directory).execute()
        assert_identical(baseline, resumed)

    def test_resumed_churn_run_matches_sharded(self, tmp_path):
        baseline = self.build(self.CHURN, backend="sharded:2").run()
        run = Run.create(self.build(self.CHURN), tmp_path / "run")
        run.execute(max_legs=2)
        resumed = Run.open(tmp_path / "run").execute()
        assert_identical(baseline, resumed)


# ---------------------------------------------------------------------------
# Persistence: the scenario axis survives JSON; its absence changes nothing.
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_result_round_trips_scenario(self):
        result = simulate_cell(
            "jsq", SYSTEM, 0.85, paper_with("diurnal"), 3, 400, backend="fast"
        )
        restored = result_from_dict(result_to_dict(result))
        assert restored.config.scenario == "diurnal"
        assert_identical(result, restored)

    def test_scenario_free_payload_has_no_key(self):
        result = simulate_cell("jsq", SYSTEM, 0.85, WorkloadSpec.paper(), 3, 400)
        assert "scenario" not in result_to_dict(result)["config"]

    def test_experiment_descriptor_round_trip(self):
        experiment = Experiment(
            policies=["jsq"],
            systems=SYSTEM,
            loads=[0.9],
            rounds=400,
            workloads=(paper_with("flash:spike=5,at=64,decay=128"),),
        )
        rebuilt = experiment_from_descriptor(experiment.describe())
        assert rebuilt.workloads[0].scenario == "flash:spike=5,at=64,decay=128"
        assert next(rebuilt.cells()).seed == next(experiment.cells()).seed


# ---------------------------------------------------------------------------
# The windowed_stability probe.
# ---------------------------------------------------------------------------


def make_block(start, queues):
    from repro.sim.probes import ProbeBlock

    queues = np.asarray(queues, dtype=np.int64)
    return ProbeBlock(start_round=start, length=queues.shape[0], queues=queues)


def bound_probe(window, rounds=8, servers=2):
    from repro.sim.probes import ProbeContext

    probe = WindowedStabilityProbe(window=window)
    probe.bind(
        ProbeContext(
            num_servers=servers,
            num_dispatchers=1,
            rates=np.ones(servers),
            rounds=rounds,
        )
    )
    return probe


class TestWindowedStabilityProbe:
    def test_window_means_are_exact(self):
        probe = bound_probe(window=2, rounds=6)
        probe.observe_block(make_block(0, [[1, 1], [2, 2], [3, 3]]))
        probe.observe_block(make_block(3, [[4, 4], [5, 5], [10, 10]]))
        np.testing.assert_allclose(probe.means(), [3.0, 7.0, 15.0])
        summary = probe.summary()
        assert summary["growth"] == pytest.approx(5.0)
        assert summary["peak_window"] == 2.0

    def test_merge_pools_disjoint_rounds(self):
        a = bound_probe(window=2, rounds=4)
        b = bound_probe(window=2, rounds=4)
        a.observe_block(make_block(0, [[2, 0], [4, 0]]))
        b.observe_block(make_block(2, [[6, 0], [8, 0]]))
        a.merge(b)
        np.testing.assert_allclose(a.means(), [3.0, 7.0])

    def test_merge_partition_sums_shards_without_double_counting(self):
        left = bound_probe(window=2, rounds=4, servers=1)
        right = bound_probe(window=2, rounds=4, servers=1)
        # Both shards observed all four rounds; column sums add up.
        left.observe_block(make_block(0, [[1], [1], [1], [1]]))
        right.observe_block(make_block(0, [[2], [2], [2], [2]]))
        left.merge_partition(right)
        np.testing.assert_allclose(left.means(), [3.0, 3.0])

    def test_window_mismatch_rejected(self):
        a = bound_probe(window=2)
        b = bound_probe(window=4)
        with pytest.raises(ValueError, match="window"):
            a.merge(b)

    def test_state_round_trip(self):
        probe = bound_probe(window=2, rounds=4)
        probe.observe_block(make_block(0, [[1, 1], [3, 3]]))
        restored = probe_from_state(probe.state_dict())
        np.testing.assert_allclose(restored.means(), probe.means())
        assert restored.window == probe.window

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedStabilityProbe(window=0)

    def test_flash_crowd_shows_a_hump_all_kernels_agree(self):
        spec = ProbeSpec("windowed_stability", {"window": 128})
        summaries = {}
        for backend in ["reference", "fast", "sharded:2"]:
            result = simulate_cell(
                "jsq",
                SYSTEM,
                0.8,
                paper_with("flash:spike=6,at=128,decay=100"),
                11,
                rounds=768,
                backend=backend,
                probes=(spec,),
            )
            summaries[backend] = result.probes[spec.label].summary()
        assert summaries["reference"] == summaries["fast"] == summaries["sharded:2"]
        summary = summaries["reference"]
        # The spike lands in window 1 and drains back down afterwards.
        assert summary["peak_window"] >= 1.0
        assert summary["peak_mean"] > 3 * summary["first_mean"]


# ---------------------------------------------------------------------------
# CLI surface.
# ---------------------------------------------------------------------------


class TestScenarioCLI:
    def test_scenarios_listing(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in available_scenarios():
            assert name in out

    def test_experiment_accepts_scenario(self, capsys):
        from repro.cli import main

        code = main(
            [
                "experiment",
                "--policies",
                "jsq",
                "--systems",
                "8x2",
                "--loads",
                "0.8",
                "--rounds",
                "400",
                "--backend",
                "fast",
                "--scenario",
                "diurnal:period=512",
            ]
        )
        assert code == 0
        assert "scenario: diurnal:period=512" in capsys.readouterr().out

    def test_bad_scenario_is_a_clean_exit(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="scenario"):
            main(
                [
                    "experiment",
                    "--policies",
                    "jsq",
                    "--loads",
                    "0.8",
                    "--scenario",
                    "no-such-scenario",
                ]
            )


# ---------------------------------------------------------------------------
# Modulated arrivals: the pre-sampler is the per-round sampler, exactly.
# ---------------------------------------------------------------------------


class TestModulatedRateArrivals:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_block_presample_equals_per_round_draws(self, seed):
        scenario = make_scenario("flash:spike=5,at=20,decay=30")
        arrivals = scenario.wrap_arrivals(PoissonArrivals(np.array([2.0, 3.0])))
        assert isinstance(arrivals, ModulatedRateArrivals)
        block = arrivals.sample_many(
            np.random.default_rng(seed), start_round=0, count=64
        )
        rng = np.random.default_rng(seed)
        singles = np.stack([arrivals.sample(rng, t) for t in range(64)])
        np.testing.assert_array_equal(block, singles)
