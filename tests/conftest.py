"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

# ---------------------------------------------------------------------------
# Paper worked examples (Figures 1 and 2) as fixtures.
# ---------------------------------------------------------------------------


@pytest.fixture
def figure1_instance():
    """Figure 1: rates [5,2,1,1], queues [2,1,3,1], 7 arrivals.

    Paper values: iwl = 1.375, iba = [4.875, 1.75, 0, 0.375].
    """
    return {
        "queues": np.array([2, 1, 3, 1], dtype=np.int64),
        "rates": np.array([5.0, 2.0, 1.0, 1.0]),
        "arrivals": 7,
        "iwl": 1.375,
        "iba": np.array([4.875, 1.75, 0.0, 0.375]),
    }


@pytest.fixture
def figure2_instance():
    """Figure 2: one fast server (mu=10, q=9), eight slow empty servers, a=7.

    Paper values: iwl = 0.875; the fast server -- although *above* the
    ideal workload -- receives probability ~0.221 (~1.55 of 7 jobs).
    """
    return {
        "queues": np.array([9] + [0] * 8, dtype=np.int64),
        "rates": np.array([10.0] + [1.0] * 8),
        "arrivals": 7,
        "iwl": 0.875,
        "p_fast_approx": 0.222,
        "expected_jobs_fast_approx": 1.55,
    }


# ---------------------------------------------------------------------------
# Hypothesis strategies for random problem instances.
# ---------------------------------------------------------------------------


@st.composite
def server_instances(draw, max_servers: int = 24, max_queue: int = 60):
    """A random (queues, rates) pair with well-conditioned rates."""
    n = draw(st.integers(min_value=1, max_value=max_servers))
    queues = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=max_queue),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    rates = np.array(
        draw(
            st.lists(
                st.floats(
                    min_value=0.25,
                    max_value=64.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    return queues, rates


@st.composite
def dispatch_instances(draw, max_servers: int = 24, max_arrivals: int = 200):
    """A random (queues, rates, arrivals) dispatching instance."""
    queues, rates = draw(server_instances(max_servers=max_servers))
    arrivals = draw(st.integers(min_value=1, max_value=max_arrivals))
    return queues, rates, arrivals


# Re-exported so test modules can simply `from conftest import ...`.
__all__ = ["server_instances", "dispatch_instances"]
