"""Shared fixtures and hypothesis configuration for the test suite.

Hypothesis settings profiles (per the standard idiom): the ``dev``
profile keeps property tests fast during local iteration, ``ci`` runs
them thoroughly.  CI selects its profile via ``HYPOTHESIS_PROFILE=ci``
(the workflow sets it); explicit ``--hypothesis-profile`` still wins.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from _helpers import dispatch_instances, server_instances  # noqa: F401 (re-export)

# ---------------------------------------------------------------------------
# Hypothesis profiles: thorough in CI, fast for local development.
# ---------------------------------------------------------------------------

settings.register_profile("ci", max_examples=200, deadline=None)
settings.register_profile("dev", max_examples=25, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


# ---------------------------------------------------------------------------
# Paper worked examples (Figures 1 and 2) as fixtures.
# ---------------------------------------------------------------------------


@pytest.fixture
def figure1_instance():
    """Figure 1: rates [5,2,1,1], queues [2,1,3,1], 7 arrivals.

    Paper values: iwl = 1.375, iba = [4.875, 1.75, 0, 0.375].
    """
    return {
        "queues": np.array([2, 1, 3, 1], dtype=np.int64),
        "rates": np.array([5.0, 2.0, 1.0, 1.0]),
        "arrivals": 7,
        "iwl": 1.375,
        "iba": np.array([4.875, 1.75, 0.0, 0.375]),
    }


@pytest.fixture
def figure2_instance():
    """Figure 2: one fast server (mu=10, q=9), eight slow empty servers, a=7.

    Paper values: iwl = 0.875; the fast server -- although *above* the
    ideal workload -- receives probability ~0.221 (~1.55 of 7 jobs).
    """
    return {
        "queues": np.array([9] + [0] * 8, dtype=np.int64),
        "rates": np.array([10.0] + [1.0] * 8),
        "arrivals": 7,
        "iwl": 0.875,
        "p_fast_approx": 0.222,
        "expected_jobs_fast_approx": 1.55,
    }
