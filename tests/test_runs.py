"""Tests for the run lifecycle subsystem (repro.runs).

The load-bearing property: killing a checkpointed run at ANY block
boundary and resuming it produces results bit-identical to the
uninterrupted run -- on both engines, on the sharded kernel, with
warmup and non-default probes in play.  Around that sit the checkpoint
store's corruption handling (warn + fall back, never resume from a
damaged snapshot), the telemetry stream's event contract, per-cell
experiment resume, and the CLI verbs.
"""

from __future__ import annotations

import json
import pickle
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.experiments.executor import SerialExecutor, build_cell_simulation
from repro.experiments.grid import Experiment
from repro.experiments.workload import WorkloadSpec
from repro.runs import (
    BLOCK_ROUNDS,
    CheckpointError,
    CheckpointStore,
    ExperimentRun,
    Run,
    TelemetryWriter,
    follow_events,
    inspect_run,
    iter_events,
    retained_rounds,
    scan_runs,
)
from repro.sim.sized import GeometricSize
from repro.workloads.scenarios import SystemSpec

SYSTEM = SystemSpec(num_servers=6, num_dispatchers=2)
ROUNDS = 800  # three 256-round blocks plus a trailing partial
WARMUP = 256


def build_sim(backend: str, sized: bool, rounds: int = ROUNDS):
    workload = WorkloadSpec.sized(GeometricSize(2.0)) if sized else WorkloadSpec.paper()
    return build_cell_simulation(
        "scd",
        SYSTEM,
        0.85,
        workload,
        seed=7,
        rounds=rounds,
        warmup=WARMUP,
        backend=backend,
        probes=("herding",),
    )


def fingerprint(result) -> tuple:
    """Everything bit-identity covers: histogram, series, probe summaries."""
    return (
        result.histogram.state_dict(),
        result.queue_series.values.tolist(),
        result.probe_summaries(),
    )


_BASELINES: dict = {}


def baseline(backend: str, sized: bool) -> tuple:
    key = (backend, sized)
    if key not in _BASELINES:
        _BASELINES[key] = fingerprint(build_sim(backend, sized).run())
    return _BASELINES[key]


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        blob = pickle.dumps({"round": 256, "payload": list(range(50))})
        manifest = store.write(256, blob, meta={"engine": "unsized"})
        assert manifest["round"] == 256
        assert manifest["engine"] == "unsized"
        loaded_manifest, payload = store.load_latest()
        assert loaded_manifest == manifest
        assert payload == {"round": 256, "payload": list(range(50))}

    def test_empty_store_is_fresh_start(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() is None

    def test_newest_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for round_index in (256, 512, 1024):
            store.write(round_index, pickle.dumps(round_index))
        manifest, payload = store.load_latest()
        assert manifest["round"] == 1024 and payload == 1024
        assert store.rounds() == [256, 512, 1024]

    def test_truncated_payload_falls_back_with_warning(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(256, pickle.dumps("good"))
        store.write(512, pickle.dumps("newest"))
        payload_path = tmp_path / "ckpt-0000000512.pkl"
        payload_path.write_bytes(payload_path.read_bytes()[:-7])
        with pytest.warns(RuntimeWarning, match="hash mismatch"):
            manifest, payload = store.load_latest()
        assert manifest["round"] == 256 and payload == "good"

    def test_corrupted_manifest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(256, pickle.dumps("good"))
        store.write(512, pickle.dumps("newest"))
        (tmp_path / "ckpt-0000000512.json").write_text("{not json")
        with pytest.warns(RuntimeWarning, match="unreadable manifest"):
            manifest, payload = store.load_latest()
        assert payload == "good"

    def test_missing_payload_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(256, pickle.dumps("good"))
        store.write(512, pickle.dumps("newest"))
        (tmp_path / "ckpt-0000000512.pkl").unlink()
        with pytest.warns(RuntimeWarning, match="missing payload"):
            _, payload = store.load_latest()
        assert payload == "good"

    def test_payload_without_manifest_is_invisible(self, tmp_path):
        """A crash between payload and manifest leaves no committed state."""
        store = CheckpointStore(tmp_path)
        (tmp_path / "ckpt-0000000256.pkl").write_bytes(b"aborted write")
        assert store.load_latest() is None

    def test_all_invalid_raises_with_every_failure_named(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(256, pickle.dumps("a"))
        store.write(512, pickle.dumps("b"))
        (tmp_path / "ckpt-0000000256.pkl").write_bytes(b"garbage")
        (tmp_path / "ckpt-0000000512.json").write_text("{not json")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CheckpointError) as excinfo:
                store.load_latest()
        message = str(excinfo.value)
        assert "ckpt-0000000256" in message and "ckpt-0000000512" in message

    def test_unsupported_format_version_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        manifest = store.write(256, pickle.dumps("a"))
        manifest["format_version"] = 99
        (tmp_path / "ckpt-0000000256.json").write_text(json.dumps(manifest))
        with pytest.warns(RuntimeWarning, match="format version"):
            with pytest.raises(CheckpointError):
                store.load_latest()


class TestTelemetry:
    def test_emit_and_iter_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path) as telemetry:
            telemetry.emit("run-started", rounds=100)
            telemetry.emit("run-finished")
        events = list(iter_events(path))
        assert [e["event"] for e in events] == ["run-started", "run-finished"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["rounds"] == 100
        assert all("time" in e for e in events)

    def test_seq_continues_across_writers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path) as telemetry:
            telemetry.emit("a")
        with TelemetryWriter(path) as telemetry:
            telemetry.emit("b")
        assert [e["seq"] for e in iter_events(path)] == [0, 1]

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path) as telemetry:
            telemetry.emit("a")
        with open(path, "a") as handle:
            handle.write('{"seq": 1, "event": "torn-mid-wri')
        assert [e["event"] for e in iter_events(path)] == ["a"]
        # and a new writer numbers past only the intact events
        with TelemetryWriter(path) as telemetry:
            record = telemetry.emit("b")
        assert record["seq"] == 1


class TestRun:
    def test_create_refuses_existing_run(self, tmp_path):
        Run.create(build_sim("fast", False), tmp_path / "r")
        with pytest.raises(FileExistsError, match="resume it instead"):
            Run.create(build_sim("fast", False), tmp_path / "r")

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Run.open(tmp_path / "nowhere")

    def test_uninterrupted_run_matches_plain_run(self, tmp_path):
        run = Run.create(build_sim("fast", False), tmp_path / "r")
        result = run.execute()
        assert fingerprint(result) == baseline("fast", False)

    def test_execute_is_idempotent(self, tmp_path):
        run = Run.create(build_sim("fast", False), tmp_path / "r")
        first = run.execute()
        again = Run.open(tmp_path / "r").execute()
        assert fingerprint(again) == fingerprint(first)

    def test_checkpoint_every_spaces_snapshots(self, tmp_path):
        run = Run.create(build_sim("fast", False), tmp_path / "r", checkpoint_every=2)
        run.execute()
        assert run.store.rounds() == [2 * BLOCK_ROUNDS]

    def test_telemetry_event_contract(self, tmp_path):
        run = Run.create(build_sim("fast", False), tmp_path / "r")
        run.execute(max_legs=1)
        run.execute()
        events = [e["event"] for e in iter_events(run.telemetry_path)]
        # Both sessions announce themselves; the first pauses, the
        # second finishes; every checkpoint narrates leg -> snapshot ->
        # committed, in order.
        assert events[0] == "run-started"
        assert "run-paused" in events and "run-finished" in events
        assert events.count("run-started") == 2
        leg = events.index("leg-completed")
        assert events[leg + 1] == "probe-snapshot"
        assert events[leg + 2] == "checkpoint-written"
        started = [e for e in iter_events(run.telemetry_path) if e["event"] == "run-started"]
        assert [s["resumed"] for s in started] == [False, True]
        snapshot = next(
            e for e in iter_events(run.telemetry_path) if e["event"] == "probe-snapshot"
        )
        assert "herding" in snapshot["summaries"]
        assert snapshot["summaries"]["herding"]["rounds"] == BLOCK_ROUNDS

    def test_telemetry_override_path(self, tmp_path):
        run = Run.create(
            build_sim("fast", False),
            tmp_path / "r",
            telemetry=str(tmp_path / "elsewhere.jsonl"),
        )
        assert run.telemetry_path == tmp_path / "elsewhere.jsonl"
        run.execute()
        assert any(iter_events(tmp_path / "elsewhere.jsonl"))

    def test_resume_from_corrupted_newest_falls_back_bit_identically(self, tmp_path):
        """Damage the newest snapshot: resume warns, uses the previous
        one, and still reproduces the uninterrupted run exactly."""
        run = Run.create(build_sim("fast", False), tmp_path / "r")
        paused = run.execute(max_legs=2)
        assert paused is None and len(run.store.rounds()) == 2
        newest = max(run.store.rounds())
        payload_path = run.store.directory / f"ckpt-{newest:010d}.pkl"
        payload_path.write_bytes(payload_path.read_bytes()[: 100])
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = Run.open(tmp_path / "r").execute()
        assert fingerprint(result) == baseline("fast", False)

    def test_all_checkpoints_damaged_raises(self, tmp_path):
        run = Run.create(build_sim("fast", False), tmp_path / "r")
        run.execute(max_legs=1)
        for payload_path in run.store.directory.glob("ckpt-*.pkl"):
            payload_path.write_bytes(b"damaged beyond recovery")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CheckpointError, match="every snapshot failed"):
                Run.open(tmp_path / "r").execute()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    backend=st.sampled_from(["reference", "fast", "sharded:2", "compiled"]),
    sized=st.booleans(),
    legs_before_kill=st.integers(min_value=1, max_value=3),
)
def test_kill_at_any_block_then_resume_is_bit_identical(
    tmp_path_factory, backend, sized, legs_before_kill
):
    """The tentpole property, over every (engine x kernel x kill point).

    ``execute(max_legs=k)`` stops the process exactly where a SIGKILL
    right after the k-th checkpoint commit would; progress beyond the
    commit exists only in memory either way, so resuming exercises the
    identical recovery path.  Warmup and a non-default (herding) probe
    ride along so discarded-response bookkeeping and probe state are
    part of the round trip.
    """
    directory = tmp_path_factory.mktemp("killpoint") / "run"
    run = Run.create(build_sim(backend, sized), directory)
    interrupted = run.execute(max_legs=legs_before_kill)
    if legs_before_kill >= 3:
        # Only 3 interior block boundaries exist at 800 rounds.
        assert interrupted is None or fingerprint(interrupted) == baseline(
            backend, sized
        )
    result = interrupted
    while result is None:
        result = Run.open(directory).execute(max_legs=1)
    assert fingerprint(result) == baseline(backend, sized)


class TestRetention:
    GRID = [256 * i for i in range(1, 11)]  # ordinals 1..10

    def test_keeps_newest_plus_power_of_two_anchors(self):
        kept = retained_rounds(self.GRID, keep_last=3)
        anchors = {256, 512, 1024, 2048}  # ordinals 1, 2, 4, 8
        newest = {2048, 2304, 2560}
        assert kept == sorted(anchors | newest)

    def test_policy_is_idempotent(self):
        once = retained_rounds(self.GRID, keep_last=2)
        # stride inference re-derives from the surviving ordinal-1
        # checkpoint, so pruning what was already pruned removes nothing
        assert retained_rounds(once, keep_last=2) == once

    def test_off_grid_rounds_are_kept(self):
        kept = retained_rounds([256, 512, 700, 768], keep_last=1)
        assert 700 in kept

    def test_explicit_stride_overrides_inference(self):
        kept = retained_rounds([512, 1024, 1536, 2048], keep_last=1, stride=512)
        assert kept == [512, 1024, 2048]  # 1536 is ordinal 3: dropped

    def test_keep_last_validated(self):
        with pytest.raises(ValueError, match="keep_last"):
            retained_rounds([256], keep_last=0)

    def test_store_prune_deletes_manifest_and_payload(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for round_index in self.GRID:
            store.write(round_index, pickle.dumps(round_index))
        removed = store.prune(2)
        expected = retained_rounds(self.GRID, 2)
        assert store.rounds() == expected
        assert removed == sorted(set(self.GRID) - set(expected))
        for round_index in removed:
            assert not (tmp_path / f"ckpt-{round_index:010d}.json").exists()
            assert not (tmp_path / f"ckpt-{round_index:010d}.pkl").exists()
        assert store.prune(2) == []  # second pass is a no-op
        manifest, payload = store.load_latest()
        assert manifest["round"] == 2560 and payload == 2560

    def test_run_with_keep_prunes_live_and_resumes_bit_identically(self, tmp_path):
        expected = fingerprint(build_sim("fast", False, rounds=2560).run())
        run = Run.create(
            build_sim("fast", False, rounds=2560), tmp_path / "r", keep=2
        )
        assert run.execute(max_legs=4) is None
        result = Run.open(tmp_path / "r").execute()
        assert fingerprint(result) == expected
        events = [e["event"] for e in iter_events(run.telemetry_path)]
        assert "checkpoints-pruned" in events
        # interior checkpoints land at 256..2304; the retention policy
        # holds at rest after incremental pruning
        assert run.store.rounds() == retained_rounds(
            [256 * i for i in range(1, 10)], 2
        )


class TestFollowEvents:
    def test_stop_predicate_still_drains_final_events(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "t.jsonl")
        writer.emit("first")
        done = threading.Event()
        events = follow_events(
            tmp_path / "t.jsonl", poll_interval=0.01, stop=done.is_set
        )
        assert next(events)["event"] == "first"
        # an event written just before the stop flag flips must not be
        # lost -- the generator drains one final time before ending
        writer.emit("last")
        done.set()
        assert [e["event"] for e in events] == ["last"]

    def test_concurrent_readers_see_identical_streams(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "t.jsonl")
        for index in range(5):
            writer.emit("tick", index=index)
        done = threading.Event()
        done.set()
        streams = [
            list(
                follow_events(
                    tmp_path / "t.jsonl", poll_interval=0.01, stop=done.is_set
                )
            )
            for _ in range(2)
        ]
        assert streams[0] == streams[1]
        assert [e["index"] for e in streams[0]] == list(range(5))

    def test_poll_interval_validated(self, tmp_path):
        with pytest.raises(ValueError, match="poll_interval"):
            next(follow_events(tmp_path / "t.jsonl", poll_interval=0))


class TestInventory:
    def test_simulation_run_row_tracks_lifecycle(self, tmp_path):
        run = Run.create(build_sim("fast", False), tmp_path / "r")
        row = inspect_run(tmp_path / "r")
        assert (row["kind"], row["status"]) == ("simulation_run", "fresh")
        run.execute(max_legs=1)
        row = inspect_run(tmp_path / "r")
        assert row["status"] == "in-flight"
        assert row["rounds_done"] == BLOCK_ROUNDS
        assert row["checkpoints"] == 1
        Run.open(tmp_path / "r").execute()
        row = inspect_run(tmp_path / "r")
        assert row["status"] == "finished"
        assert row["rounds_done"] == ROUNDS

    def test_non_run_directory_is_none(self, tmp_path):
        assert inspect_run(tmp_path) is None

    def test_damaged_manifest_reported_not_crashed(self, tmp_path):
        (tmp_path / "run.json").write_text("{not json")
        row = inspect_run(tmp_path)
        assert (row["kind"], row["status"]) == ("damaged", "damaged")

    def test_scan_runs_inventories_children(self, tmp_path):
        Run.create(build_sim("fast", False), tmp_path / "a").execute(max_legs=1)
        Run.create(build_sim("fast", False), tmp_path / "b").execute()
        (tmp_path / "not-a-run").mkdir()
        rows = scan_runs(tmp_path)
        assert [Path(r["directory"]).name for r in rows] == ["a", "b"]
        assert [r["status"] for r in rows] == ["in-flight", "finished"]

    def test_scan_runs_on_a_run_returns_itself(self, tmp_path):
        Run.create(build_sim("fast", False), tmp_path / "r").execute()
        rows = scan_runs(tmp_path / "r")
        assert len(rows) == 1 and rows[0]["status"] == "finished"


class TestExperimentRun:
    def build_experiment(self):
        return Experiment(
            policies=("scd", "jsq"),
            systems=SYSTEM,
            loads=(0.8,),
            rounds=600,
            workloads=(WorkloadSpec.paper(),),
            backend="fast",
        )

    def test_create_refuses_existing(self, tmp_path):
        ExperimentRun.create(self.build_experiment(), tmp_path / "e")
        with pytest.raises(FileExistsError):
            ExperimentRun.create(self.build_experiment(), tmp_path / "e")

    def test_per_cell_resume_matches_serial_execution(self, tmp_path):
        experiment = self.build_experiment()
        expected = SerialExecutor().run(experiment)
        ExperimentRun.create(experiment, tmp_path / "e")
        outcome = None
        sessions = 0
        while outcome is None:
            outcome = ExperimentRun.open(tmp_path / "e").execute(max_legs=1)
            sessions += 1
        assert sessions > 1  # the pause budget actually interrupted it
        assert list(outcome.records) == list(expected)
        events = [e["event"] for e in iter_events(tmp_path / "e" / "telemetry.jsonl")]
        assert "cell-skipped" in events  # finished cells were not redone
        assert events[-1] == "experiment-finished"
        assert (tmp_path / "e" / "result.json").exists()

    def test_cell_directories_are_runs(self, tmp_path):
        experiment = self.build_experiment()
        run = ExperimentRun.create(experiment, tmp_path / "e")
        run.execute()
        for index in range(experiment.size):
            cell = Run.open(run.cell_directory(index))
            assert cell.result() is not None


class TestCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def simulate_args(self, directory, *extra):
        return (
            "run", "--policy", "scd", "--rho", "0.85", "--backend", "fast",
            "--servers", "6", "--dispatchers", "2", "--rounds", "800",
            "--warmup", "256", "--seed", "7", "--metrics", "herding",
            "--checkpoint-dir", str(directory), *extra,
        )

    def test_run_pause_resume_tail(self, capsys, tmp_path):
        directory = tmp_path / "r"
        code, out = self.run_cli(
            capsys, *self.simulate_args(directory, "--max-legs", "1")
        )
        assert code == 0 and "paused after 1 checkpoint leg(s)" in out
        code, out = self.run_cli(capsys, "resume", str(directory))
        assert code == 0
        assert "resuming from round 256" in out
        assert "mean_response_time" in out and "probe herding" in out
        code, out = self.run_cli(capsys, "tail", str(directory))
        assert code == 0
        for expected in (
            "run-started", "leg-completed", "probe-snapshot",
            "checkpoint-written", "run-paused", "run-finished",
        ):
            assert expected in out
        code, raw = self.run_cli(capsys, "tail", str(directory), "--raw")
        first = json.loads(raw.splitlines()[0])
        assert first["event"] == "run-started" and first["seq"] == 0

    def test_run_refuses_existing_directory(self, capsys, tmp_path):
        directory = tmp_path / "r"
        self.run_cli(capsys, *self.simulate_args(directory, "--max-legs", "1"))
        with pytest.raises(SystemExit, match="repro resume"):
            main(list(self.simulate_args(directory)))

    def test_resume_without_manifest_fails_cleanly(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="no run manifest"):
            main(["resume", str(tmp_path / "missing")])

    def test_cli_result_matches_api_run(self, capsys, tmp_path):
        code, _ = self.run_cli(capsys, *self.simulate_args(tmp_path / "r"))
        assert code == 0
        run = Run.open(tmp_path / "r")
        assert fingerprint(run.result()) == baseline("fast", False)

    def test_tail_follow_ends_once_run_finished(self, capsys, tmp_path):
        # against a finished run the stop predicate (result.json exists)
        # is already true: follow drains everything and terminates
        self.run_cli(capsys, *self.simulate_args(tmp_path / "r"))
        code, out = self.run_cli(
            capsys, "tail", str(tmp_path / "r"), "--follow"
        )
        assert code == 0 and "run-finished" in out

    def test_run_keep_flag_applies_retention(self, capsys, tmp_path):
        directory = tmp_path / "r"
        code, _ = self.run_cli(
            capsys,
            "run", "--policy", "scd", "--rho", "0.85", "--backend", "fast",
            "--servers", "6", "--dispatchers", "2", "--rounds", "2560",
            "--warmup", "256", "--seed", "7", "--keep", "2",
            "--checkpoint-dir", str(directory),
        )
        assert code == 0
        rounds = Run.open(directory).store.rounds()
        assert rounds == retained_rounds([256 * i for i in range(1, 10)], 2)

    def test_runs_list_inventories_directory(self, capsys, tmp_path):
        root = tmp_path / "runs"
        self.run_cli(
            capsys, *self.simulate_args(root / "a", "--max-legs", "1")
        )
        self.run_cli(capsys, *self.simulate_args(root / "b"))
        code, out = self.run_cli(capsys, "runs", "list", str(root))
        assert code == 0
        assert "in-flight" in out and "finished" in out
        code, raw = self.run_cli(capsys, "runs", "list", str(root), "--json")
        rows = json.loads(raw)
        assert [r["status"] for r in rows] == ["in-flight", "finished"]
        with pytest.raises(SystemExit, match="no run directories"):
            main(["runs", "list", str(tmp_path / "empty")])
