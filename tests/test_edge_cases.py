"""Edge-case coverage: degenerate shapes and unusual configurations."""

import numpy as np
import pytest

from repro.analysis.ccdf import ccdf_series
from repro.analysis.runner import ExperimentConfig, run_simulation
from repro.policies.base import SystemContext, make_policy
from repro.sim.arrivals import DeterministicArrivals, PoissonArrivals
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.metrics import ResponseTimeHistogram
from repro.sim.service import GeometricService
from repro.workloads.scenarios import SystemSpec


def bind(policy, rates, m=2, seed=0):
    policy.bind(
        SystemContext(
            rates=np.asarray(rates, dtype=np.float64),
            num_dispatchers=m,
            rng=np.random.default_rng(seed),
        )
    )
    return policy


ALL_POLICIES = [
    "scd",
    "scd-alg1",
    "twf",
    "jsq",
    "sed",
    "jsq(2)",
    "hjsq(2)",
    "jiq",
    "hjiq",
    "lsq",
    "hlsq",
    "led",
    "hled",
    "wr",
    "random",
    "rr",
    "wrr",
]


class TestSingleServer:
    """n = 1: every policy must send everything to the only server."""

    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_all_jobs_to_the_only_server(self, name):
        policy = bind(make_policy(name), rates=[3.0], m=2)
        policy.begin_round(0, np.array([5], dtype=np.int64))
        counts = policy.dispatch(0, 7)
        np.testing.assert_array_equal(counts, [7])


class TestManyDispatchersFewServers:
    def test_m_greater_than_n(self):
        system = SystemSpec(num_servers=3, num_dispatchers=12, profile="u1_10")
        result = run_simulation(
            "scd", system, rho=0.8, config=ExperimentConfig(rounds=300)
        )
        assert result.total_arrived == result.total_departed + result.final_queued

    def test_single_dispatcher_scd_estimate_is_exact(self):
        """With m = 1, Eq. 18 gives the true total: SCD sees perfect info."""
        system = SystemSpec(num_servers=10, num_dispatchers=1, profile="u1_10")
        scaled = run_simulation(
            "scd", system, rho=0.9, config=ExperimentConfig(rounds=500)
        )
        oracle = run_simulation(
            "scd",
            system,
            rho=0.9,
            config=ExperimentConfig(rounds=500),
            estimator="oracle",
        )
        assert scaled.mean_response_time == pytest.approx(
            oracle.mean_response_time, rel=1e-12
        )


class TestLargeBatches:
    def test_jiq_batch_larger_than_idle_set(self):
        policy = bind(make_policy("jiq"), rates=np.ones(4))
        policy.begin_round(0, np.array([0, 0, 0, 0]))
        counts = policy.dispatch(0, 100)
        assert counts.sum() == 100
        # All four idle servers get exactly one "idle" job; rest random.
        assert np.all(counts >= 1)

    def test_power_of_d_with_d_exceeding_n(self):
        policy = bind(make_policy("jsq(d)", d=10), rates=np.ones(3))
        policy.begin_round(0, np.array([4, 0, 9]))
        counts = policy.dispatch(0, 5)
        assert counts.sum() == 5
        # d=10 samples over 3 servers nearly always include the shortest.
        assert counts[1] >= 4


class TestFloatQueueEstimates:
    def test_greedy_accepts_float_estimates(self):
        """LSQ/LED rank on float local estimates; the fill must cope."""
        from repro.policies.greedy import greedy_batch_assign, greedy_certificate_ok

        estimates = np.array([0.5, 2.25, 1.75])
        rates = np.array([1.0, 2.0, 1.5])
        counts = greedy_batch_assign(estimates, rates, 9)
        assert counts.sum() == 9
        assert greedy_certificate_ok(estimates, rates, counts)

    def test_iwl_accepts_float_queues(self):
        from repro.core.iwl import compute_iwl

        assert compute_iwl([0.5, 1.5], [1.0, 1.0], 2.0) == pytest.approx(2.0)


class TestSparseArrivals:
    def test_mostly_idle_system(self):
        """Arrival rate far below one job per round system-wide."""
        rates = np.ones(5)
        sim = Simulation(
            rates=rates,
            policy=make_policy("scd"),
            arrivals=PoissonArrivals(np.full(2, 0.05)),
            service=GeometricService(rates),
            config=SimulationConfig(rounds=2000, seed=3),
        )
        result = sim.run()
        assert result.total_arrived > 0
        # Nearly every job is alone in an empty system: response ~ 1-2.
        assert result.mean_response_time < 2.5

    def test_single_job_rounds_use_eq9_path(self):
        """a_d = 1 with m = 1 exercises the a = 1 closed form end to end."""
        rates = np.array([1.0, 5.0])
        sim = Simulation(
            rates=rates,
            policy=make_policy("scd"),
            arrivals=DeterministicArrivals(np.array([1.0])),
            service=GeometricService(rates),
            config=SimulationConfig(rounds=300, seed=1),
        )
        result = sim.run()
        assert result.total_arrived == 300
        # The fast server has the lower (2q+1)/mu key when both are short;
        # it should receive the bulk of the singleton jobs.
        assert result.server_received[1] > result.server_received[0]


class TestMetricsEdges:
    def test_ccdf_series_two_points(self):
        hist = ResponseTimeHistogram()
        hist.record(1, 5)
        taus, values = ccdf_series(hist, num_points=2)
        assert values[-1] == 0.0

    def test_histogram_single_value(self):
        hist = ResponseTimeHistogram()
        hist.record(7, count=100)
        assert hist.percentile(0.001) == 7
        assert hist.percentile(1.0) == 7
        assert hist.mean() == 7.0

    def test_format_table_mixed_types(self):
        from repro.analysis.tables import format_table

        text = format_table(["a", "b"], [[1, float("nan")], ["x", 2.5]])
        assert "nan" in text and "2.500" in text


class TestCLIEdges:
    def test_sweep_save(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep", "--policies", "wr", "--loads", "0.5",
                "--servers", "8", "--dispatchers", "2",
                "--rounds", "100", "--save", str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_stability_overload_skips_bound(self, capsys):
        from repro.cli import main

        code = main(
            [
                "stability", "--policy", "wr", "--rho", "1.2",
                "--servers", "5", "--dispatchers", "2", "--rounds", "200",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "UNSTABLE" in out
        assert "Appendix D" not in out  # no bound at inadmissible load


class TestPolicyReuse:
    def test_rebinding_raises(self):
        """Binding a bound policy to a second simulation fails loudly.

        Policies carry per-system mutable state, so silent rebinding
        would share it across simulations; fresh instances per
        simulation are the contract.
        """
        policy = make_policy("lsq")
        rates = np.ones(4)

        def build(policy, seed):
            return Simulation(
                rates=rates,
                policy=policy,
                arrivals=PoissonArrivals(np.full(2, 1.5)),
                service=GeometricService(rates),
                config=SimulationConfig(rounds=100, seed=seed),
            )

        result = build(policy, seed=0).run()
        assert result.total_arrived == result.total_departed + result.final_queued
        with pytest.raises(RuntimeError, match="already bound"):
            build(policy, seed=1)
        # A fresh instance binds fine.
        result = build(make_policy("lsq"), seed=1).run()
        assert result.total_arrived == result.total_departed + result.final_queued
