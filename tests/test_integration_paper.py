"""End-to-end shape checks against the paper's headline claims.

These run scaled-down versions of the paper's experiments (smaller systems,
fewer rounds, fixed seeds) and assert the *qualitative* results: who wins,
who degrades, and the direction of the gaps.  The full-scale numbers live
in the benchmark suite and EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis.runner import ExperimentConfig, run_simulation, tail_experiment
from repro.workloads.scenarios import SystemSpec

CONFIG = ExperimentConfig(rounds=2500, base_seed=11)
MODERATE = SystemSpec(num_servers=40, num_dispatchers=5, profile="u1_10")
EXTREME = SystemSpec(num_servers=40, num_dispatchers=5, profile="u1_100")


@pytest.fixture(scope="module")
def moderate_results():
    policies = ["scd", "twf", "jsq", "sed", "hjsq(2)", "hjiq", "hlsq", "wr"]
    return tail_experiment(policies, MODERATE, rho=0.9, config=CONFIG)


@pytest.fixture(scope="module")
def extreme_results():
    policies = ["scd", "twf", "sed", "hlsq"]
    return tail_experiment(policies, EXTREME, rho=0.9, config=CONFIG)


class TestSCDWins:
    def test_scd_has_best_mean_under_moderate_heterogeneity(self, moderate_results):
        means = {p: r.mean_response_time for p, r in moderate_results.items()}
        best = min(means, key=means.get)
        assert best == "scd", means

    def test_scd_has_best_mean_under_extreme_heterogeneity(self, extreme_results):
        means = {p: r.mean_response_time for p, r in extreme_results.items()}
        best = min(means, key=means.get)
        assert best == "scd", means

    def test_scd_has_best_p99_tail(self, moderate_results):
        p99 = {p: r.histogram.percentile(0.99) for p, r in moderate_results.items()}
        assert p99["scd"] == min(p99.values()), p99


class TestTWFDegradesUnderHeterogeneity:
    """The paper's motivating contrast: [22]'s TWF ignores rates."""

    def test_twf_worse_than_scd(self, moderate_results):
        assert (
            moderate_results["twf"].mean_response_time
            > moderate_results["scd"].mean_response_time
        )

    def test_twf_tail_collapses_at_high_heterogeneity(self, extreme_results):
        """Under U[1,100], TWF's p99 degrades vs heterogeneity-aware
        policies (Figure 4b shows an order of magnitude at high load)."""
        p99 = {p: r.histogram.percentile(0.99) for p, r in extreme_results.items()}
        assert p99["twf"] > 2 * p99["scd"], p99
        assert p99["twf"] > p99["sed"], p99


class TestHerding:
    """More dispatchers hurt deterministic policies but not SCD."""

    def test_jsq_degrades_with_more_dispatchers(self):
        single = run_simulation(
            "jsq", SystemSpec(40, 1, "u1_10"), rho=0.9, config=CONFIG
        )
        many = run_simulation(
            "jsq", SystemSpec(40, 10, "u1_10"), rho=0.9, config=CONFIG
        )
        assert many.mean_response_time > 1.15 * single.mean_response_time

    def test_scd_robust_to_more_dispatchers(self):
        single = run_simulation(
            "scd", SystemSpec(40, 1, "u1_10"), rho=0.9, config=CONFIG
        )
        many = run_simulation(
            "scd", SystemSpec(40, 10, "u1_10"), rho=0.9, config=CONFIG
        )
        assert many.mean_response_time < 1.25 * single.mean_response_time


class TestHeterogeneityAwareVariantsHelp:
    def test_hjsq2_beats_jsq2(self):
        jsq2 = run_simulation("jsq(2)", MODERATE, rho=0.9, config=CONFIG)
        hjsq2 = run_simulation("hjsq(2)", MODERATE, rho=0.9, config=CONFIG)
        assert hjsq2.mean_response_time < jsq2.mean_response_time

    def test_hjiq_beats_jiq_at_high_load(self):
        jiq = run_simulation("jiq", MODERATE, rho=0.95, config=CONFIG)
        hjiq = run_simulation("hjiq", MODERATE, rho=0.95, config=CONFIG)
        assert hjiq.mean_response_time < jiq.mean_response_time


class TestEstimatorAblation:
    def test_oracle_close_to_scaled(self):
        """Eq. 18's simple estimator should be near the oracle's quality
        (the deviations compensate, Section 5.1)."""
        scaled = run_simulation("scd", MODERATE, rho=0.9, config=CONFIG)
        oracle = run_simulation(
            "scd", MODERATE, rho=0.9, config=CONFIG, estimator="oracle"
        )
        assert scaled.mean_response_time < 1.3 * oracle.mean_response_time

    def test_wild_constant_estimate_hurts(self):
        """An absurdly large a_est degenerates toward weighted-random."""
        scaled = run_simulation("scd", MODERATE, rho=0.9, config=CONFIG)
        huge = run_simulation(
            "scd", MODERATE, rho=0.9, config=CONFIG, estimator=100_000.0
        )
        assert huge.mean_response_time > scaled.mean_response_time


class TestConnectivityExtension:
    def test_scd_with_partial_connectivity_still_works(self):
        rng = np.random.default_rng(0)
        m, n = MODERATE.num_dispatchers, MODERATE.num_servers
        # Each dispatcher sees a random 60% of servers.
        mask = rng.random((m, n)) < 0.6
        mask[:, 0] = True  # guarantee non-empty rows
        result = run_simulation(
            "scd", MODERATE, rho=0.8, config=CONFIG, connectivity=mask
        )
        assert result.total_arrived == result.total_departed + result.final_queued
        assert result.mean_response_time < 15.0
