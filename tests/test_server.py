"""Tests for the batch-compressed FIFO server queue."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import ResponseTimeHistogram
from repro.sim.server import ServerQueue


class TestBasics:
    def test_starts_empty(self):
        q = ServerQueue()
        assert len(q) == 0
        assert q.complete(5, now=0, histogram=None) == 0

    def test_admit_accumulates(self):
        q = ServerQueue()
        q.admit(0, 3)
        q.admit(1, 2)
        assert len(q) == 5

    def test_admit_nonpositive_is_noop(self):
        q = ServerQueue()
        q.admit(0, 0)
        q.admit(0, -2)
        assert len(q) == 0

    def test_complete_caps_at_queue_length(self):
        q = ServerQueue()
        q.admit(0, 2)
        assert q.complete(10, now=0, histogram=None) == 2
        assert len(q) == 0

    def test_complete_caps_at_capacity(self):
        q = ServerQueue()
        q.admit(0, 10)
        assert q.complete(4, now=0, histogram=None) == 4
        assert len(q) == 6


class TestFIFOAndResponseTimes:
    def test_same_round_completion_takes_one_round(self):
        q = ServerQueue()
        hist = ResponseTimeHistogram()
        q.admit(5, 1)
        q.complete(1, now=5, histogram=hist)
        assert hist.counts[1] == 1  # arrived round 5, done round 5 -> 1 round

    def test_fifo_order_across_batches(self):
        q = ServerQueue()
        hist = ResponseTimeHistogram()
        q.admit(0, 2)  # two old jobs
        q.admit(3, 2)  # two newer jobs
        q.complete(3, now=3, histogram=hist)
        # The two round-0 jobs (response 4) depart before one round-3 job.
        assert hist.counts[4] == 2
        assert hist.counts[1] == 1
        assert len(q) == 1

    def test_partial_batch_consumption(self):
        q = ServerQueue()
        hist = ResponseTimeHistogram()
        q.admit(0, 5)
        q.complete(2, now=1, histogram=hist)
        q.complete(2, now=2, histogram=hist)
        q.complete(2, now=3, histogram=hist)
        assert hist.counts[2] == 2  # done at round 1
        assert hist.counts[3] == 2
        assert hist.counts[4] == 1
        assert len(q) == 0

    def test_none_histogram_discards_but_still_serves(self):
        q = ServerQueue()
        q.admit(0, 3)
        assert q.complete(3, now=0, histogram=None) == 3
        assert len(q) == 0


class TestPropertyConservation:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),  # admitted per round
                st.integers(min_value=0, max_value=20),  # capacity per round
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=150)
    def test_jobs_conserved_and_lengths_consistent(self, rounds):
        q = ServerQueue()
        hist = ResponseTimeHistogram()
        admitted = 0
        completed = 0
        for t, (arrivals, capacity) in enumerate(rounds):
            q.admit(t, arrivals)
            admitted += arrivals
            done = q.complete(capacity, now=t, histogram=hist)
            completed += done
            assert done <= capacity
            assert len(q) == admitted - completed
        assert hist.total == completed
        assert admitted == completed + len(q)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_response_times_nondecreasing_within_run(self, rounds):
        """FIFO means a later departure never belongs to a later arrival
        than an earlier departure -- response times per round are valid."""
        q = ServerQueue()
        for t, (arrivals, capacity) in enumerate(rounds):
            hist = ResponseTimeHistogram()
            q.admit(t, arrivals)
            q.complete(capacity, now=t, histogram=hist)
            if hist.total:
                assert hist.max_response_time <= t + 1
                # every response time is at least one round
                assert hist.counts[:1].sum() == 0
