"""Tests for the pluggable metrics & probe API (ISSUE 4).

The contract under test:

* the probe registry mirrors the policy/backend registries (names,
  errors, listings), and ``ProbeSpec`` freezes name+kwargs like
  ``PolicySpec``;
* the default probe set is bit-compatible: default runs expose the same
  histogram / queue series as always, and record metrics carry exactly
  the legacy keys;
* every built-in probe produces *identical* summaries on the reference
  and fast kernels of both engines for deterministic policies
  (parametrized + a Hypothesis sweep);
* ``state_dict`` / ``from_state`` / ``merge`` round-trip;
* probes flow end-to-end: ``SimulationConfig(probes=...)``,
  ``Experiment(metrics=...)`` records with namespaced metric keys, JSON
  persistence (legacy payloads load as the default set), and the sized
  engine's new warmup support.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.experiments import Experiment, WorkloadSpec
from repro.policies.base import make_policy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.probes import (
    DEFAULT_PROBE_LABELS,
    Probe,
    ProbeBlock,
    ProbeContext,
    ProbeSpec,
    QueueSeriesProbe,
    ResponseTimeProbe,
    available_probes,
    build_probe_set,
    make_probe,
    probe_descriptions,
    probe_from_state,
    register_probe,
)
from repro.sim.service import GeometricService
from repro.sim.sized import GeometricSize, SizedSimulation
from repro.workloads.scenarios import SystemSpec

ALL_EXTRAS = (
    "server_stats",
    "server_response_stats",
    "dispatcher_stats",
    "herding",
    ProbeSpec.of("windowed_mean", window=100),
)
BUILTIN_PROBES = (
    "responses",
    "queue_series",
    "server_stats",
    "server_response_stats",
    "dispatcher_stats",
    "windowed_mean",
    "herding",
)
LEGACY_METRIC_KEYS = {
    "mean", "p50", "p95", "p99", "p999", "max", "arrived", "departed", "queued",
}


def _rates(n, seed=123):
    return np.random.default_rng(seed).uniform(1.0, 8.0, size=n)


def run_unsized(policy, backend, *, n=8, m=3, rho=0.85, rounds=400,
                warmup=0, seed=0, probes=ALL_EXTRAS):
    rates = _rates(n)
    lambdas = np.full(m, rho * rates.sum() / m)
    return Simulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(lambdas),
        service=GeometricService(rates),
        config=SimulationConfig(
            rounds=rounds, seed=seed, warmup=warmup, backend=backend,
            probes=probes,
        ),
    ).run()


def run_sized(policy, backend, *, n=8, m=3, rho=0.85, rounds=400,
              warmup=0, seed=0, probes=ALL_EXTRAS, mean_size=3.0):
    rates = _rates(n)
    jobs_per_round = rho * rates.sum() / mean_size
    return SizedSimulation(
        rates=rates,
        policy=make_policy(policy),
        arrivals=PoissonArrivals(np.full(m, jobs_per_round / m)),
        service=GeometricService(rates),
        sizes=GeometricSize(mean_size),
        rounds=rounds,
        seed=seed,
        backend=backend,
        warmup=warmup,
        probes=probes,
    ).run()


def assert_summaries_equal(a, b):
    """Two probe dicts report identical summaries (NaN-aware, exact)."""
    assert a.keys() == b.keys()
    for label in a:
        sa, sb = a[label].summary(), b[label].summary()
        assert sa.keys() == sb.keys(), label
        for key in sa:
            va, vb = sa[key], sb[key]
            if math.isnan(va) or math.isnan(vb):
                assert math.isnan(va) and math.isnan(vb), (label, key)
            else:
                assert va == vb, (label, key, va, vb)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_PROBES) <= set(available_probes())

    def test_descriptions_cover_all(self):
        descriptions = probe_descriptions()
        assert set(descriptions) == set(available_probes())
        assert all(descriptions.values())

    def test_unknown_probe_error_lists_known(self):
        with pytest.raises(ValueError, match="known probes"):
            make_probe("frobnicator")

    def test_make_probe_passes_instances_through(self):
        probe = make_probe("herding")
        assert make_probe(probe) is probe

    def test_spec_label_and_build(self):
        spec = ProbeSpec.of("windowed_mean", window=50)
        assert spec.label == "windowed_mean[window=50]"
        assert spec.build().window == 50
        assert ProbeSpec.of("herding").label == "herding"

    def test_spec_of_probe_instance_reduces_to_name_and_kwargs(self):
        spec = ProbeSpec.of(make_probe("windowed_mean", window=25))
        assert spec == ProbeSpec.of("windowed_mean", window=25)
        assert spec.label == "windowed_mean[window=25]"

    def test_probe_instance_in_config_round_trips(self, tmp_path):
        """A probe instance in probes= yields clean labels and valid JSON."""
        result = run_unsized(
            "jsq", "fast", rounds=60,
            probes=(make_probe("windowed_mean", window=30),),
        )
        assert "windowed_mean[window=30]" in result.probes
        loaded = repro.load_result(
            repro.save_result(result, tmp_path / "r.json")
        )
        assert loaded.config.probes == result.config.probes

    def test_spec_of_rejects_other_types(self):
        with pytest.raises(TypeError, match="registry name"):
            ProbeSpec.of(42)

    def test_spec_normalizes_case(self):
        assert ProbeSpec.of("HERDING") == ProbeSpec.of("herding")
        # ... so case variants cannot dodge the duplicate / default guards.
        with pytest.raises(ValueError, match="unique"):
            Experiment(
                policies="jsq", systems=SystemSpec(8, 2), loads=0.8,
                metrics=["Herding", "herding"],
            )
        with pytest.raises(ValueError, match="default collector"):
            Experiment(
                policies="jsq", systems=SystemSpec(8, 2), loads=0.8,
                metrics=["RESPONSES"],
            )

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = ProbeSpec.of("windowed_mean", window=50)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, ProbeSpec.of("windowed_mean", window=50)}) == 1

    def test_probe_binds_once(self):
        ctx = ProbeContext(
            num_servers=2, num_dispatchers=1, rates=np.ones(2), rounds=10
        )
        probe = make_probe("server_stats")
        probe.bind(ctx)
        with pytest.raises(RuntimeError, match="already bound"):
            probe.bind(ctx)

    def test_probe_set_rejects_duplicate_labels(self):
        ctx = ProbeContext(
            num_servers=2, num_dispatchers=1, rates=np.ones(2), rounds=10
        )
        with pytest.raises(ValueError, match="duplicate"):
            build_probe_set(ctx, ("herding", "herding"))


class TestDefaultSet:
    def test_default_probes_present(self):
        result = run_unsized("jsq", "reference", rounds=60, probes=())
        assert list(result.probes) == list(DEFAULT_PROBE_LABELS)
        assert result.probes["responses"].histogram is result.histogram
        assert result.probes["queue_series"].series is result.queue_series

    def test_track_queue_series_off_drops_probe(self):
        rates = _rates(4)
        result = Simulation(
            rates=rates,
            policy=make_policy("jsq"),
            arrivals=PoissonArrivals(np.full(2, 0.4 * rates.sum() / 2)),
            service=GeometricService(rates),
            config=SimulationConfig(
                rounds=50, track_queue_series=False, backend="fast"
            ),
        ).run()
        assert list(result.probes) == ["responses"]
        assert result.queue_series is None

    def test_default_metrics_keys_unchanged(self):
        from repro.experiments.results import metrics_from_result

        result = run_unsized("jsq", "fast", rounds=60, probes=())
        assert set(metrics_from_result(result)) == LEGACY_METRIC_KEYS

    def test_extra_probes_add_namespaced_keys_only(self):
        from repro.experiments.results import metrics_from_result

        result = run_unsized("jsq", "fast", rounds=60)
        metrics = metrics_from_result(result)
        extras = {k for k in metrics if "." in k}
        assert set(metrics) - extras == LEGACY_METRIC_KEYS
        assert "herding.max_spike" in extras
        assert "windowed_mean[window=100].drift" in extras


class TestKernelParity:
    """Every built-in probe agrees across reference/fast on both engines."""

    @pytest.mark.parametrize("policy", ["jsq", "sed", "rr", "wrr"])
    def test_unsized_parity(self, policy):
        ref = run_unsized(policy, "reference")
        fast = run_unsized(policy, "fast")
        assert_summaries_equal(ref.probes, fast.probes)

    @pytest.mark.parametrize("policy", ["jsq", "sed", "rr", "wrr"])
    def test_sized_parity(self, policy):
        ref = run_sized(policy, "reference")
        fast = run_sized(policy, "fast")
        assert_summaries_equal(ref.probes, fast.probes)

    @pytest.mark.parametrize("policy", ["scd", "lsq", "jiq"])
    def test_fallback_policies_parity(self, policy):
        ref = run_unsized(policy, "reference", rounds=300)
        fast = run_unsized(policy, "fast", rounds=300)
        assert_summaries_equal(ref.probes, fast.probes)

    def test_unsized_parity_with_warmup(self):
        ref = run_unsized("jsq", "reference", warmup=150)
        fast = run_unsized("jsq", "fast", warmup=150)
        assert_summaries_equal(ref.probes, fast.probes)

    @settings(deadline=None)
    @given(
        policy=st.sampled_from(["jsq", "sed", "rr"]),
        n=st.integers(2, 12),
        m=st.integers(1, 5),
        rho=st.floats(0.3, 1.05),
        rounds=st.integers(1, 300),
        warmup_fraction=st.floats(0.0, 0.9),
        seed=st.integers(0, 2**16),
        sized=st.booleans(),
    )
    def test_parity_property(
        self, policy, n, m, rho, rounds, warmup_fraction, seed, sized
    ):
        warmup = int(warmup_fraction * rounds)
        runner = run_sized if sized else run_unsized
        ref = runner(
            policy, "reference", n=n, m=m, rho=rho, rounds=rounds,
            warmup=warmup, seed=seed,
        )
        fast = runner(
            policy, "fast", n=n, m=m, rho=rho, rounds=rounds,
            warmup=warmup, seed=seed,
        )
        assert_summaries_equal(ref.probes, fast.probes)


class TestStateRoundTrip:
    def _probe_dicts(self):
        unsized = run_unsized("jsq", "fast").probes
        sized = run_sized("jsq", "fast").probes
        return {**{f"u:{k}": v for k, v in unsized.items()},
                **{f"s:{k}": v for k, v in sized.items()}}

    def test_state_dict_round_trips_every_builtin(self):
        for label, probe in self._probe_dicts().items():
            payload = probe.state_dict()
            assert payload["name"] in available_probes(), label
            restored = probe_from_state(payload)
            sa, sb = probe.summary(), restored.summary()
            assert sa.keys() == sb.keys(), label
            for key in sa:
                if math.isnan(sa[key]):
                    assert math.isnan(sb[key]), (label, key)
                else:
                    assert sa[key] == sb[key], (label, key)

    def test_state_dict_is_json_serializable(self):
        import json

        for label, probe in self._probe_dicts().items():
            round_tripped = json.loads(json.dumps(probe.state_dict()))
            restored = probe_from_state(round_tripped)
            assert restored.summary().keys() == probe.summary().keys(), label

    def test_merge_accumulates_two_runs(self):
        a = run_unsized("jsq", "fast", seed=1).probes
        b = run_unsized("jsq", "fast", seed=2).probes
        for label in a:
            merged = probe_from_state(a[label].state_dict())
            merged.merge(probe_from_state(b[label].state_dict()))
            if label == "responses":
                assert (
                    merged.histogram.total
                    == a[label].histogram.total + b[label].histogram.total
                )
            elif label == "queue_series":
                np.testing.assert_array_equal(
                    merged.series.values,
                    a[label].series.values + b[label].series.values,
                )
            else:
                expected = (
                    a[label].summary()["rounds"] + b[label].summary()["rounds"]
                    if "rounds" in a[label].summary()
                    else None
                )
                if expected is not None:
                    assert merged.summary()["rounds"] == expected

    def test_merge_rejects_type_mismatch(self):
        probes = run_unsized("jsq", "fast").probes
        with pytest.raises(TypeError):
            probes["responses"].merge(probes["queue_series"])

    def test_windowed_merge_rejects_window_mismatch(self):
        a = make_probe("windowed_mean", window=10)
        b = make_probe("windowed_mean", window=20)
        with pytest.raises(ValueError, match="window"):
            a.merge(b)

    def test_server_stats_merge_rejects_rate_mismatch(self):
        def bound(rates):
            probe = make_probe("server_stats")
            probe.bind(
                ProbeContext(
                    num_servers=2, num_dispatchers=1,
                    rates=np.asarray(rates, dtype=np.float64), rounds=10,
                )
            )
            return probe

        a, b = bound([1.0, 8.0]), bound([4.0, 4.0])
        with pytest.raises(ValueError, match="identical server rates"):
            a.merge(b)


class TestBuiltinSemantics:
    def test_server_stats_matches_result_accounting(self):
        result = run_unsized("jsq", "reference")
        probe = result.probes["server_stats"]
        np.testing.assert_array_equal(probe._done, result.server_departed)
        np.testing.assert_array_equal(probe._received, result.server_received)
        np.testing.assert_allclose(
            probe.utilization(),
            result.utilization(_rates(8)),
        )
        distribution = probe.queue_length_distribution()
        assert distribution.sum() == pytest.approx(1.0)

    def test_server_response_stats_matches_histogram(self):
        result = run_unsized("jsq", "fast", warmup=100)
        probe = result.probes["server_response_stats"]
        assert probe.response_counts().sum() == result.histogram.total
        assert (
            probe.max_response_times().max()
            == result.histogram.max_response_time
        )
        summary = probe.summary()
        assert summary["responses"] == result.histogram.total
        assert summary["mean_response"] == pytest.approx(
            result.mean_response_time
        )
        assert summary["server_mean_min"] <= summary["server_mean_max"]
        # Per-server means reconcile with the pooled mean.
        counts = probe.response_counts()
        means = probe.mean_response_times()
        pooled = np.nansum(means * counts) / counts.sum()
        assert pooled == pytest.approx(result.mean_response_time)

    def test_server_response_stats_partition_merge_concatenates(self):
        from repro.sim.probes import ProbeContext, ServerResponseStatsProbe

        def bound(n):
            probe = ServerResponseStatsProbe()
            probe.bind(ProbeContext(
                num_servers=n, num_dispatchers=1, rates=np.ones(n),
                rounds=10, warmup=0, sized=False))
            return probe

        left, right = bound(2), bound(1)
        left.observe_responses(
            np.array([3, 4]), np.array([2, 5]), np.array([1, 2]),
            np.array([0, 1]))
        right.observe_responses(
            np.array([6]), np.array([7]), np.array([3]), np.array([0]))
        left.merge_partition(right)
        np.testing.assert_array_equal(left.response_counts(), [1, 2, 3])
        np.testing.assert_array_equal(left.max_response_times(), [2, 5, 7])

    def test_server_response_stats_merge_rejects_size_mismatch(self):
        from repro.sim.probes import ProbeContext, ServerResponseStatsProbe

        a, b = ServerResponseStatsProbe(), ServerResponseStatsProbe()
        for probe, n in ((a, 2), (b, 3)):
            probe.bind(ProbeContext(
                num_servers=n, num_dispatchers=1, rates=np.ones(n),
                rounds=10, warmup=0, sized=False))
        with pytest.raises(ValueError, match="matching server counts"):
            a.merge(b)

    def test_dispatcher_stats_totals_match_arrivals(self):
        result = run_unsized("rr", "fast")
        probe = result.probes["dispatcher_stats"]
        assert probe.summary()["total_jobs"] == result.total_arrived
        assert probe.totals().sum() == result.total_arrived

    def test_windowed_mean_counts_match_histogram(self):
        result = run_unsized("jsq", "fast", warmup=100)
        probe = result.probes["windowed_mean[window=100]"]
        assert probe.summary()["completed"] == result.histogram.total
        means = probe.means()
        assert means.size == 4  # 400 rounds / window 100
        assert np.isnan(means[0])  # warmup covers the first window

    def test_windowed_mean_overall_matches_histogram_mean(self):
        result = run_unsized("jsq", "fast", probes=("windowed_mean",))
        probe = result.probes["windowed_mean"]
        assert probe.summary()["first_mean"] == pytest.approx(
            result.histogram.mean()
        )

    def test_herding_probe_matches_wrapper_probe(self):
        """Engine-fed herding equals the legacy policy-wrapper probe."""
        from repro.analysis.herding import HerdingProbe

        rates = _rates(8)
        lambdas = np.full(3, 0.85 * rates.sum() / 3)
        wrapper = HerdingProbe(make_policy("jsq"))
        Simulation(
            rates=rates,
            policy=wrapper,
            arrivals=PoissonArrivals(lambdas),
            service=GeometricService(rates),
            config=SimulationConfig(rounds=400, seed=0),
        ).run()
        stats = wrapper.finalize()

        result = run_unsized("jsq", "reference", probes=("herding",))
        summary = result.probes["herding"].summary()
        assert summary["rounds"] == stats.rounds_observed
        assert summary["max_spike"] == stats.max_spike
        assert summary["mean_spike"] == pytest.approx(stats.mean_spike)
        assert summary["mean_imbalance"] == pytest.approx(stats.mean_imbalance)

    def test_empty_fields_probe_with_hook_still_gets_blocks(self):
        @register_probe("test_round_total")
        class RoundTotal(Probe):
            description = "counts observed rounds without any fields (test)"
            fields = frozenset()

            def __init__(self):
                super().__init__()
                self.rounds = 0

            def observe_block(self, block):
                assert block.batch is None and block.queues is None
                self.rounds += block.length

            def summary(self):
                return {"rounds": float(self.rounds)}

            def merge(self, other):
                self.rounds += other.rounds

            def get_state(self):
                return {"rounds": self.rounds}

            def set_state(self, state):
                self.rounds = int(state.get("rounds", 0))

        try:
            result = run_unsized(
                "jsq", "fast", rounds=300, probes=("test_round_total",)
            )
            assert result.probes["test_round_total"].summary() == {"rounds": 300.0}
        finally:
            from repro.sim import probes as probes_module

            probes_module._REGISTRY._factories.pop("test_round_total", None)

    def test_server_stats_queue_histogram_caps_overflow(self):
        probe = make_probe("server_stats")
        probe.bind(
            ProbeContext(
                num_servers=2, num_dispatchers=1,
                rates=np.ones(2), rounds=4,
            )
        )
        cap = probe.QUEUE_HIST_CAP
        queues = np.array([[cap + 500, 1], [cap, 0]], dtype=np.int64)
        probe.observe_block(
            ProbeBlock(
                start_round=0, length=2,
                received=np.zeros((2, 2), dtype=np.int64),
                done=np.zeros((2, 2), dtype=np.int64),
                queues=queues,
            )
        )
        distribution = probe.queue_length_distribution()
        assert distribution.size == cap + 1  # bounded despite huge queues
        assert distribution[cap] == pytest.approx(0.5)  # both overflows pooled
        assert probe.summary()["max_queue"] == cap + 500  # max stays exact

    def test_queue_series_probe_wraps_result_series(self):
        result = run_unsized("jsq", "fast")
        probe = result.probes["queue_series"]
        assert probe.series is result.queue_series
        assert probe.summary()["mean"] == result.queue_series.mean()

    def test_result_probe_summaries_covers_every_probe(self):
        result = run_unsized("jsq", "fast")
        summaries = result.probe_summaries()
        assert summaries.keys() == result.probes.keys()
        assert summaries["responses"]["total"] == result.histogram.total
        assert summaries["herding"]["rounds"] == 400.0

    def test_custom_probe_via_on_round(self):
        @register_probe("test_round_counter")
        class RoundCounter(Probe):
            description = "counts rounds with any arrival (test only)"

            def __init__(self):
                super().__init__()
                self.active_rounds = 0

            def on_round(self, t, batch, received, done, queues):
                if batch.sum() > 0:
                    self.active_rounds += 1

            def summary(self):
                return {"active_rounds": float(self.active_rounds)}

            def merge(self, other):
                self.active_rounds += other.active_rounds

            def get_state(self):
                return {"active_rounds": self.active_rounds}

            def set_state(self, state):
                self.active_rounds = int(state.get("active_rounds", 0))

        try:
            ref = run_unsized("jsq", "reference", probes=("test_round_counter",))
            fast = run_unsized("jsq", "fast", probes=("test_round_counter",))
            counted = ref.probes["test_round_counter"].summary()["active_rounds"]
            assert 0 < counted <= 400
            assert fast.probes["test_round_counter"].summary() == {
                "active_rounds": counted
            }
        finally:
            from repro.sim import probes as probes_module

            probes_module._REGISTRY._factories.pop("test_round_counter", None)


class TestSizedWarmup:
    """Satellite: the sized engine now supports warmup on both backends."""

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_warmup_discards_early_completions(self, backend):
        full = run_sized("jsq", backend, warmup=0, probes=())
        gated = run_sized("jsq", backend, warmup=200, probes=())
        assert gated.histogram.total < full.histogram.total
        # Queue accounting is unaffected by the warmup gate.
        assert gated.total_units_arrived == full.total_units_arrived
        assert gated.total_units_departed == full.total_units_departed
        np.testing.assert_array_equal(
            gated.queue_series.values, full.queue_series.values
        )

    def test_warmup_identical_across_backends(self):
        ref = run_sized("jsq", "reference", warmup=137, probes=())
        fast = run_sized("jsq", "fast", warmup=137, probes=())
        np.testing.assert_array_equal(ref.histogram.counts, fast.histogram.counts)
        assert ref.histogram.total == fast.histogram.total

    def test_warmup_validation(self):
        rates = _rates(4)
        with pytest.raises(ValueError, match="warmup"):
            SizedSimulation(
                rates=rates,
                policy=make_policy("jsq"),
                arrivals=PoissonArrivals(np.full(2, 1.0)),
                service=GeometricService(rates),
                sizes=GeometricSize(2.0),
                rounds=10,
                warmup=10,
            )

    def test_sized_cell_accepts_warmup(self):
        record = (
            Experiment(
                policies="jsq",
                systems=SystemSpec(8, 2),
                loads=0.8,
                workloads=WorkloadSpec.sized(GeometricSize(2.0)),
                rounds=120,
                warmup=40,
            )
            .run()
            .records[0]
        )
        assert record.metrics["departed"] > 0


class TestExperimentPlumbing:
    def test_grid_records_carry_probe_metrics(self):
        result = Experiment(
            policies=["jsq", "rr"],
            systems=SystemSpec(8, 2),
            loads=0.8,
            rounds=120,
            metrics=["herding", "server_stats"],
            backend="fast",
        ).run()
        for record in result:
            assert "herding.max_spike" in record.metrics
            assert "server_stats.utilization_mean" in record.metrics

    def test_unknown_metric_fails_at_construction(self):
        with pytest.raises(ValueError, match="known probes"):
            Experiment(
                policies="jsq",
                systems=SystemSpec(8, 2),
                loads=0.8,
                metrics=["frobnicator"],
            )

    def test_duplicate_metric_labels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Experiment(
                policies="jsq",
                systems=SystemSpec(8, 2),
                loads=0.8,
                metrics=["herding", "herding"],
            )

    def test_default_collector_names_rejected_in_metrics(self):
        with pytest.raises(ValueError, match="default collector"):
            Experiment(
                policies="jsq",
                systems=SystemSpec(8, 2),
                loads=0.8,
                metrics=["responses"],
            )

    def test_scalar_metric_axis_normalized(self):
        experiment = Experiment(
            policies="jsq", systems=SystemSpec(8, 2), loads=0.8,
            metrics="herding",
        )
        assert experiment.metrics == (ProbeSpec.of("herding"),)

    def test_serial_and_process_records_identical(self):
        experiment = Experiment(
            policies=["jsq"],
            systems=SystemSpec(6, 2),
            loads=[0.7, 0.9],
            rounds=80,
            metrics=["herding"],
        )
        serial = experiment.run(executor="serial", keep_results=False)
        pooled = experiment.run(executor="process", workers=2, keep_results=False)
        assert serial.records == pooled.records

    def test_legacy_runner_metrics_passthrough(self):
        result = repro.run_simulation(
            "jsq",
            SystemSpec(8, 2),
            rho=0.8,
            config=repro.ExperimentConfig(rounds=100, metrics=("herding",)),
        )
        assert result.probes["herding"].summary()["rounds"] > 0


class TestPersistence:
    def test_result_round_trip_with_probes(self, tmp_path):
        result = run_unsized("jsq", "fast", rounds=120)
        path = repro.save_result(result, tmp_path / "result.json")
        loaded = repro.load_result(path)
        assert loaded.config.probes == result.config.probes
        assert_summaries_equal(result.probes, loaded.probes)
        np.testing.assert_array_equal(
            loaded.histogram.counts, result.histogram.counts
        )

    def test_default_result_payload_has_no_probe_keys(self):
        from repro.analysis.persistence import result_to_dict

        result = run_unsized("jsq", "reference", rounds=60, probes=())
        payload = result_to_dict(result)
        assert "probes" not in payload
        assert "probes" not in payload["config"]

    def test_legacy_payload_loads_as_default_set(self):
        """A pre-probe JSON payload (no probe keys) still loads."""
        import json

        from repro.analysis.persistence import result_from_dict, result_to_dict

        result = run_unsized("jsq", "reference", rounds=60, probes=())
        payload = json.loads(json.dumps(result_to_dict(result)))
        loaded = result_from_dict(payload)
        assert list(loaded.probes) == list(DEFAULT_PROBE_LABELS)
        assert isinstance(loaded.probes["responses"], ResponseTimeProbe)
        assert isinstance(loaded.probes["queue_series"], QueueSeriesProbe)
        assert loaded.probes["responses"].histogram is loaded.histogram

    def test_experiment_round_trip_preserves_metrics(self, tmp_path):
        result = Experiment(
            policies="jsq",
            systems=SystemSpec(8, 2),
            loads=0.8,
            rounds=100,
            metrics=[ProbeSpec.of("windowed_mean", window=25), "herding"],
        ).run(keep_results=False)
        path = result.save(tmp_path / "grid.json")
        loaded = repro.load_experiment(path)
        assert loaded.experiment.metrics == result.experiment.metrics
        assert loaded.records == result.records
        assert "herding.max_spike" in loaded.records[0].metrics

    def test_experiment_descriptor_omits_empty_metrics(self):
        experiment = Experiment(
            policies="jsq", systems=SystemSpec(8, 2), loads=0.8
        )
        assert "metrics" not in experiment.describe()
