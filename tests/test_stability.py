"""Stability tests (Appendix D): SCD is stable; oblivious policies are not.

The paper proves SCD's strong stability for any admissible load and notes
(footnote 1) that heterogeneity-oblivious randomized policies can be
unstable in heterogeneous systems.  These are finite-run empirical checks
on deliberately stark systems.
"""

import numpy as np
import pytest

from repro.analysis.stability import assess_stability
from repro.policies.base import make_policy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.service import GeometricService


def run(policy_name, rates, rho, rounds=3000, m=4, seed=0, **policy_kwargs):
    rates = np.asarray(rates, dtype=np.float64)
    lambdas = np.full(m, rho * rates.sum() / m)
    sim = Simulation(
        rates=rates,
        policy=make_policy(policy_name, **policy_kwargs),
        arrivals=PoissonArrivals(lambdas),
        service=GeometricService(rates),
        config=SimulationConfig(rounds=rounds, seed=seed),
    )
    return sim.run()


# A starkly heterogeneous system: one server holds ~83% of the capacity.
STARK_RATES = np.array([50.0] + [1.0] * 10)


class TestSCDStability:
    @pytest.mark.parametrize("rho", [0.5, 0.9, 0.95])
    def test_scd_stable_at_admissible_loads(self, rho):
        result = run("scd", STARK_RATES, rho)
        verdict = assess_stability(result, STARK_RATES.sum())
        assert verdict.stable, str(verdict)

    def test_scd_stable_with_any_bounded_estimator(self):
        """Appendix D: stability holds for any estimator in [1, inf)."""
        for estimator in ["scaled", "oracle", 30.0]:
            result = run("scd", STARK_RATES, 0.9, estimator=estimator)
            verdict = assess_stability(result, STARK_RATES.sum())
            assert verdict.stable, f"{estimator}: {verdict}"

    def test_sed_stable_here_too(self):
        # SED herds but remains stable (it is work-conserving toward the
        # fast server); included to show the check is not trigger-happy.
        result = run("sed", STARK_RATES, 0.9)
        assert assess_stability(result, STARK_RATES.sum()).stable


class TestObliviousInstability:
    def test_uniform_random_unstable_under_heterogeneity(self):
        """Uniform random gives each server 1/n of the jobs; the slow
        servers' share exceeds their capacity at rho = 0.95."""
        result = run("random", STARK_RATES, 0.95, rounds=4000)
        verdict = assess_stability(result, STARK_RATES.sum())
        assert not verdict.stable, str(verdict)

    def test_jsq2_unstable_under_stark_heterogeneity(self):
        """JSQ(2)'s uniform sampling caps the fast server's arrival share
        near 2/n + local corrections -- far below its 83% capacity share,
        so the slow servers drown (the paper's instability remark)."""
        result = run("jsq(2)", STARK_RATES, 0.95, rounds=4000)
        verdict = assess_stability(result, STARK_RATES.sum())
        assert not verdict.stable, str(verdict)

    def test_wr_stable_where_uniform_is_not(self):
        """Weighted random matches shares to capacity: stable (if slow)."""
        result = run("wr", STARK_RATES, 0.9, rounds=4000)
        assert assess_stability(result, STARK_RATES.sum()).stable

    def test_overload_is_unstable_for_everyone(self):
        result = run("scd", STARK_RATES, 1.3, rounds=2000)
        verdict = assess_stability(result, STARK_RATES.sum())
        assert not verdict.stable


class TestVerdictAPI:
    def test_requires_queue_series(self):
        rates = np.ones(2)
        sim = Simulation(
            rates=rates,
            policy=make_policy("jsq"),
            arrivals=PoissonArrivals(np.ones(1)),
            service=GeometricService(rates),
            config=SimulationConfig(rounds=50, track_queue_series=False),
        )
        with pytest.raises(ValueError):
            assess_stability(sim.run(), rates.sum())

    def test_str_rendering(self):
        result = run("scd", STARK_RATES, 0.5, rounds=500)
        verdict = assess_stability(result, STARK_RATES.sum())
        assert "STABLE" in str(verdict)
