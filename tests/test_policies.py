"""Per-policy unit tests: framework, baselines, and their defining behaviors."""

import numpy as np
import pytest

from repro.policies.base import (
    Policy,
    SystemContext,
    available_policies,
    make_policy,
)
from repro.policies.greedy import greedy_certificate_ok


def bind(policy, rates, m=2, seed=0):
    policy.bind(
        SystemContext(
            rates=np.asarray(rates, dtype=np.float64),
            num_dispatchers=m,
            rng=np.random.default_rng(seed),
        )
    )
    return policy


class TestRegistry:
    EXPECTED = {
        "scd",
        "scd-alg1",
        "twf",
        "jsq",
        "sed",
        "jsq(2)",
        "jsq(d)",
        "hjsq(2)",
        "hjsq(d)",
        "jiq",
        "hjiq",
        "lsq",
        "hlsq",
        "wr",
        "random",
    }

    def test_all_paper_policies_registered(self):
        assert self.EXPECTED <= set(available_policies())

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope")

    def test_policy_passthrough(self):
        p = make_policy("jsq")
        assert make_policy(p) is p

    def test_parameterized_construction(self):
        p = make_policy("jsq(d)", d=4)
        assert p.name == "jsq(4)"
        assert p.d == 4

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_every_policy_dispatches_correct_totals(self, name):
        policy = bind(make_policy(name), rates=[1.0, 3.0, 5.0, 2.0], m=3)
        queues = np.array([4, 0, 2, 7], dtype=np.int64)
        policy.begin_round(0, queues)
        for d in range(3):
            counts = policy.dispatch(d, 11)
            assert counts.sum() == 11
            assert np.all(counts >= 0)
            assert counts.shape == (4,)
        policy.end_round(0, queues)


class TestSystemContext:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            SystemContext(
                rates=np.array([1.0, -1.0]),
                num_dispatchers=1,
                rng=np.random.default_rng(),
            )

    def test_rejects_zero_dispatchers(self):
        with pytest.raises(ValueError):
            SystemContext(
                rates=np.ones(2), num_dispatchers=0, rng=np.random.default_rng()
            )

    def test_num_servers_derived(self):
        ctx = SystemContext(
            rates=np.ones(7), num_dispatchers=2, rng=np.random.default_rng()
        )
        assert ctx.num_servers == 7


class TestJSQAndSED:
    def test_jsq_targets_shortest_queues(self):
        policy = bind(make_policy("jsq"), rates=[1.0, 1.0, 1.0])
        policy.begin_round(0, np.array([9, 0, 9]))
        counts = policy.dispatch(0, 3)
        np.testing.assert_array_equal(counts, [0, 3, 0])

    def test_jsq_ignores_rates(self):
        # JSQ ranks by raw queue length; a fast long queue loses to a slow
        # short one -- the heterogeneity blindness the paper criticizes.
        policy = bind(make_policy("jsq"), rates=[100.0, 1.0])
        policy.begin_round(0, np.array([5, 0]))
        counts = policy.dispatch(0, 1)
        np.testing.assert_array_equal(counts, [0, 1])

    def test_sed_uses_expected_delay(self):
        policy = bind(make_policy("sed"), rates=[100.0, 1.0])
        policy.begin_round(0, np.array([5, 0]))
        counts = policy.dispatch(0, 1)
        # (5+1)/100 = 0.06 < (0+1)/1 = 1: SED prefers the fast busy server.
        np.testing.assert_array_equal(counts, [1, 0])

    def test_sed_batch_is_greedy_certified(self):
        rates = np.array([1.0, 4.0, 2.0, 8.0])
        policy = bind(make_policy("sed"), rates=rates)
        queues = np.array([3, 1, 0, 6])
        policy.begin_round(0, queues)
        counts = policy.dispatch(0, 25)
        assert greedy_certificate_ok(queues, rates, counts)

    def test_dispatchers_herd_on_same_snapshot(self):
        """The defining pathology: identical info => identical decisions."""
        policy = bind(make_policy("jsq"), rates=np.ones(4), m=3)
        policy.begin_round(0, np.array([0, 8, 8, 8]))
        batches = [policy.dispatch(d, 4) for d in range(3)]
        for counts in batches:
            np.testing.assert_array_equal(counts, batches[0])
        # All 12 jobs land on the single short queue (and its overflow).
        total = sum(batches)
        assert total[0] >= 6


class TestPowerOfD:
    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            make_policy("jsq(d)", d=0)

    def test_d1_is_random(self):
        policy = bind(make_policy("jsq(d)", d=1), rates=np.ones(10))
        policy.begin_round(0, np.zeros(10, dtype=np.int64))
        counts = policy.dispatch(0, 1000)
        # Uniform sampling: every server should get a share.
        assert counts.sum() == 1000
        assert np.all(counts > 0)

    def test_prefers_shorter_of_two_samples(self):
        policy = bind(make_policy("jsq(2)"), rates=np.ones(2))
        policy.begin_round(0, np.array([0, 50]))
        counts = policy.dispatch(0, 200)
        # Sample pairs: (0,0) -> 0, (0,1)/(1,0) -> 0, (1,1) -> 1.
        # So ~3/4 of jobs go to server 0 at minimum (more once local
        # increments are counted, which never exceed 50 here).
        assert counts[0] > counts[1]

    def test_hjsq_samples_proportional_to_rates(self):
        rates = np.array([100.0, 1.0, 1.0, 1.0])
        policy = bind(make_policy("hjsq(2)"), rates=rates)
        policy.begin_round(0, np.zeros(4, dtype=np.int64))
        counts = policy.dispatch(0, 2000)
        # Server 0 holds ~97% of the sampling weight and has the lowest
        # load rank; nearly everything should land there.
        assert counts[0] > 1800

    def test_local_increments_spread_within_round(self):
        # With only 2 servers and many jobs, within-round feedback must
        # spread jobs rather than dump all on the initially-shorter one.
        policy = bind(make_policy("jsq(2)"), rates=np.ones(2))
        policy.begin_round(0, np.array([0, 1]))
        counts = policy.dispatch(0, 100)
        assert counts[1] > 20  # would be ~0 without local increments


class TestJIQ:
    def test_prefers_idle_servers(self):
        policy = bind(make_policy("jiq"), rates=np.ones(4))
        policy.begin_round(0, np.array([0, 3, 0, 5]))
        counts = policy.dispatch(0, 2)
        np.testing.assert_array_equal(counts[[1, 3]], [0, 0])
        assert counts[[0, 2]].sum() == 2

    def test_idle_servers_used_at_most_once_per_dispatcher(self):
        policy = bind(make_policy("jiq"), rates=np.ones(4))
        policy.begin_round(0, np.array([0, 0, 9, 9]))
        counts = policy.dispatch(0, 2)
        np.testing.assert_array_equal(np.sort(counts[[0, 1]]), [1, 1])

    def test_falls_back_to_random_when_no_idle(self):
        policy = bind(make_policy("jiq"), rates=np.ones(3))
        policy.begin_round(0, np.array([1, 1, 1]))
        counts = policy.dispatch(0, 300)
        assert counts.sum() == 300
        assert np.all(counts > 50)  # roughly uniform

    def test_hjiq_weighted_fallback(self):
        rates = np.array([50.0, 1.0])
        policy = bind(make_policy("hjiq"), rates=rates)
        policy.begin_round(0, np.array([2, 2]))
        counts = policy.dispatch(0, 500)
        assert counts[0] > 400  # ~98% weight on the fast server

    def test_dispatchers_herd_on_the_same_idle_set(self):
        policy = bind(make_policy("jiq"), rates=np.ones(3), m=4)
        policy.begin_round(0, np.array([0, 9, 9]))
        totals = sum(policy.dispatch(d, 1) for d in range(4))
        # All four dispatchers independently target the lone idle server.
        assert totals[0] == 4


class TestLSQ:
    def test_rejects_bad_sampling_budget(self):
        with pytest.raises(ValueError):
            make_policy("lsq", samples_per_job=0)

    def test_local_views_start_optimistic_and_learn(self):
        policy = bind(make_policy("lsq"), rates=np.ones(3), m=1)
        queues = np.array([10, 10, 10])
        policy.begin_round(0, queues)
        counts = policy.dispatch(0, 3)
        # Zero-initialized views spread the batch evenly.
        np.testing.assert_array_equal(counts, [1, 1, 1])
        policy.end_round(0, queues)
        # After enough samples the view reflects reality.
        for t in range(1, 20):
            policy.begin_round(t, queues)
            policy.dispatch(0, 3)
            policy.end_round(t, queues)
        assert policy._local[0].max() >= 10

    def test_views_are_per_dispatcher(self):
        policy = bind(make_policy("lsq"), rates=np.ones(4), m=2)
        policy.begin_round(0, np.zeros(4, dtype=np.int64))
        policy.dispatch(0, 8)
        # Dispatcher 0's increments must not leak into dispatcher 1's view.
        assert policy._local[0].sum() == 8
        assert policy._local[1].sum() == 0

    def test_hlsq_ranks_by_expected_delay(self):
        rates = np.array([10.0, 1.0])
        policy = bind(make_policy("hlsq"), rates=rates, m=1)
        queues = np.array([4, 4])
        # Teach the dispatcher the true queue lengths first.
        for t in range(30):
            policy.begin_round(t, queues)
            policy.end_round(t, queues)
        policy.begin_round(99, queues)
        counts = policy.dispatch(0, 5)
        assert counts[0] == 5  # (4+j)/10 < (4+1)/1 for all j <= 5


class TestRandomPolicies:
    def test_wr_matches_rate_proportions(self):
        rates = np.array([8.0, 1.0, 1.0])
        policy = bind(make_policy("wr"), rates=rates)
        counts = policy.dispatch(0, 10_000)
        np.testing.assert_allclose(counts / 10_000, rates / rates.sum(), atol=0.02)

    def test_uniform_random_ignores_rates(self):
        rates = np.array([100.0, 1.0])
        policy = bind(make_policy("random"), rates=rates)
        counts = policy.dispatch(0, 10_000)
        np.testing.assert_allclose(counts / 10_000, [0.5, 0.5], atol=0.02)

    def test_wr_ignores_queues(self):
        policy = bind(make_policy("wr"), rates=np.array([1.0, 1.0]))
        policy.begin_round(0, np.array([1_000_000, 0]))
        counts = policy.dispatch(0, 1000)
        assert abs(counts[0] - counts[1]) < 200  # still ~50/50


class TestPolicyABC:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            Policy()

    def test_rates_before_bind_raises(self):
        class Dummy(Policy):
            name = "dummy"

            def dispatch(self, dispatcher, num_jobs):  # pragma: no cover
                return np.zeros(1, dtype=np.int64)

        with pytest.raises(AssertionError):
            _ = Dummy().rates
