"""Tests for replicated experiments and paired comparisons."""

import numpy as np
import pytest

from repro.analysis.replication import (
    ReplicatedResult,
    paired_comparison,
    replicated_runs,
)
from repro.analysis.runner import ExperimentConfig
from repro.workloads.scenarios import SystemSpec

SYSTEM = SystemSpec(num_servers=15, num_dispatchers=3, profile="u1_10")
CONFIG = ExperimentConfig(rounds=300, base_seed=1)


class TestReplicatedResult:
    def test_statistics(self):
        result = ReplicatedResult("x", SYSTEM, 0.9, (2.0, 3.0, 4.0))
        assert result.mean == 3.0
        assert result.replications == 3
        assert result.std_error == pytest.approx(1.0 / np.sqrt(3))

    def test_ci_contains_mean_and_widens_with_level(self):
        result = ReplicatedResult("x", SYSTEM, 0.9, (2.0, 3.0, 4.0))
        lo95, hi95 = result.confidence_interval(0.95)
        lo99, hi99 = result.confidence_interval(0.99)
        assert lo99 < lo95 < result.mean < hi95 < hi99

    def test_single_replication_degenerate_ci(self):
        result = ReplicatedResult("x", SYSTEM, 0.9, (2.5,))
        assert result.confidence_interval() == (2.5, 2.5)
        assert result.std_error == 0.0

    def test_ci_level_validation(self):
        result = ReplicatedResult("x", SYSTEM, 0.9, (2.0, 3.0))
        with pytest.raises(ValueError):
            result.confidence_interval(1.5)

    def test_str(self):
        result = ReplicatedResult("scd", SYSTEM, 0.9, (2.0, 3.0))
        assert "scd" in str(result) and "2 reps" in str(result)


class TestReplicatedRuns:
    def test_replication_count_and_variation(self):
        result = replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=3)
        assert result.replications == 3
        # Independent workloads: replication means differ.
        assert len(set(result.replication_means)) > 1

    def test_deterministic(self):
        a = replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=2)
        b = replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=2)
        assert a.replication_means == b.replication_means

    def test_validation(self):
        with pytest.raises(ValueError):
            replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=0)

    def test_policy_kwargs_forwarded(self):
        result = replicated_runs(
            "scd", SYSTEM, 0.9, CONFIG, replications=1, estimator="oracle"
        )
        assert result.replications == 1


class TestPairedComparison:
    def test_scd_significantly_beats_random(self):
        scd = replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=4)
        rnd = replicated_runs("random", SYSTEM, 0.9, CONFIG, replications=4)
        outcome = paired_comparison(scd, rnd)
        assert outcome["mean_improvement"] > 0
        assert outcome["significant"]

    def test_self_comparison_not_significant(self):
        a = replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=4)
        with pytest.raises(ValueError):
            # identical tuples make ttest degenerate; guard via design check
            paired_comparison(
                a,
                ReplicatedResult("scd", SYSTEM, 0.8, a.replication_means),
            )

    def test_mismatched_designs_rejected(self):
        a = replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=2)
        b = replicated_runs("jsq", SYSTEM, 0.9, CONFIG, replications=3)
        with pytest.raises(ValueError):
            paired_comparison(a, b)

    def test_needs_two_replications(self):
        a = replicated_runs("scd", SYSTEM, 0.9, CONFIG, replications=1)
        b = replicated_runs("jsq", SYSTEM, 0.9, CONFIG, replications=1)
        with pytest.raises(ValueError):
            paired_comparison(a, b)
