"""Tests for the Appendix D strong-stability bound."""

import numpy as np
import pytest
from _helpers import assert_ensemble_close

from repro.analysis.runner import ExperimentConfig, run_simulation
from repro.core.theory import (
    geometric_second_moment,
    poisson_second_moment,
    strong_stability_bound,
)
from repro.workloads.scenarios import SystemSpec


class TestSecondMoments:
    def test_poisson_formula(self):
        # E[X^2] = Var + mean^2 = lam + lam^2.
        assert poisson_second_moment(3.0) == pytest.approx(12.0)
        np.testing.assert_allclose(
            poisson_second_moment(np.array([1.0, 2.0])), [2.0, 6.0]
        )

    def test_poisson_empirical(self):
        rng = np.random.default_rng(0)
        draws = rng.poisson(5.0, size=200_000).astype(float)
        assert_ensemble_close(
            np.mean(draws**2),
            poisson_second_moment(5.0),
            n=draws.size,
            label="Poisson second moment",
        )

    def test_geometric_formula(self):
        assert geometric_second_moment(1.0) == pytest.approx(3.0)

    def test_geometric_empirical(self):
        mu = 4.0
        rng = np.random.default_rng(1)
        draws = (rng.geometric(1.0 / (1.0 + mu), size=200_000) - 1).astype(float)
        assert_ensemble_close(
            np.mean(draws), mu, n=draws.size, label="geometric mean"
        )
        assert_ensemble_close(
            np.mean(draws**2),
            geometric_second_moment(mu),
            n=draws.size,
            label="geometric second moment",
        )

    def test_geometric_empirical_heterogeneous_rates(self):
        # The formula is per-server: a heterogeneous rate vector must
        # match element-wise, not just on the pooled average.
        mus = np.array([0.5, 1.0, 4.0, 32.0])
        rng = np.random.default_rng(2)
        for mu in mus:
            draws = (
                rng.geometric(1.0 / (1.0 + mu), size=400_000) - 1
            ).astype(float)
            assert_ensemble_close(
                np.mean(draws**2),
                geometric_second_moment(mu),
                n=draws.size,
                base=4.0,  # heavier tail at large mu needs more slack
                label=f"geometric second moment (mu={mu})",
            )
        np.testing.assert_allclose(
            geometric_second_moment(mus),
            np.array([geometric_second_moment(float(m)) for m in mus]),
        )

    def test_extreme_rate_spread_stays_finite(self):
        # 1e-6 .. 1e6 rate spread: formulas stay finite and positive.
        mus = np.array([1e-6, 1e-3, 1.0, 1e3, 1e6])
        second = geometric_second_moment(mus)
        assert np.all(np.isfinite(second)) and np.all(second > 0)
        assert np.all(second >= mus**2)  # E[X^2] >= (E[X])^2


class TestBound:
    def test_requires_admissibility(self):
        with pytest.raises(ValueError, match="not admissible"):
            strong_stability_bound(np.array([5.0]), np.array([4.0]))

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            strong_stability_bound(np.array([1.0]), np.array([0.0]))

    def test_bound_positive_and_monotone_in_load(self):
        rates = np.array([4.0, 2.0, 1.0])
        low = strong_stability_bound(np.array([1.0, 1.0]), rates)
        high = strong_stability_bound(np.array([3.0, 3.0]), rates)
        assert 0 < low.bound < high.bound  # tighter slack -> larger bound

    def test_constants_against_hand_computation(self):
        # One dispatcher (lambda=1), one server (mu=2).
        bound = strong_stability_bound(np.array([1.0]), np.array([2.0]))
        # sigma = 1 + 1 = 2; cross terms = 0; phi = 2 + 8 = 10.
        # C = 2 / 2 + 10 / 2 = 6.  D = 2 * (1 - 1) / (2*2) = 0.
        assert bound.C == pytest.approx(6.0)
        assert bound.D == pytest.approx(0.0)
        assert bound.epsilon == pytest.approx(1.0)
        assert bound.bound == pytest.approx(6.0 * 2.0 / 2.0)

    def test_custom_moments(self):
        # Deterministic arrivals (E[A^2] = lam^2) shrink C below Poisson's.
        lam = np.array([2.0])
        mu = np.array([5.0])
        poisson = strong_stability_bound(lam, mu)
        deterministic = strong_stability_bound(
            lam, mu, arrival_second_moments=lam**2
        )
        assert deterministic.bound < poisson.bound

    def test_str(self):
        bound = strong_stability_bound(np.array([1.0]), np.array([2.0]))
        assert "bound=" in str(bound)


class TestBoundCoversMeasurement:
    def test_measured_queue_below_guarantee(self):
        """The theorem: SCD's time-averaged total queue respects Eq. 37."""
        system = SystemSpec(num_servers=10, num_dispatchers=3, profile="u1_10")
        rho = 0.9
        result = run_simulation(
            "scd", system, rho, ExperimentConfig(rounds=2000, base_seed=4)
        )
        bound = strong_stability_bound(system.lambdas(rho), system.rates())
        measured = result.queue_series.mean()
        assert measured < bound.bound
        # The bound is loose by construction; sanity-check it's not vacuous
        # only because of an astronomically silly constant.
        assert np.isfinite(bound.bound)
