"""Server churn: capacity masks over the fleet, changing at block edges.

A :class:`ChurnSchedule` maps each 256-round block to a boolean
*capacity mask* (``True`` = server accepts work).  Masked servers keep
draining whatever they hold -- departures are a property of the service
process and the FIFO stores, untouched here -- but receive no new
dispatches; policies see their queues as unavailable.

The mechanism is :class:`ChurnPolicyAdapter`, a policy wrapper installed
by :func:`repro.scenarios.base.apply_scenario`:

* ``begin_round`` builds a masked queue view (unavailable servers show a
  huge sentinel length) and feeds *that* to the wrapped policy, so
  queue-aware policies (JSQ, SED, SCD...) never choose a masked server.
* ``dispatch`` / ``dispatch_round`` deterministically redirect whatever
  a queue-oblivious policy (rr, wrr, random...) still assigned to masked
  servers onto the least-loaded available server (lowest index on ties).

Because the adapter transforms the policy's *inputs and outputs* and
holds no engine hooks, it is bit-identical wherever the policy life
cycle runs -- the reference loop, the shared block driver, and the
sharded coordinator all drive it the same way -- and the existing
engine guards do the right thing automatically: overriding
``begin_round`` disables cross-round batching
(:func:`~repro.policies.base.supports_round_batching`) and the exact
type checks in :func:`repro.sim.compiled.compiled_round_kernel_for`
disable the whole-block compiled dispatch, both falling back to the
per-round path the adapter needs.  The adapter pickles with the
simulation, so checkpoints and federation adoption carry the mask state
for free, and it exposes :meth:`ChurnPolicyAdapter.capacity_mask` so
the fast kernels can stamp the block's mask onto the batch stores
(:meth:`repro.sim.batchstore.BatchQueueStore.set_capacity_mask`) as an
admission guard.
"""

from __future__ import annotations

import math

import numpy as np

from repro.policies.base import Policy
from repro.sim.blockdriver import BLOCK_ROUNDS

from .base import Scenario, register_scenario

__all__ = [
    "UNAVAILABLE_QUEUE",
    "ChurnSchedule",
    "PeriodicChurnSchedule",
    "ElasticChurnSchedule",
    "ChurnPolicyAdapter",
    "ChurnScenario",
    "ElasticScenario",
]

#: Queue length masked servers present to the wrapped policy: large
#: enough that no load-aware rule prefers them, small enough that int64
#: arithmetic (ratios against rates, additions of batch sizes) is safe.
UNAVAILABLE_QUEUE = 1 << 40


class ChurnSchedule:
    """Block-indexed capacity masks over a fixed fleet of ``n`` servers."""

    def __init__(self, num_servers: int) -> None:
        if num_servers < 1:
            raise ValueError("need at least one server")
        self.num_servers = int(num_servers)
        self._cached_block = -1
        self._cached_mask: np.ndarray | None = None

    def mask_for_block(self, block_index: int) -> np.ndarray:
        """The ``(n,)`` bool availability mask of block ``block_index``."""
        raise NotImplementedError

    def mask_for_round(self, round_index: int) -> np.ndarray:
        """The mask in force during ``round_index`` (block-aligned, cached)."""
        block = round_index // BLOCK_ROUNDS
        if block != self._cached_block:
            mask = np.asarray(self.mask_for_block(block), dtype=bool)
            if mask.shape != (self.num_servers,):
                raise ValueError(
                    f"churn mask has shape {mask.shape}, "
                    f"expected ({self.num_servers},)"
                )
            if not mask.any():
                raise ValueError(
                    f"churn schedule masks every server in block {block}; "
                    f"at least one must stay available"
                )
            self._cached_block = block
            self._cached_mask = mask
        return self._cached_mask


def _offline_count(num_servers: int, fraction: float) -> int:
    """Servers taken offline for a fraction, always leaving one up."""
    return min(num_servers - 1, int(round(fraction * num_servers)))


class PeriodicChurnSchedule(ChurnSchedule):
    """A square-wave fleet: full for part of each period, reduced after.

    Every ``period`` blocks, the first ``up`` blocks run the full fleet
    and the remaining blocks run with the ``down`` fraction of servers
    (the highest-indexed ones) offline.
    """

    def __init__(
        self,
        num_servers: int,
        down: float = 0.25,
        period: int = 8,
        duty: float = 0.5,
        offset: int = 0,
    ) -> None:
        super().__init__(num_servers)
        if not 0.0 < down < 1.0:
            raise ValueError("down must be a fraction in (0, 1)")
        if period < 2:
            raise ValueError("period must be >= 2 blocks")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be a fraction in (0, 1)")
        self.down = float(down)
        self.period = int(period)
        self.duty = float(duty)
        self.offset = int(offset)
        self._up_blocks = max(1, round(self.duty * self.period))
        self._offline = _offline_count(self.num_servers, self.down)

    def mask_for_block(self, block_index: int) -> np.ndarray:
        mask = np.ones(self.num_servers, dtype=bool)
        phase = (block_index + self.offset) % self.period
        if phase >= self._up_blocks and self._offline:
            mask[self.num_servers - self._offline :] = False
        return mask


class ElasticChurnSchedule(ChurnSchedule):
    """Capacity tracking a sinusoidal demand curve (autoscaling).

    At each block the offline count follows the *inverse* of the demand
    factor ``1 + amplitude * sin(...)`` evaluated at the block midpoint:
    all servers up at peak demand, up to ``reserve * n`` of the
    highest-indexed servers down at the trough.
    """

    def __init__(
        self,
        num_servers: int,
        amplitude: float = 0.4,
        period: float = 4096,
        reserve: float = 0.25,
        phase: float = 0.0,
    ) -> None:
        super().__init__(num_servers)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period < 1:
            raise ValueError("period must be >= 1 round")
        if not 0.0 < reserve < 1.0:
            raise ValueError("reserve must be a fraction in (0, 1)")
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.reserve = float(reserve)
        self.phase = float(phase)

    def mask_for_block(self, block_index: int) -> np.ndarray:
        midpoint = block_index * BLOCK_ROUNDS + BLOCK_ROUNDS / 2.0
        factor = 1.0 + self.amplitude * math.sin(
            (2.0 * math.pi / self.period) * (midpoint + self.phase)
        )
        if self.amplitude > 0.0:
            demand = (factor - (1.0 - self.amplitude)) / (2.0 * self.amplitude)
        else:
            demand = 1.0
        offline = min(
            self.num_servers - 1,
            int(round(self.reserve * self.num_servers * (1.0 - demand))),
        )
        mask = np.ones(self.num_servers, dtype=bool)
        if offline:
            mask[self.num_servers - offline :] = False
        return mask


class ChurnPolicyAdapter(Policy):
    """Drives a wrapped policy against churn-masked queue views.

    Stateless beyond the current round's mask (recomputed from the
    round index each ``begin_round``), so pickled checkpoints resume
    bit-identically: the schedule is a pure function of time.
    """

    def __init__(self, inner: Policy, schedule: ChurnSchedule) -> None:
        super().__init__()
        if inner.ctx is not None:
            raise ValueError("wrap policies before they are bound")
        self.inner = inner
        self.schedule = schedule
        # Records and grids key on the policy name: churn is part of the
        # workload/scenario axis, not the policy axis, so keep the name.
        self.name = inner.name
        self._mask: np.ndarray | None = None
        self._masked: np.ndarray | None = None

    def _on_bind(self) -> None:
        if self.schedule.num_servers != self.ctx.num_servers:
            raise ValueError(
                f"churn schedule covers {self.schedule.num_servers} servers "
                f"but the system has {self.ctx.num_servers}"
            )
        self.inner.bind(self.ctx)

    def capacity_mask(self) -> np.ndarray | None:
        """The mask in force this round (the stores' admission guard)."""
        return self._mask

    def _masked_view(self, queues: np.ndarray) -> np.ndarray:
        view = queues.copy()
        view[~self._mask] = UNAVAILABLE_QUEUE
        return view

    # -- round life-cycle, forwarded against masked views -----------------

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._mask = self.schedule.mask_for_round(round_index)
        self._masked = self._masked_view(queues)
        self.inner.begin_round(round_index, self._masked)

    def end_round(self, round_index: int, queues: np.ndarray) -> None:
        self.inner.end_round(round_index, self._masked_view(queues))

    def observe_total_arrivals(self, total: int) -> None:
        self.inner.observe_total_arrivals(total)

    # -- dispatching, with deterministic redirection ----------------------

    def _redirect_target(self) -> int:
        # Least-loaded available server, lowest index on ties: the
        # sentinel makes a plain argmin over the masked snapshot correct.
        return int(np.argmin(self._masked))

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        row = self.inner.dispatch(dispatcher, num_jobs)
        off = ~self._mask
        moved = int(row[off].sum())
        if moved:
            row[off] = 0
            row[self._redirect_target()] += moved
        return row

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        rows = self.inner.dispatch_round(batch, self._masked)
        off = ~self._mask
        moved = rows[:, off].sum(axis=1)
        if moved.any():
            rows[:, off] = 0
            rows[:, self._redirect_target()] += moved
        return rows


@register_scenario("churn")
class ChurnScenario(Scenario):
    """Periodic server churn over stationary arrivals."""

    name = "churn"
    description = (
        "periodic fleet churn: the 'down' fraction of servers leaves for "
        "part of every 'period'-block cycle and rejoins at block edges"
    )

    def __init__(
        self,
        down: float = 0.25,
        period: int = 8,
        duty: float = 0.5,
        offset: int = 0,
    ) -> None:
        self.down = float(down)
        self.period = int(period)
        self.duty = float(duty)
        self.offset = int(offset)
        # Fail bad parameters at spec-parse time (WorkloadSpec/CLI
        # validation), not when the first cell builds its schedule.
        self.churn_schedule(2)

    def churn_schedule(self, num_servers: int) -> PeriodicChurnSchedule:
        return PeriodicChurnSchedule(
            num_servers,
            down=self.down,
            period=self.period,
            duty=self.duty,
            offset=self.offset,
        )


@register_scenario("elastic")
class ElasticScenario(Scenario):
    """Diurnal arrivals with capacity scaled to track the demand curve."""

    name = "elastic"
    description = (
        "elastic capacity: diurnal arrival cycle plus an autoscaling "
        "fleet that sheds up to 'reserve' of its servers off-peak"
    )

    def __init__(
        self,
        amplitude: float = 0.4,
        period: float = 4096,
        reserve: float = 0.25,
        phase: float = 0.0,
    ) -> None:
        from .arrivals import SinusoidCurve

        self.curve = SinusoidCurve(amplitude, period, phase)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.reserve = float(reserve)
        self.phase = float(phase)
        self.churn_schedule(2)  # range-check reserve at parse time

    def wrap_arrivals(self, arrivals):
        from .arrivals import ModulatedRateArrivals, _base_lambdas

        return ModulatedRateArrivals(_base_lambdas(arrivals), self.curve)

    def churn_schedule(self, num_servers: int) -> ElasticChurnSchedule:
        return ElasticChurnSchedule(
            num_servers,
            amplitude=self.amplitude,
            period=self.period,
            reserve=self.reserve,
            phase=self.phase,
        )
