"""Scenario subsystem: nonstationary arrivals and server churn.

Scenarios reshape a stationary run -- fixed Poisson rates over a fixed
fleet -- into the regimes production systems actually face: diurnal
cycles, flash crowds, regime-switching bursts, servers joining and
leaving, elastic capacity.  They travel as plain ``NAME[:k=v,...]``
strings through :class:`~repro.experiments.workload.WorkloadSpec`,
:class:`~repro.sim.engine.SimulationConfig`, persistence and the
``repro experiment --scenario`` CLI, and are applied in exactly one
place (the engine constructors, via :func:`apply_scenario`) so every
kernel family sees identical reshaped objects.

Built-ins: ``diurnal``, ``flash``, ``regime`` (arrival shaping),
``churn`` (fleet capacity masks), ``elastic`` (both, anti-phase).
``repro scenarios`` lists them with their parameters' defaults.
"""

from .base import (
    Scenario,
    apply_scenario,
    available_scenarios,
    make_scenario,
    register_scenario,
    scenario_descriptions,
)
from .arrivals import (
    DiurnalScenario,
    FlashCrowdCurve,
    FlashCrowdScenario,
    ModulatedRateArrivals,
    RateCurve,
    RegimeSwitchingCurve,
    RegimeSwitchingScenario,
    SinusoidCurve,
)
from .churn import (
    UNAVAILABLE_QUEUE,
    ChurnPolicyAdapter,
    ChurnSchedule,
    ChurnScenario,
    ElasticChurnSchedule,
    ElasticScenario,
    PeriodicChurnSchedule,
)

__all__ = [
    "Scenario",
    "register_scenario",
    "make_scenario",
    "available_scenarios",
    "scenario_descriptions",
    "apply_scenario",
    "RateCurve",
    "SinusoidCurve",
    "FlashCrowdCurve",
    "RegimeSwitchingCurve",
    "ModulatedRateArrivals",
    "DiurnalScenario",
    "FlashCrowdScenario",
    "RegimeSwitchingScenario",
    "UNAVAILABLE_QUEUE",
    "ChurnSchedule",
    "PeriodicChurnSchedule",
    "ElasticChurnSchedule",
    "ChurnPolicyAdapter",
    "ChurnScenario",
    "ElasticScenario",
]
