"""Nonstationary arrival scenarios: rate curves over a Poisson base.

Each scenario here wraps the run's stationary
:class:`~repro.sim.arrivals.PoissonArrivals` in a
:class:`ModulatedRateArrivals`: round ``t`` draws
``Pois(lambda_d * f(t))`` where ``f`` is a deterministic, round-indexed
*rate curve*.  Because the curve is a pure function of the round index
(no internal counters), the block pre-sampler can draw a whole
``(256, m)`` rate matrix at once -- numpy fills Poisson output arrays in
C order, element by element, so the block consumes the arrival stream
exactly like 256 sequential per-round draws and every kernel family
(reference, fast, compiled, sharded) sees the identical realization.

Built-ins:

``diurnal``
    A sinusoidal day/night cycle: ``f(t) = 1 + amplitude *
    sin(2 pi (t + phase) / period)``.

``flash``
    A flash crowd: ``f(t) = 1`` until round ``at``, then a spike of
    height ``spike`` decaying exponentially with time-constant
    ``decay`` rounds.

``regime``
    MMPP-style regime switching: the rate factor alternates between a
    calm and a surge level, with segment lengths drawn from an
    exponential dwell distribution by a dedicated deterministic stream
    (``phase_seed``) -- the phase path is workload *shape*, not
    workload randomness, so it is identical across kernels, seeds and
    resume boundaries.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.sim.arrivals import ArrivalProcess

from .base import Scenario, register_scenario

__all__ = [
    "RateCurve",
    "SinusoidCurve",
    "FlashCrowdCurve",
    "RegimeSwitchingCurve",
    "ModulatedRateArrivals",
    "DiurnalScenario",
    "FlashCrowdScenario",
    "RegimeSwitchingScenario",
]


class RateCurve:
    """A deterministic per-round rate multiplier ``f(t) >= 0``."""

    def factors(self, start_round: int, count: int) -> np.ndarray:
        """Return ``f(start_round), ..., f(start_round + count - 1)``."""
        raise NotImplementedError

    @property
    def mean_factor(self) -> float:
        """Long-run average of ``f`` (for admissibility accounting)."""
        return 1.0


class SinusoidCurve(RateCurve):
    """``f(t) = 1 + amplitude * sin(2 pi (t + phase) / period)``."""

    def __init__(self, amplitude: float, period: float, phase: float = 0.0):
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1) to keep rates positive")
        if period < 1:
            raise ValueError("period must be >= 1 round")
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def factors(self, start_round: int, count: int) -> np.ndarray:
        t = start_round + np.arange(count, dtype=np.float64)
        return 1.0 + self.amplitude * np.sin(
            (2.0 * math.pi / self.period) * (t + self.phase)
        )


class FlashCrowdCurve(RateCurve):
    """``f(t) = 1`` before ``at``; spike + exponential decay afterwards."""

    def __init__(self, spike: float, at: int, decay: float):
        if spike <= 0:
            raise ValueError("spike must be a positive rate multiplier")
        if at < 0:
            raise ValueError("the spike round must be >= 0")
        if decay <= 0:
            raise ValueError("decay must be a positive time constant")
        self.spike = float(spike)
        self.at = int(at)
        self.decay = float(decay)

    def factors(self, start_round: int, count: int) -> np.ndarray:
        t = start_round + np.arange(count, dtype=np.float64)
        elapsed = np.maximum(t - self.at, 0.0)
        surge = 1.0 + (self.spike - 1.0) * np.exp(-elapsed / self.decay)
        return np.where(t >= self.at, surge, 1.0)

    @property
    def mean_factor(self) -> float:
        return 1.0  # the spike's excess mass is transient


class RegimeSwitchingCurve(RateCurve):
    """Alternating calm/surge factor levels with exponential dwells.

    The segment boundaries are generated lazily from a private
    ``random.Random(phase_seed)`` stream: deterministic in the round
    index, independent of the simulation's RNG streams, and extended
    identically whether queried one round at a time (reference kernel)
    or a block at a time (fast kernels).  The generator state pickles
    with the curve, so a resumed run extends the same path.
    """

    def __init__(
        self,
        calm: float,
        surge: float,
        mean_dwell: float,
        phase_seed: int = 0,
    ):
        if calm <= 0 or surge <= 0:
            raise ValueError("regime factor levels must be positive")
        if mean_dwell < 1:
            raise ValueError("mean_dwell must be >= 1 round")
        self.calm = float(calm)
        self.surge = float(surge)
        self.mean_dwell = float(mean_dwell)
        self.phase_seed = int(phase_seed)
        self._rnd = random.Random(self.phase_seed)
        self._bounds = [0]  # cumulative segment end rounds
        self._levels: list[float] = []  # factor level per segment

    def _extend_to(self, end_round: int) -> None:
        while self._bounds[-1] < end_round:
            dwell = max(1, round(self._rnd.expovariate(1.0 / self.mean_dwell)))
            level = self.calm if len(self._levels) % 2 == 0 else self.surge
            self._bounds.append(self._bounds[-1] + dwell)
            self._levels.append(level)

    def factors(self, start_round: int, count: int) -> np.ndarray:
        self._extend_to(start_round + count)
        t = start_round + np.arange(count)
        segments = np.searchsorted(self._bounds, t, side="right") - 1
        return np.asarray(self._levels, dtype=np.float64)[segments]

    @property
    def mean_factor(self) -> float:
        return 0.5 * (self.calm + self.surge)


class ModulatedRateArrivals(ArrivalProcess):
    """Poisson arrivals whose rate vector is scaled by a rate curve.

    Round ``t`` draws ``Pois(lambdas * f(t))`` per dispatcher.  The
    block draw hands numpy a full ``(count, m)`` rate matrix; C-order
    filling makes it consume the stream exactly like ``count``
    sequential :meth:`sample` calls, preserving the engines' bit-identity
    invariant for nonstationary rates.
    """

    def __init__(self, lambdas: np.ndarray, curve: RateCurve) -> None:
        self.lambdas = np.asarray(lambdas, dtype=np.float64)
        if self.lambdas.ndim != 1 or self.lambdas.size == 0:
            raise ValueError("lambdas must be a non-empty 1-D array")
        if np.any(self.lambdas < 0):
            raise ValueError("arrival rates must be non-negative")
        self.curve = curve

    @property
    def num_dispatchers(self) -> int:
        return int(self.lambdas.size)

    @property
    def mean_rate(self) -> float:
        return float(self.lambdas.sum()) * self.curve.mean_factor

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        factor = self.curve.factors(round_index, 1)[0]
        return rng.poisson(self.lambdas * factor).astype(np.int64)

    def sample_many(
        self, rng: np.random.Generator, start_round: int, count: int
    ) -> np.ndarray:
        factors = self.curve.factors(start_round, count)
        return rng.poisson(self.lambdas[None, :] * factors[:, None]).astype(
            np.int64
        )


def _base_lambdas(arrivals) -> np.ndarray:
    """The stationary rate vector an arrival scenario modulates."""
    lambdas = getattr(arrivals, "lambdas", None)
    if lambdas is None:
        raise ValueError(
            f"scenario needs a rate-based arrival process to modulate; "
            f"{type(arrivals).__name__} carries no 'lambdas' vector"
        )
    return np.asarray(lambdas, dtype=np.float64)


@register_scenario("diurnal")
class DiurnalScenario(Scenario):
    """Sinusoidal day/night arrival-rate cycle (stationary fleet)."""

    name = "diurnal"
    description = (
        "sinusoidal arrival-rate cycle: f(t) = 1 + amplitude * "
        "sin(2 pi (t + phase) / period)"
    )

    def __init__(
        self,
        amplitude: float = 0.4,
        period: float = 4096,
        phase: float = 0.0,
    ) -> None:
        self.curve = SinusoidCurve(amplitude, period, phase)

    def wrap_arrivals(self, arrivals):
        return ModulatedRateArrivals(_base_lambdas(arrivals), self.curve)


@register_scenario("flash")
class FlashCrowdScenario(Scenario):
    """Flash crowd: an arrival-rate spike decaying exponentially."""

    name = "flash"
    description = (
        "flash crowd: rate multiplier jumps to 'spike' at round 'at' "
        "and decays exponentially with time constant 'decay'"
    )

    def __init__(
        self, spike: float = 4.0, at: int = 2048, decay: float = 1024
    ) -> None:
        self.curve = FlashCrowdCurve(spike, at, decay)

    def wrap_arrivals(self, arrivals):
        return ModulatedRateArrivals(_base_lambdas(arrivals), self.curve)


@register_scenario("regime")
class RegimeSwitchingScenario(Scenario):
    """MMPP-style calm/surge regime switching of the arrival rate."""

    name = "regime"
    description = (
        "regime switching: the rate factor alternates calm/surge levels "
        "with exponential dwell times from a deterministic phase stream"
    )

    def __init__(
        self,
        calm: float = 0.8,
        surge: float = 1.6,
        mean_dwell: float = 512,
        phase_seed: int = 0,
    ) -> None:
        self.curve = RegimeSwitchingCurve(calm, surge, mean_dwell, phase_seed)

    def wrap_arrivals(self, arrivals):
        return ModulatedRateArrivals(_base_lambdas(arrivals), self.curve)
