"""Scenario registry and the ``NAME[:k=v,...]`` spec grammar.

A *scenario* reshapes a stationary simulation into a nonstationary one
without touching the round loop: it may wrap the arrival process (rate
curves -- diurnal cycles, flash crowds, regime switching) and/or supply
a :class:`~repro.scenarios.churn.ChurnSchedule` (servers leaving and
rejoining the fleet at block boundaries).  Scenarios travel as plain
strings -- ``"diurnal"``, ``"flash:spike=6,at=2048"`` -- through
:class:`~repro.experiments.workload.WorkloadSpec`,
:class:`~repro.sim.engine.SimulationConfig`, persistence descriptors
and the ``repro experiment --scenario`` CLI, exactly like probe and
backend names.

The registry mirrors the probe/backend idiom
(:class:`repro.sim._registry.BackendRegistry`): classes register under a
name, ``make_scenario`` resolves names (with an optional ``:``-separated
``key=value`` parameter suffix) to instances, and the sorted listings
feed ``repro scenarios``.

Application happens in one place -- the engine constructors call
:func:`apply_scenario` on their policy/arrivals pair before binding --
so every kernel family (reference, fast, compiled, sharded, both
engines) sees the identical reshaped objects and bit-identity across
kernels is inherited rather than re-proved per scenario.
"""

from __future__ import annotations

from abc import ABC

from repro.sim._registry import BackendRegistry

__all__ = [
    "Scenario",
    "register_scenario",
    "make_scenario",
    "available_scenarios",
    "scenario_descriptions",
    "apply_scenario",
]


def _coerce(text: str):
    """Best-effort int -> float -> str coercion for ``key=value`` params."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


class Scenario(ABC):
    """One named reshaping of a stationary run.

    Subclasses set :attr:`name` / :attr:`description` and override one
    or both hooks; the defaults leave the simulation untouched, so a
    scenario may be arrivals-only, churn-only, or both (elastic
    capacity).
    """

    #: Registry / display name, e.g. ``"diurnal"`` or ``"churn"``.
    name: str = "abstract"
    #: One-line description shown by ``repro scenarios``.
    description: str = ""

    def wrap_arrivals(self, arrivals):
        """Return the arrival process this scenario drives (default: as-is)."""
        return arrivals

    def churn_schedule(self, num_servers: int):
        """Return a :class:`ChurnSchedule` for ``num_servers``, or ``None``."""
        return None

    @classmethod
    def from_param(cls, param: str, **kwargs) -> "Scenario":
        """Build from a ``key=value[,key=value...]`` parameter suffix.

        This is the :meth:`BackendRegistry.factory` seam: the registry
        splits ``"flash:spike=6,at=2048"`` at the first ``:`` and hands
        the remainder here, so every scenario shares one grammar.
        """
        for pair in param.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key:
                raise ValueError(
                    f"invalid scenario parameter {pair!r}; expected key=value"
                )
            if key in kwargs:
                raise ValueError(f"duplicate scenario parameter {key!r}")
            kwargs[key] = _coerce(value)
        try:
            return cls(**kwargs)
        except TypeError as error:
            # Unknown/misspelled keys must fail the spec string, not
            # surface as a TypeError deep inside WorkloadSpec validation.
            raise ValueError(
                f"invalid {cls.name!r} scenario parameters: {error}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: BackendRegistry[Scenario] = BackendRegistry(
    "scenario", "scenarios", Scenario
)

#: Class decorator registering a scenario under a name.
register_scenario = _REGISTRY.register
#: Instantiate a scenario from ``NAME[:k=v,...]`` (or pass one through).
make_scenario = _REGISTRY.make
#: Names accepted by :func:`make_scenario`, sorted.
available_scenarios = _REGISTRY.available
#: Name -> one-line description, for CLI listings.
scenario_descriptions = _REGISTRY.descriptions


def apply_scenario(spec, policy, arrivals, num_servers: int):
    """Reshape a (policy, arrivals) pair for one scenario spec string.

    The single application point: both engine constructors call this
    before binding the policy, so the wrapped objects are what gets
    pickled into run manifests and checkpoints -- resume and federation
    adoption then carry the scenario state for free.

    Returns the possibly-wrapped ``(policy, arrivals)`` pair.
    ``spec=None`` is the stationary default: both objects pass through
    untouched.
    """
    from .churn import ChurnPolicyAdapter

    if spec is None:
        return policy, arrivals
    scenario = make_scenario(spec)
    arrivals = scenario.wrap_arrivals(arrivals)
    schedule = scenario.churn_schedule(num_servers)
    if schedule is not None:
        policy = ChurnPolicyAdapter(policy, schedule)
    return policy, arrivals
