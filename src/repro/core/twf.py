"""Tidal Water Filling (TWF) -- the homogeneous baseline of Goren et al. [22].

TWF is stochastic coordination for *homogeneous* systems: it solves the
same per-round optimization as SCD but on raw queue lengths, i.e. as if
every server had unit rate.  In a homogeneous system it coincides with SCD;
in a heterogeneous system it is *heterogeneity-oblivious* -- it balances
job counts instead of workloads, starving fast servers and overloading slow
ones.  The paper uses it to show that a mild adaptation of [22] is not
enough (Figures 3-4: TWF's tail degrades by an order of magnitude under
high heterogeneity).

Implementation: we reuse the general heterogeneous solver with an all-ones
rate vector.  This is mathematically exactly [22]'s policy -- in the
homogeneous case the probable set is the analytically known
``{s : q_s < water-level}``, which our prefix search returns -- and it
exercises the same code paths, so TWF doubles as a regression check of the
general algorithm against the known homogeneous closed form (see
``tests/test_twf.py``).
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Policy, register_policy

from .estimation import ArrivalEstimator, make_estimator
from .iwl import compute_iwl
from .probabilities import scd_probabilities

__all__ = ["TWFPolicy", "twf_probabilities"]


def twf_probabilities(
    queues: np.ndarray,
    num_jobs_estimate: float,
) -> tuple[float, np.ndarray]:
    """Water level and TWF probability vector for a queue snapshot.

    Equivalent to SCD's computation with all rates equal to 1; the returned
    level is [22]'s *water level*, which equals the IWL in the homogeneous
    case (paper footnote 5).

    Returns
    -------
    (water_level, probabilities)
    """
    queues = np.asarray(queues, dtype=np.float64)
    ones = np.ones(queues.size, dtype=np.float64)
    level = compute_iwl(queues, ones, num_jobs_estimate)
    probs = scd_probabilities(queues, ones, num_jobs_estimate, level)
    return level, probs


@register_policy("twf")
class TWFPolicy(Policy):
    """TWF: stochastic coordination on job counts (rate-oblivious).

    Parameters
    ----------
    estimator:
        Total-arrival estimator, as in :class:`repro.core.scd.SCDPolicy`.
    """

    name = "twf"

    def __init__(self, estimator: ArrivalEstimator | str | float = "scaled") -> None:
        super().__init__()
        self.estimator = make_estimator(estimator)

    def _on_bind(self) -> None:
        self.estimator.reset()
        self._ones = np.ones(self.ctx.num_servers, dtype=np.float64)
        self._queues: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._round_cache: dict[float, np.ndarray] = {}

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._queues = queues
        self._round_cache.clear()
        # With unit rates both of Algorithm 2's sort keys are monotone in q,
        # so a single order serves the IWL and the probability computation.
        self._order = np.argsort(queues, kind="stable")

    def observe_total_arrivals(self, total: int) -> None:
        self.estimator.observe_total(total)

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        a_est = self.estimator.estimate(int(num_jobs), self.ctx.num_dispatchers)
        probs = self._round_cache.get(a_est)
        if probs is None:
            level = compute_iwl(self._queues, self._ones, a_est, order=self._order)
            probs = scd_probabilities(
                self._queues, self._ones, a_est, level, order=self._order
            )
            probs = probs / probs.sum()
            self._round_cache[a_est] = probs
        return self.rng.multinomial(int(num_jobs), probs).astype(np.int64)
