"""Total-arrival estimators for distributed dispatchers (Section 5.1).

The optimal probabilities depend only on the *total* number of arrivals
``a = sum_d a_d``, but a dispatcher only observes its own ``a_d``.  The
paper's estimator (Eq. 18) assumes everyone received the same batch:
``a_est = m * a_d``; its average across dispatchers equals the true total
(Eq. 19), so over- and under-estimates compensate.

The stability proof (Appendix D) holds for *any* estimator with
``1 <= a_est < inf``, which motivates the alternatives implemented here
for the ablation benchmark:

* :class:`ScaledOwnArrivals` -- the paper's ``m * a_d`` (default).
* :class:`OracleTotal`       -- the true total (an unattainable upper bound
  requiring global knowledge; isolates estimation error).
* :class:`ConstantEstimator` -- a fixed guess, e.g. the system's expected
  per-round capacity; load-oblivious.
* :class:`EwmaEstimator`     -- exponentially weighted moving average of
  scaled own arrivals; smooths Poisson noise at the cost of staleness.

Estimates are clamped to ``>= 1`` so that the probability computation is
always well-defined (``a_est = 1`` degenerates to the SED-like Eq. 9 rule,
``a_est -> inf`` approaches weighted-random; see Section 5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = [
    "ArrivalEstimator",
    "ScaledOwnArrivals",
    "OracleTotal",
    "ConstantEstimator",
    "EwmaEstimator",
    "make_estimator",
]


class ArrivalEstimator(ABC):
    """Estimates the round's total arrivals from a dispatcher's own batch."""

    @abstractmethod
    def estimate(self, own_arrivals: int, num_dispatchers: int) -> float:
        """Return ``a_est >= 1`` given this dispatcher's batch size.

        Parameters
        ----------
        own_arrivals:
            ``a_d``, the number of jobs that arrived at this dispatcher
            this round (``>= 1`` when called; dispatchers with no jobs do
            not dispatch).
        num_dispatchers:
            ``m``, the number of dispatchers in the system.
        """

    def observe_total(self, total_arrivals: int) -> None:
        """Feed the true round total (used only by the oracle).

        The simulation engine calls this after all arrivals of a round are
        known; non-oracle estimators ignore it.
        """

    def reset(self) -> None:
        """Clear any internal state (called when a simulation starts)."""


class ScaledOwnArrivals(ArrivalEstimator):
    """The paper's estimator, Eq. (18): ``a_est = m * a_d``."""

    def estimate(self, own_arrivals: int, num_dispatchers: int) -> float:
        return float(max(1, num_dispatchers * own_arrivals))


class OracleTotal(ArrivalEstimator):
    """Uses the true total arrivals of the round (unrealizable baseline)."""

    def __init__(self) -> None:
        self._total = 1

    def observe_total(self, total_arrivals: int) -> None:
        self._total = max(1, int(total_arrivals))

    def estimate(self, own_arrivals: int, num_dispatchers: int) -> float:
        return float(self._total)

    def reset(self) -> None:
        self._total = 1


class ConstantEstimator(ArrivalEstimator):
    """Always returns a fixed value (e.g. expected system capacity)."""

    def __init__(self, value: float) -> None:
        if value < 1:
            raise ValueError(f"constant estimate must be >= 1, got {value}")
        self.value = float(value)

    def estimate(self, own_arrivals: int, num_dispatchers: int) -> float:
        return self.value


class EwmaEstimator(ArrivalEstimator):
    """EWMA of scaled own arrivals: ``e <- (1-alpha)*e + alpha*m*a_d``.

    ``alpha = 1`` reduces to :class:`ScaledOwnArrivals`.
    """

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value: float | None = None

    def estimate(self, own_arrivals: int, num_dispatchers: int) -> float:
        sample = float(num_dispatchers * own_arrivals)
        if self._value is None:
            self._value = sample
        else:
            self._value = (1.0 - self.alpha) * self._value + self.alpha * sample
        return max(1.0, self._value)

    def reset(self) -> None:
        self._value = None


def make_estimator(spec: str | float | ArrivalEstimator, **kwargs) -> ArrivalEstimator:
    """Build an estimator from a name, a number, or an existing instance.

    Accepted names: ``"scaled"`` (paper default), ``"oracle"``,
    ``"constant"`` (requires ``value=``), ``"ewma"`` (optional ``alpha=``).
    A bare number builds a :class:`ConstantEstimator`.
    """
    if isinstance(spec, ArrivalEstimator):
        return spec
    if isinstance(spec, (int, float)):
        return ConstantEstimator(float(spec))
    name = spec.lower()
    if name == "scaled":
        return ScaledOwnArrivals()
    if name == "oracle":
        return OracleTotal()
    if name == "constant":
        return ConstantEstimator(**kwargs)
    if name == "ewma":
        return EwmaEstimator(**kwargs)
    raise ValueError(f"unknown estimator {spec!r}")
