"""Ideally balanced workload (IWL) and assignment (IBA).

Implements Section 3.1 of the paper.  Given the current queue lengths
``q_s``, the service rates ``mu_s`` and the total number ``a`` of incoming
jobs, the *ideally balanced assignment* (IBA) is the continuous assignment
``abar`` solving Eq. (1):

    max min_s (q_s + abar_s) / mu_s
    s.t.  sum_s abar_s = a  and  abar_s >= 0.

The optimal value of the objective is the *ideal workload* (IWL).  The IBA
is recovered from the IWL via Eq. (2):

    abar_s = mu_s * max(q_s / mu_s, iwl) - q_s.

Two implementations are provided:

* :func:`compute_iwl_reference` -- a faithful transcription of the paper's
  Algorithm 3 (iterative water filling, ``O(n)`` given the sort order).
* :func:`compute_iwl` -- a vectorized prefix-sum formulation used by the
  simulator (identical output; property-tested against the reference).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "compute_iwl",
    "compute_iwl_reference",
    "compute_iba",
    "load_vector",
]


def load_vector(queues: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Return the normalized loads ``q_s / mu_s`` as a float array.

    The *load* of a server is the expected time it needs to drain its
    current queue; it is the quantity the IBA balances (Section 3.1).
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    return queues / rates


def _validate(queues: np.ndarray, rates: np.ndarray, arrivals: float) -> None:
    if queues.shape != rates.shape:
        raise ValueError(
            f"queues and rates must have the same shape, "
            f"got {queues.shape} vs {rates.shape}"
        )
    if queues.ndim != 1 or queues.size == 0:
        raise ValueError("queues must be a non-empty 1-D array")
    if np.any(rates <= 0):
        raise ValueError("all service rates must be strictly positive")
    if np.any(queues < 0):
        raise ValueError("queue lengths must be non-negative")
    if arrivals < 0:
        raise ValueError("arrivals must be non-negative")


def compute_iwl_reference(
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
) -> float:
    """Compute the IWL with the paper's Algorithm 3 (iterative water fill).

    Starts from the least-loaded server and repeatedly raises the set of
    least-loaded servers to the next-lowest load level until the incoming
    work ``arrivals`` is exhausted.

    Parameters
    ----------
    queues:
        Current queue lengths ``q_s`` (non-negative).
    rates:
        Service rates ``mu_s`` (strictly positive).
    arrivals:
        Total number of incoming jobs ``a`` (non-negative; may be
        fractional, the analysis treats work as continuous).

    Returns
    -------
    float
        The ideal workload level.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    _validate(queues, rates, arrivals)

    loads = queues / rates
    order = np.argsort(loads, kind="stable")

    # Algorithm 3, with ``order`` playing the role of the repeated argmin.
    mu_total = 0.0
    remaining = float(arrivals)
    idx = 0
    r = order[idx]
    iwl = loads[r]
    if remaining == 0.0:
        return float(iwl)
    n = queues.size
    while remaining > 0.0:
        mu_total += rates[r]
        idx += 1
        if idx == n:
            return float(iwl + remaining / mu_total)
        r = order[idx]
        delta = loads[r] - iwl
        if delta * mu_total >= remaining:
            return float(iwl + remaining / mu_total)
        remaining -= delta * mu_total
        iwl += delta
    return float(iwl)


def compute_iwl(
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    *,
    order: np.ndarray | None = None,
) -> float:
    """Compute the IWL with a vectorized prefix-sum water fill.

    Equivalent to :func:`compute_iwl_reference` but uses cumulative sums,
    which is considerably faster for the simulator's hot path.

    Parameters
    ----------
    queues, rates, arrivals:
        As in :func:`compute_iwl_reference`.
    order:
        Optional precomputed ``argsort`` of ``q_s / mu_s``.  The SCD
        dispatching procedure (Algorithm 2) sorts once per round and reuses
        the order across per-dispatcher computations.

    Returns
    -------
    float
        The ideal workload level.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    _validate(queues, rates, arrivals)

    loads = queues / rates
    if order is None:
        order = np.argsort(loads, kind="stable")
    loads_sorted = loads[order]
    mu_sorted = rates[order]
    q_sorted = queues[order]

    if arrivals == 0.0:
        return float(loads_sorted[0])

    # With the k+1 least-loaded servers active (k = 0..n-1), the work needed
    # to raise them all to the load of server k+1 (the next level) is
    #   need_k = M_{k+1} * loads_sorted[k+1] - Q_{k+1}
    # where M, Q are prefix sums of mu and q.  need is non-decreasing, so
    # the number of levels fully absorbed is found with searchsorted.
    mu_cum = np.cumsum(mu_sorted)
    q_cum = np.cumsum(q_sorted)
    need = mu_cum[:-1] * loads_sorted[1:] - q_cum[:-1]
    k = int(np.searchsorted(need, arrivals, side="left"))
    # k servers-boundaries fully crossed => k + 1 active servers.
    return float((arrivals + q_cum[k]) / mu_cum[k])


def compute_iba(
    queues: np.ndarray,
    rates: np.ndarray,
    iwl: float,
) -> np.ndarray:
    """Return the ideally balanced assignment via Eq. (2).

    ``abar_s = mu_s * max(q_s / mu_s, iwl) - q_s``: servers below the ideal
    workload are filled exactly up to it, servers above receive nothing.

    Parameters
    ----------
    queues, rates:
        Server state, as elsewhere in this module.
    iwl:
        An ideal-workload level, normally from :func:`compute_iwl`.

    Returns
    -------
    numpy.ndarray
        Non-negative float array summing to the ``arrivals`` value used to
        compute ``iwl``.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    return np.maximum(rates * iwl - queues, 0.0)
