"""The size-aware SCD dispatcher (companion to :mod:`repro.core.sized`).

``SizedSCDPolicy`` is Algorithm 2 run over work units: queues arrive in
units, the arrival estimate counts *jobs* (Eq. 18 unchanged), and the
probability vector comes from the generalized solver with the job-size
moments folded in.  Registered as ``"scd-sized"``.

The interesting baseline is plain SCD on the same unit queues: it treats
each job as one unit of work, so it *underestimates* incoming work by the
mean size and uses the wrong discreteness correction.  The gap between
the two is the value of size information -- the open-problem-1 question,
quantified in ``benchmarks/bench_ext_sized_jobs.py``.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Policy, register_policy

from .estimation import ArrivalEstimator, make_estimator
from .sized import sized_scd_probabilities

__all__ = ["SizedSCDPolicy"]


@register_policy("scd-sized")
class SizedSCDPolicy(Policy):
    """Size-aware SCD: stochastic coordination over work units.

    Parameters
    ----------
    mean_size, second_moment_size:
        The job-size moments the dispatchers know (``E[W]``, ``E[W^2]``);
        defaults describe unit jobs, where this policy coincides with SCD.
    estimator:
        Total-*job* estimator, as in :class:`repro.core.scd.SCDPolicy`.
    """

    name = "scd-sized"

    def __init__(
        self,
        mean_size: float = 1.0,
        second_moment_size: float | None = None,
        estimator: ArrivalEstimator | str | float = "scaled",
    ) -> None:
        super().__init__()
        if mean_size <= 0:
            raise ValueError("mean job size must be positive")
        self.mean_size = float(mean_size)
        self.second_moment_size = (
            float(second_moment_size)
            if second_moment_size is not None
            else self.mean_size**2
        )
        if self.second_moment_size < self.mean_size**2:
            raise ValueError("E[W^2] cannot be below E[W]^2")
        self.estimator = make_estimator(estimator)

    def _on_bind(self) -> None:
        self.estimator.reset()
        self._queues: np.ndarray | None = None
        self._round_cache: dict[float, np.ndarray] = {}

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._queues = queues
        self._round_cache.clear()

    def observe_total_arrivals(self, total: int) -> None:
        self.estimator.observe_total(total)

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        a_est = self.estimator.estimate(int(num_jobs), self.ctx.num_dispatchers)
        probs = self._round_cache.get(a_est)
        if probs is None:
            _, probs = sized_scd_probabilities(
                self._queues,
                self.rates,
                a_est,
                self.mean_size,
                self.second_moment_size,
            )
            probs = probs / probs.sum()
            self._round_cache[a_est] = probs
        return self.rng.multinomial(int(num_jobs), probs).astype(np.int64)
