"""Optimal dispatching probabilities for SCD.

Solves the stochastic-coordination optimization problem of Eq. (10):

    minimize   f(P) = (a-1) * sum_s p_s^2 / mu_s
                      + sum_s [(2(q_s - mu_s*iwl) + 1) / mu_s] * p_s
    subject to sum_s p_s = 1,  p_s >= 0,

whose solution is the probability vector a dispatcher samples job
destinations from.  The KKT analysis (Eqs. 13-16) shows that once the
*probable set* ``S+ = {s : p*_s > 0}`` is known the solution is closed-form:

    Lambda0 = [2*sum_{S+}(mu_s*iwl - q_s) - |S+| - 2(a-1)] / sum_{S+} mu_s
    p*_s    = [-2(q_s - mu_s*iwl) - 1 - mu_s*Lambda0] / (2(a-1))

and Lemma 1 / Corollary 1 prove that ``S+`` is a *prefix* of the servers
sorted by ``(2q_s + 1) / mu_s``.  Three implementations are provided:

* :func:`scd_probabilities_quadratic` -- the paper's Algorithm 1, ``O(n^2)``.
* :func:`scd_probabilities_loop`      -- the paper's Algorithm 4,
  ``O(n log n)`` (``O(n)`` given the sort), using running sums and the
  Lemma 2 decomposition ``f(P) = v1*Lambda0^2 - v2``.
* :func:`scd_probabilities`           -- a vectorized formulation of
  Algorithm 4 (cumulative sums + masked argmin); the simulator's hot path.

All three return identical vectors (property-tested), and agree with the
exact brute-force / SLSQP reference solvers in
:mod:`repro.core.qp_reference`.

Note on Eq. (17): the paper's displayed inequality drops a factor of two;
the correct feasibility test, used by Algorithm 4 line 12 and implemented
here, is ``2*iwl - (2q_r+1)/mu_r >= Lambda0``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scd_probabilities",
    "scd_probabilities_loop",
    "scd_probabilities_quadratic",
    "single_job_probabilities",
    "scd_objective",
    "kkt_residuals",
    "priority_key",
]

#: Tolerance used when testing candidate feasibility / clipping.  The
#: closed-form probabilities are exact up to float64 rounding; candidates
#: are rejected only when genuinely negative.
_FEAS_EPS = 1e-12


def priority_key(queues: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Return the probable-set ordering key ``(2 q_s + 1) / mu_s``.

    Lemma 1: if server ``r`` is probable and ``key_u <= key_r`` then ``u``
    is probable too, hence ``S+`` is a prefix in this order.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    return (2.0 * queues + 1.0) / rates


def single_job_probabilities(queues: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Optimal probabilities for ``a == 1`` (Eq. 9).

    With a single arriving job the quadratic term vanishes and any
    distribution supported on the argmin of ``(2q_s+1)/mu_s`` is optimal;
    we return the uniform distribution over that argmin set.
    """
    key = priority_key(queues, rates)
    winners = key <= key.min() + _FEAS_EPS
    p = np.zeros(key.size, dtype=np.float64)
    p[winners] = 1.0 / winners.sum()
    return p


def scd_objective(
    p: np.ndarray,
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    iwl: float,
) -> float:
    """Evaluate the objective ``f(P)`` of Eq. (10) at ``p``."""
    p = np.asarray(p, dtype=np.float64)
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    linear = (2.0 * (queues - rates * iwl) + 1.0) / rates
    return float((arrivals - 1.0) * np.sum(p * p / rates) + np.sum(linear * p))


def _check_inputs(
    queues: np.ndarray, rates: np.ndarray, arrivals: float
) -> tuple[np.ndarray, np.ndarray]:
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    if queues.shape != rates.shape or queues.ndim != 1 or queues.size == 0:
        raise ValueError("queues and rates must be equal-shape non-empty 1-D arrays")
    if np.any(rates <= 0):
        raise ValueError("all service rates must be strictly positive")
    if arrivals < 1:
        raise ValueError(f"arrivals must be >= 1, got {arrivals}")
    return queues, rates


def scd_probabilities_quadratic(
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    iwl: float,
) -> np.ndarray:
    """Algorithm 1: probable-set prefix scan with per-prefix recomputation.

    Kept as a faithful ``O(n^2)`` reference; used in the run-time figures
    (Figures 5 and 8) as the slow comparator.

    Parameters
    ----------
    queues, rates:
        Server state.
    arrivals:
        The (estimated) total number ``a`` of jobs arriving this round;
        must be ``>= 1``.  ``a == 1`` falls back to Eq. (9).
    iwl:
        The ideal workload for ``(queues, rates, arrivals)``, from
        :func:`repro.core.iwl.compute_iwl`.
    """
    queues, rates = _check_inputs(queues, rates, arrivals)
    if arrivals == 1:
        return single_job_probabilities(queues, rates)

    n = queues.size
    key = priority_key(queues, rates)
    order = np.argsort(key, kind="stable")

    best_val = np.inf
    best_p: np.ndarray | None = None
    a = float(arrivals)
    for j in range(1, n + 1):
        members = order[:j]
        mu_o = rates[members]
        q_o = queues[members]
        lam0_num = 2.0 * np.sum(mu_o * iwl - q_o) - j - 2.0 * (a - 1.0)
        lam0 = lam0_num / np.sum(mu_o)  # Eq. (16)
        p_members = (-2.0 * (q_o - mu_o * iwl) - 1.0 - mu_o * lam0) / (
            2.0 * (a - 1.0)
        )  # Eq. (14)
        if np.any(p_members < -_FEAS_EPS):
            continue  # infeasible candidate; try the next prefix
        p_members = np.maximum(p_members, 0.0)
        linear = (2.0 * (q_o - mu_o * iwl) + 1.0) / mu_o
        val = (a - 1.0) * np.sum(p_members**2 / mu_o) + np.sum(linear * p_members)
        if val < best_val:
            best_val = val
            best_p = np.zeros(n, dtype=np.float64)
            best_p[members] = p_members
    if best_p is None:  # unreachable: the full set is always feasible
        raise RuntimeError("no feasible probable-set prefix found")
    return best_p


def scd_probabilities_loop(
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    iwl: float,
    *,
    order: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 4: optimal-complexity probable-set search (faithful loop).

    Maintains running sums for the Lambda0 numerator/denominator and for
    the Lemma 2 objective terms ``v1`` and ``v2``, so each prefix is
    evaluated in ``O(1)``; total cost is the sort (``O(n log n)``), or
    ``O(n)`` when ``order`` is supplied.
    """
    queues, rates = _check_inputs(queues, rates, arrivals)
    if arrivals == 1:
        return single_job_probabilities(queues, rates)

    key = priority_key(queues, rates)
    if order is None:
        order = np.argsort(key, kind="stable")
    a = float(arrivals)

    lam0_num = -2.0 * (a - 1.0)
    lam0_den = 0.0
    v1 = 0.0
    v2 = 0.0
    best_val = np.inf
    best_lam0 = np.nan
    four_a1 = 4.0 * (a - 1.0)
    for r in order:
        mu_r = rates[r]
        q_r = queues[r]
        lam0_num += 2.0 * (mu_r * iwl - q_r) - 1.0
        lam0_den += mu_r
        lam0 = lam0_num / lam0_den  # Eq. (16), incrementally
        numer_r = 2.0 * (q_r - mu_r * iwl) + 1.0
        v1 += mu_r / four_a1
        v2 += numer_r * numer_r / (four_a1 * mu_r)
        # Feasibility (corrected Eq. 17): the last-added server has the
        # largest key in the prefix, so checking it covers the whole set.
        if 2.0 * iwl - key[r] < lam0 - _FEAS_EPS:
            continue
        val = v1 * lam0 * lam0 - v2  # Lemma 2
        if val < best_val:
            best_val = val
            best_lam0 = lam0
    if not np.isfinite(best_lam0):  # unreachable: full prefix is feasible
        raise RuntimeError("no feasible probable-set prefix found")
    p = (-2.0 * (queues - rates * iwl) - 1.0 - rates * best_lam0) / (2.0 * (a - 1.0))
    np.maximum(p, 0.0, out=p)
    return p


def scd_probabilities(
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    iwl: float,
    *,
    order: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized Algorithm 4 (the simulator's hot path).

    Computes every prefix's Lambda0, feasibility flag and Lemma 2 objective
    with cumulative sums, then selects the minimizing feasible prefix.
    Output is identical to :func:`scd_probabilities_loop`.

    Parameters
    ----------
    queues, rates, arrivals, iwl:
        As in :func:`scd_probabilities_quadratic`.
    order:
        Optional precomputed ``argsort`` of ``(2q_s+1)/mu_s`` (shared
        across dispatchers within a round by Algorithm 2).
    """
    queues, rates = _check_inputs(queues, rates, arrivals)
    if arrivals == 1:
        return single_job_probabilities(queues, rates)

    key = priority_key(queues, rates)
    if order is None:
        order = np.argsort(key, kind="stable")
    a = float(arrivals)

    mu_o = rates[order]
    q_o = queues[order]
    key_o = key[order]

    gain = mu_o * iwl - q_o  # mu_s*iwl - q_s per server, in key order
    lam0_num = 2.0 * np.cumsum(gain) - np.arange(1, key_o.size + 1) - 2.0 * (a - 1.0)
    lam0_den = np.cumsum(mu_o)
    lam0 = lam0_num / lam0_den

    feasible = 2.0 * iwl - key_o >= lam0 - _FEAS_EPS

    four_a1 = 4.0 * (a - 1.0)
    numer = -2.0 * gain + 1.0  # == 2(q_s - mu_s*iwl) + 1
    v1 = lam0_den / four_a1
    v2 = np.cumsum(numer * numer / mu_o) / four_a1
    val = v1 * lam0 * lam0 - v2
    val = np.where(feasible, val, np.inf)
    best = int(np.argmin(val))

    p = (2.0 * (rates * iwl - queues) - 1.0 - rates * lam0[best]) / (2.0 * (a - 1.0))
    np.maximum(p, 0.0, out=p)
    return p


def kkt_residuals(
    p: np.ndarray,
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    iwl: float,
) -> dict[str, float]:
    """Measure how far ``p`` is from satisfying the KKT system (Eq. 12).

    Returns a dict of residual magnitudes; an optimal solution has all of
    them ~0 (used by the test suite to certify optimality independently of
    which algorithm produced ``p``).

    Keys
    ----
    ``primal_sum``      : ``|sum(p) - 1|``.
    ``primal_nonneg``   : magnitude of the most negative probability.
    ``dual_feasibility``: most negative implied multiplier ``Lambda_s``.
    ``stationarity``    : max deviation of the gradient condition on the
                          support of ``p`` from a common ``-Lambda0``.
    """
    p = np.asarray(p, dtype=np.float64)
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    a = float(arrivals)

    grad = 2.0 * (a - 1.0) * p / rates + (2.0 * (queues - rates * iwl) + 1.0) / rates
    support = p > 1e-9
    if support.any():
        # On the support Lambda_s = 0, so grad_s = -Lambda0 for all s in S+.
        lam0 = -grad[support].mean()
        stationarity = float(np.max(np.abs(grad[support] + lam0)))
        # Off support, Lambda_s = grad_s + Lambda0 must be >= 0.
        off = ~support
        dual = float(np.minimum((grad[off] + lam0), 0.0).min()) if off.any() else 0.0
    else:
        stationarity = np.inf
        dual = -np.inf
    return {
        "primal_sum": float(abs(p.sum() - 1.0)),
        "primal_nonneg": float(max(0.0, -p.min())),
        "dual_feasibility": float(max(0.0, -dual)),
        "stationarity": stationarity,
    }
