"""The strong-stability bound of Appendix D, as computable quantities.

The paper proves (Eq. 37) that under SCD the time-averaged total queue
length is bounded:

    limsup (1/T) sum_t sum_s E[q_s(t)]  <=  (C + 2D) * mu_tot / (2 eps)

with the constants assembled from the first two moments of the arrival and
departure processes:

    C = [sum_d sigma_d + sum_{d != d'} lambda_d lambda_d'] / mu_min
        + sum_s phi_s / mu_s                                   (Eq. 26)
    D = sum_d sigma_d * (n^2 - n) / (2 mu_min)                 (Eq. 34)
    eps = mu_tot - lambda_tot            (admissibility slack)

where ``sigma_d = E[(a_d)^2]`` and ``phi_s = E[(c_s)^2]`` are *raw* second
moments (the paper's notation in Eqs. 20-21).  For the evaluation's
processes these moments are closed-form:

* Poisson(lambda): ``E[A^2] = lambda + lambda^2``.
* Geometric on {0,1,...} with mean mu: ``Var = mu (1 + mu)``, so
  ``E[C^2] = mu(1+mu) + mu^2 = mu + 2 mu^2``.

The bound is extremely loose (it is a Lyapunov-drift artifact, quadratic
in n), but it is *finite* for every admissible load -- which is the
theorem -- and our tests verify that measured time-averaged queues sit
far below it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "StabilityBound",
    "strong_stability_bound",
    "poisson_second_moment",
    "geometric_second_moment",
]


def poisson_second_moment(lam: np.ndarray | float) -> np.ndarray | float:
    """Raw second moment of Poisson(lambda): ``lambda + lambda^2``."""
    lam = np.asarray(lam, dtype=np.float64)
    out = lam + lam * lam
    return float(out) if out.ndim == 0 else out


def geometric_second_moment(mu: np.ndarray | float) -> np.ndarray | float:
    """Raw second moment of the paper's Geom(1/(1+mu)) on {0,1,...}.

    Mean ``mu``, variance ``mu (1 + mu)``, hence ``E[C^2] = mu + 2 mu^2``.
    """
    mu = np.asarray(mu, dtype=np.float64)
    out = mu + 2.0 * mu * mu
    return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class StabilityBound:
    """The Appendix D constants and the resulting queue-length bound."""

    C: float
    D: float
    epsilon: float
    mu_total: float
    bound: float

    def __str__(self) -> str:
        return (
            f"StabilityBound(eps={self.epsilon:.3f}, C={self.C:.1f}, "
            f"D={self.D:.1f}, bound={self.bound:.1f} jobs)"
        )


def strong_stability_bound(
    lambdas: np.ndarray,
    rates: np.ndarray,
    arrival_second_moments: np.ndarray | None = None,
    service_second_moments: np.ndarray | None = None,
) -> StabilityBound:
    """Evaluate the Eq. 37 bound for a concrete system.

    Parameters
    ----------
    lambdas:
        Per-dispatcher mean arrival rates.
    rates:
        Per-server service rates ``mu_s``.
    arrival_second_moments:
        ``E[(a_d)^2]`` per dispatcher; defaults to the Poisson values.
    service_second_moments:
        ``E[(c_s)^2]`` per server; defaults to the paper's geometric
        values.

    Raises
    ------
    ValueError
        If the system is not admissible (``sum lambda >= sum mu``) -- the
        theorem has no content there.
    """
    lambdas = np.asarray(lambdas, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    if np.any(rates <= 0):
        raise ValueError("service rates must be strictly positive")
    if np.any(lambdas < 0):
        raise ValueError("arrival rates must be non-negative")

    mu_total = float(rates.sum())
    lambda_total = float(lambdas.sum())
    epsilon = mu_total - lambda_total
    if epsilon <= 0:
        raise ValueError(
            f"system is not admissible: sum(lambda)={lambda_total:.3f} >= "
            f"sum(mu)={mu_total:.3f}"
        )

    if arrival_second_moments is None:
        arrival_second_moments = poisson_second_moment(lambdas)
    if service_second_moments is None:
        service_second_moments = geometric_second_moment(rates)
    sigma = np.asarray(arrival_second_moments, dtype=np.float64)
    phi = np.asarray(service_second_moments, dtype=np.float64)

    n = rates.size
    mu_min = float(rates.min())

    # Eq. 26: E[(sum_d a_d)^2] expanded into second moments + cross terms.
    cross = float(lambda_total**2 - np.sum(lambdas**2))
    C = (float(sigma.sum()) + cross) / mu_min + float(np.sum(phi / rates))

    # Eq. 34, summed over dispatchers.
    D = float(sigma.sum()) * (n * n - n) / (2.0 * mu_min)

    bound = (C + 2.0 * D) * mu_total / (2.0 * epsilon)
    return StabilityBound(C=C, D=D, epsilon=epsilon, mu_total=mu_total, bound=bound)
