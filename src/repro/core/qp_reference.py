"""Exact reference solvers for the SCD optimization problem.

These are *test oracles*, deliberately independent of the production
algorithms in :mod:`repro.core.probabilities`:

* :func:`brute_force_probabilities` enumerates all ``2^n - 1`` candidate
  probable sets (the "trivial algorithm" of Section 4.1), solving each by
  the KKT closed form and keeping the feasible candidate with the lowest
  objective.  Exponential -- only usable for small ``n`` -- but exact.
* :func:`slsqp_probabilities` solves Eq. (10) numerically with scipy's
  SLSQP, usable up to moderate ``n`` with loose tolerances.

Neither is used by the simulator; both live here so the test suite can
certify Algorithms 1 and 4 against genuinely different solution paths.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
from scipy.optimize import minimize

from .probabilities import scd_objective, single_job_probabilities

__all__ = ["brute_force_probabilities", "slsqp_probabilities"]


def brute_force_probabilities(
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    iwl: float,
    *,
    max_servers: int = 16,
) -> np.ndarray:
    """Exact solution by exhaustive probable-set enumeration.

    For every non-empty subset ``O`` of servers, computes ``Lambda0`` by
    Eq. (16) and the member probabilities by Eq. (14); keeps the feasible
    candidate (all probabilities non-negative) with the smallest Eq. (10)
    objective.

    Raises
    ------
    ValueError
        If ``n > max_servers`` (the enumeration is exponential).
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    n = queues.size
    if n > max_servers:
        raise ValueError(f"brute force limited to {max_servers} servers, got {n}")
    a = float(arrivals)
    if a == 1:
        return single_job_probabilities(queues, rates)

    best_val = np.inf
    best_p: np.ndarray | None = None
    indices = range(n)
    for size in range(1, n + 1):
        for subset in combinations(indices, size):
            members = np.fromiter(subset, dtype=np.intp)
            mu_o = rates[members]
            q_o = queues[members]
            lam0 = (
                2.0 * np.sum(mu_o * iwl - q_o) - size - 2.0 * (a - 1.0)
            ) / np.sum(mu_o)
            p_members = (-2.0 * (q_o - mu_o * iwl) - 1.0 - mu_o * lam0) / (
                2.0 * (a - 1.0)
            )
            if np.any(p_members < -1e-12):
                continue
            p = np.zeros(n, dtype=np.float64)
            p[members] = np.maximum(p_members, 0.0)
            val = scd_objective(p, queues, rates, a, iwl)
            if val < best_val - 1e-15:
                best_val = val
                best_p = p
    assert best_p is not None  # the full set is always feasible
    return best_p


def slsqp_probabilities(
    queues: np.ndarray,
    rates: np.ndarray,
    arrivals: float,
    iwl: float,
) -> np.ndarray:
    """Numerical solution of Eq. (10) via scipy SLSQP.

    Accurate to ~1e-6 in the probability vector; useful for validating the
    closed-form algorithms at sizes where brute force is infeasible.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    n = queues.size
    a = float(arrivals)
    if a == 1:
        return single_job_probabilities(queues, rates)

    linear = (2.0 * (queues - rates * iwl) + 1.0) / rates

    def objective(p: np.ndarray) -> float:
        return (a - 1.0) * float(np.sum(p * p / rates)) + float(np.dot(linear, p))

    def gradient(p: np.ndarray) -> np.ndarray:
        return 2.0 * (a - 1.0) * p / rates + linear

    # Warm start near the expected optimum (IBA proportions), blended with
    # uniform so the start is strictly interior; SLSQP's line search can
    # stall from poor starts on ill-scaled instances.
    from .iwl import compute_iba

    iba = compute_iba(queues, rates, iwl)
    warm = iba / iba.sum() if iba.sum() > 0 else np.full(n, 1.0 / n)
    starts = [
        0.9 * warm + 0.1 / n,
        np.full(n, 1.0 / n),
        rates / rates.sum(),
    ]
    last_message = ""
    for x0 in starts:
        result = minimize(
            objective,
            x0=x0,
            jac=gradient,
            method="SLSQP",
            bounds=[(0.0, 1.0)] * n,
            constraints=[{"type": "eq", "fun": lambda p: p.sum() - 1.0}],
            options={"maxiter": 500, "ftol": 1e-11},
        )
        if result.success:
            p = np.maximum(result.x, 0.0)
            return p / p.sum()
        last_message = result.message
    raise RuntimeError(f"SLSQP failed: {last_message}")
