"""Size-aware stochastic coordination (the paper's open problem 1).

Section 7 asks whether information about *the nature of jobs* can improve
stochastic coordination.  This module answers the i.i.d.-size instance of
that question.  Jobs carry integer work sizes ``w ~ W`` (distribution
known to dispatchers); server ``s`` completes ``c_s(t)`` *work units* per
round; queues are measured in units.

Redoing the derivation of Eq. (5)-(8) with ``abar_s = sum_j w_j X_j``
(``X_j ~ Bern(p_s)``, sizes independent of placements):

    E[abar_s]   = a * wbar * p_s
    E[abar_s^2] = a * E[W^2] * p_s - a * wbar^2 * p_s^2 + a^2 * wbar^2 * p_s^2

and dropping constants / dividing by ``a * wbar``, the per-round problem
becomes

    minimize  A * sum_s p_s^2 / mu_s + sum_s (2(q_s - mu_s*iwl) + c) / mu_s * p_s

with  ``A = wbar * (a - 1)``  and  ``c = E[W^2] / wbar``  -- the *same
form* as Eq. (10), which has ``A = a - 1`` and ``c = 1`` (unit sizes give
``wbar = E[W^2] = 1``).  The whole KKT analysis goes through verbatim with
``1 -> c``: the probable set is a prefix of the ``(2q_s + c)/mu_s`` order,
``Lambda0`` and the probabilities are closed-form, and the Lemma 2
objective decomposition holds.  :func:`generalized_probabilities` is that
solver; :func:`sized_scd_probabilities` applies the substitution, and
:class:`SizedSCDPolicy` is the end-to-end dispatcher (the IWL is computed
on the estimated total *work* ``a_est * wbar``).

Intuition for the new constants: a heavier mean size raises the variance
penalty of piling probability on one server (``A`` grows), and size
dispersion (``E[W^2]/wbar = wbar * (1 + cv^2)``) grows the
discreteness-correction ``c`` -- with very lumpy jobs, even a single
placement is a big commitment, pushing the optimum toward faster servers.
"""

from __future__ import annotations

import numpy as np

from .iwl import compute_iwl

__all__ = [
    "generalized_probabilities",
    "sized_scd_probabilities",
    "sized_objective",
]

_FEAS_EPS = 1e-12


def generalized_probabilities(
    queues: np.ndarray,
    rates: np.ndarray,
    quad_weight: float,
    offset: float,
    iwl: float,
) -> np.ndarray:
    """Solve the generalized prefix problem (vectorized Algorithm 4 form).

    Minimizes ``quad_weight * sum p^2/mu + sum (2(q - mu*iwl) + offset)/mu * p``
    over the simplex.  ``(quad_weight, offset) = (a - 1, 1)`` reproduces
    :func:`repro.core.probabilities.scd_probabilities` exactly
    (property-tested).

    Parameters
    ----------
    quad_weight:
        Coefficient ``A > 0`` of the quadratic term.
    offset:
        Discreteness correction ``c > 0`` in the linear term.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    if quad_weight <= 0:
        raise ValueError(f"quad_weight must be positive, got {quad_weight}")
    if offset <= 0:
        raise ValueError(f"offset must be positive, got {offset}")

    key = (2.0 * queues + offset) / rates
    order = np.argsort(key, kind="stable")
    mu_o = rates[order]
    q_o = queues[order]
    key_o = key[order]

    gain = mu_o * iwl - q_o
    lam0_num = (
        2.0 * np.cumsum(gain)
        - offset * np.arange(1, key_o.size + 1)
        - 2.0 * quad_weight
    )
    lam0_den = np.cumsum(mu_o)
    lam0 = lam0_num / lam0_den

    feasible = 2.0 * iwl - key_o >= lam0 - _FEAS_EPS

    four_a = 4.0 * quad_weight
    numer = -2.0 * gain + offset
    v1 = lam0_den / four_a
    v2 = np.cumsum(numer * numer / mu_o) / four_a
    val = np.where(feasible, v1 * lam0 * lam0 - v2, np.inf)
    best = int(np.argmin(val))

    p = (2.0 * (rates * iwl - queues) - offset - rates * lam0[best]) / (
        2.0 * quad_weight
    )
    np.maximum(p, 0.0, out=p)
    return p


def sized_objective(
    p: np.ndarray,
    queues: np.ndarray,
    rates: np.ndarray,
    quad_weight: float,
    offset: float,
    iwl: float,
) -> float:
    """Evaluate the generalized objective at ``p`` (for tests/oracles)."""
    p = np.asarray(p, dtype=np.float64)
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    linear = (2.0 * (queues - rates * iwl) + offset) / rates
    return float(quad_weight * np.sum(p * p / rates) + np.dot(linear, p))


def sized_scd_probabilities(
    unit_queues: np.ndarray,
    rates: np.ndarray,
    num_jobs_estimate: float,
    mean_size: float,
    second_moment_size: float,
) -> tuple[float, np.ndarray]:
    """Size-aware SCD probabilities for one dispatching decision.

    Parameters
    ----------
    unit_queues:
        Pending *work units* per server.
    rates:
        Work units each server completes per round in expectation.
    num_jobs_estimate:
        Estimated number of jobs arriving system-wide this round
        (e.g. Eq. 18's ``m * a_d``).
    mean_size, second_moment_size:
        ``E[W]`` and ``E[W^2]`` of the job-size distribution.

    Returns
    -------
    (iwl, probabilities)
        The ideal workload for the estimated incoming *work*, and the
        optimal per-job destination distribution.
    """
    if mean_size <= 0:
        raise ValueError("mean job size must be positive")
    if second_moment_size < mean_size**2:
        raise ValueError("E[W^2] cannot be below E[W]^2")
    if num_jobs_estimate < 1:
        raise ValueError("estimated arrivals must be >= 1")

    unit_queues = np.asarray(unit_queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    total_work = float(num_jobs_estimate) * mean_size
    iwl = compute_iwl(unit_queues, rates, total_work)
    offset = second_moment_size / mean_size
    if num_jobs_estimate == 1:
        # With a = 1 the quadratic term vanishes (as in Eq. 9) and any
        # distribution on the argmin of the *size-adjusted* key
        # (2q + E[W^2]/wbar)/mu is optimal; return the uniform one.
        key = (2.0 * unit_queues + offset) / rates
        winners = key <= key.min() + _FEAS_EPS
        p = np.zeros(key.size, dtype=np.float64)
        p[winners] = 1.0 / winners.sum()
        return iwl, p
    probs = generalized_probabilities(
        unit_queues,
        rates,
        quad_weight=mean_size * (float(num_jobs_estimate) - 1.0),
        offset=offset,
        iwl=iwl,
    )
    return iwl, probs
