"""The paper's primary contribution: IWL, optimal probabilities, SCD, TWF."""

from .estimation import (
    ArrivalEstimator,
    ConstantEstimator,
    EwmaEstimator,
    OracleTotal,
    ScaledOwnArrivals,
    make_estimator,
)
from .iwl import compute_iba, compute_iwl, compute_iwl_reference, load_vector
from .probabilities import (
    kkt_residuals,
    priority_key,
    scd_objective,
    scd_probabilities,
    scd_probabilities_loop,
    scd_probabilities_quadratic,
    single_job_probabilities,
)
from .scd import PROBABILITY_ALGORITHMS, SCDPolicy, scd_decision
from .sized import (
    generalized_probabilities,
    sized_objective,
    sized_scd_probabilities,
)
from .sized_policy import SizedSCDPolicy
from .theory import (
    StabilityBound,
    geometric_second_moment,
    poisson_second_moment,
    strong_stability_bound,
)
from .twf import TWFPolicy, twf_probabilities

__all__ = [
    "compute_iwl",
    "compute_iwl_reference",
    "compute_iba",
    "load_vector",
    "scd_probabilities",
    "scd_probabilities_loop",
    "scd_probabilities_quadratic",
    "single_job_probabilities",
    "scd_objective",
    "kkt_residuals",
    "priority_key",
    "SCDPolicy",
    "scd_decision",
    "PROBABILITY_ALGORITHMS",
    "generalized_probabilities",
    "sized_scd_probabilities",
    "sized_objective",
    "SizedSCDPolicy",
    "TWFPolicy",
    "twf_probabilities",
    "StabilityBound",
    "strong_stability_bound",
    "poisson_second_moment",
    "geometric_second_moment",
    "ArrivalEstimator",
    "ScaledOwnArrivals",
    "OracleTotal",
    "ConstantEstimator",
    "EwmaEstimator",
    "make_estimator",
]
