"""Stochastically Coordinated Dispatching (SCD) -- the paper's Algorithm 2.

Per round, a dispatcher that received ``a_d`` jobs:

1. estimates the round's total arrivals (Eq. 18: ``a_est = m * a_d``),
2. computes the ideal workload for ``a_est`` (Algorithm 3),
3. computes the optimal probability vector ``P`` (Algorithm 4),
4. draws each job's destination i.i.d. from ``P``.

Step 4 over a whole batch is a multinomial draw.  Steps 2-3 depend only on
the shared snapshot and on ``a_est``; the two server orderings (by ``q/mu``
and by ``(2q+1)/mu``) are computed once per round and shared, and the
``(iwl, P)`` pair is cached per distinct ``a_est`` within a round
(dispatchers with equal batch sizes produce identical estimates).

The module also exposes :func:`scd_decision`, the *from-scratch* single
dispatcher computation (sorts included) used by the run-time figures, and
the :class:`SCDPolicy` supports an optional per-dispatcher connectivity
mask -- the paper's Section 7 open problem (2) -- restricting each
dispatcher to the servers it can reach.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Policy, register_policy

from .estimation import ArrivalEstimator, make_estimator
from .iwl import compute_iwl
from .probabilities import (
    scd_probabilities,
    scd_probabilities_loop,
    scd_probabilities_quadratic,
)

__all__ = ["SCDPolicy", "scd_decision", "PROBABILITY_ALGORITHMS"]

#: Selectable probability solvers (all produce the same vector).
PROBABILITY_ALGORITHMS = {
    "vectorized": scd_probabilities,
    "loop": scd_probabilities_loop,
    "quadratic": scd_probabilities_quadratic,
}


def scd_decision(
    queues: np.ndarray,
    rates: np.ndarray,
    own_arrivals: int,
    num_dispatchers: int,
    *,
    algorithm: str = "vectorized",
    estimator: ArrivalEstimator | str = "scaled",
) -> tuple[float, np.ndarray]:
    """One dispatcher's full per-round computation, from scratch.

    Performs everything Algorithm 2 charges to a single dispatcher --
    both sorts, the IWL, and the probability vector -- with no caching.
    This is the unit the run-time evaluation (Figures 5 and 8) measures.

    Returns
    -------
    (iwl, probabilities)
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    est = make_estimator(estimator)
    a_est = est.estimate(int(own_arrivals), int(num_dispatchers))
    load_order = np.argsort(queues / rates, kind="stable")
    iwl = compute_iwl(queues, rates, a_est, order=load_order)
    solver = PROBABILITY_ALGORITHMS[algorithm]
    if algorithm == "quadratic":
        probs = solver(queues, rates, a_est, iwl)
    else:
        key_order = np.argsort((2.0 * queues + 1.0) / rates, kind="stable")
        probs = solver(queues, rates, a_est, iwl, order=key_order)
    return iwl, probs


@register_policy("scd")
class SCDPolicy(Policy):
    """The SCD dispatching policy (Algorithm 2).

    Parameters
    ----------
    estimator:
        Total-arrival estimator; the paper's ``"scaled"`` (Eq. 18) by
        default.  See :mod:`repro.core.estimation`.
    algorithm:
        Probability solver: ``"vectorized"`` (default), ``"loop"``
        (faithful Algorithm 4), or ``"quadratic"`` (Algorithm 1).
    connectivity:
        Optional ``(m, n)`` boolean array; ``connectivity[d, s]`` is True
        when dispatcher ``d`` can reach server ``s``.  ``None`` (default)
        means full connectivity.  With a mask, each dispatcher solves the
        optimization restricted to its reachable servers (the Section 7
        extension); per-round caching is disabled since views differ.
    """

    name = "scd"

    def __init__(
        self,
        estimator: ArrivalEstimator | str | float = "scaled",
        algorithm: str = "vectorized",
        connectivity: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        if algorithm not in PROBABILITY_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {sorted(PROBABILITY_ALGORITHMS)}"
            )
        self.estimator = make_estimator(estimator)
        self.algorithm = algorithm
        self._solver = PROBABILITY_ALGORITHMS[algorithm]
        self.connectivity = (
            None if connectivity is None else np.asarray(connectivity, dtype=bool)
        )
        if algorithm == "quadratic":
            self.name = "scd-alg1"

    def _on_bind(self) -> None:
        n = self.ctx.num_servers
        m = self.ctx.num_dispatchers
        if self.connectivity is not None:
            if self.connectivity.shape != (m, n):
                raise ValueError(
                    f"connectivity must be shaped (m, n) = ({m}, {n}), "
                    f"got {self.connectivity.shape}"
                )
            if not self.connectivity.any(axis=1).all():
                raise ValueError("every dispatcher must reach at least one server")
        self.estimator.reset()
        self._queues: np.ndarray | None = None
        self._load_order: np.ndarray | None = None
        self._key_order: np.ndarray | None = None
        self._round_cache: dict[float, np.ndarray] = {}

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._queues = queues
        self._round_cache.clear()
        if self.connectivity is None:
            # Algorithm 2 lines 2-4: the two sorted orders for the round.
            rates = self.rates
            self._load_order = np.argsort(queues / rates, kind="stable")
            self._key_order = np.argsort((2.0 * queues + 1.0) / rates, kind="stable")

    def observe_total_arrivals(self, total: int) -> None:
        self.estimator.observe_total(total)

    def _probabilities(self, a_est: float) -> np.ndarray:
        probs = self._round_cache.get(a_est)
        if probs is None:
            queues = self._queues
            rates = self.rates
            iwl = compute_iwl(queues, rates, a_est, order=self._load_order)
            if self.algorithm == "quadratic":
                probs = self._solver(queues, rates, a_est, iwl)
            else:
                probs = self._solver(queues, rates, a_est, iwl, order=self._key_order)
            probs = probs / probs.sum()
            self._round_cache[a_est] = probs
        return probs

    def _masked_probabilities(self, dispatcher: int, a_est: float) -> np.ndarray:
        mask = self.connectivity[dispatcher]
        queues = np.asarray(self._queues, dtype=np.float64)[mask]
        rates = self.rates[mask]
        iwl = compute_iwl(queues, rates, a_est)
        sub = self._solver(queues, rates, a_est, iwl)
        probs = np.zeros(self.ctx.num_servers, dtype=np.float64)
        probs[mask] = sub / sub.sum()
        return probs

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        a_est = self.estimator.estimate(int(num_jobs), self.ctx.num_dispatchers)
        if self.connectivity is None:
            probs = self._probabilities(a_est)
        else:
            probs = self._masked_probabilities(dispatcher, a_est)
        return self.rng.multinomial(int(num_jobs), probs).astype(np.int64)


@register_policy("scd-alg1")
def _make_scd_alg1(**kwargs) -> SCDPolicy:
    """SCD with the O(n^2) Algorithm 1 solver (run-time comparator)."""
    kwargs.setdefault("algorithm", "quadratic")
    return SCDPolicy(**kwargs)
