"""Workload construction: heterogeneity profiles and paper scenarios."""

from .heterogeneity import bimodal_rates, constant_rates, make_rates, uniform_rates
from .scenarios import (
    PAPER_LOADS,
    PAPER_SYSTEMS,
    TAIL_LOADS,
    SystemSpec,
    lambdas_for_load,
    paper_system,
)

__all__ = [
    "uniform_rates",
    "bimodal_rates",
    "constant_rates",
    "make_rates",
    "SystemSpec",
    "paper_system",
    "PAPER_SYSTEMS",
    "PAPER_LOADS",
    "TAIL_LOADS",
    "lambdas_for_load",
]
