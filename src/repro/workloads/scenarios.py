"""The paper's evaluation scenarios as declarative specifications.

A :class:`SystemSpec` fixes the cluster (server count, dispatcher count,
heterogeneity profile and the seed its rates are drawn from); the offered
load ``rho`` then determines the symmetric per-dispatcher Poisson rates via

    lambda_d = rho * sum(mu) / m          (Section 6.1's definition of rho)

so that ``rho = E[total arrivals] / E[total capacity]``.  The four systems
of Figures 3/4/6/7 and the standard load grid are exported as constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .heterogeneity import make_rates

__all__ = [
    "SystemSpec",
    "lambdas_for_load",
    "paper_system",
    "PAPER_SYSTEMS",
    "PAPER_LOADS",
    "TAIL_LOADS",
]


@dataclass(frozen=True)
class SystemSpec:
    """An immutable cluster description.

    Attributes
    ----------
    num_servers, num_dispatchers:
        ``n`` and ``m``.
    profile:
        Heterogeneity profile name (see
        :mod:`repro.workloads.heterogeneity`).
    rate_seed:
        Seed for drawing the rate vector; fixed per spec so every policy
        and load sees the same servers.
    """

    num_servers: int
    num_dispatchers: int
    profile: str = "u1_10"
    rate_seed: int = 7

    def __post_init__(self) -> None:
        if self.num_servers < 1 or self.num_dispatchers < 1:
            raise ValueError("need at least one server and one dispatcher")

    @property
    def name(self) -> str:
        """Identifier like ``n100_m10_u1_10`` used in results and seeds."""
        return f"n{self.num_servers}_m{self.num_dispatchers}_{self.profile}"

    def rates(self) -> np.ndarray:
        """Draw (deterministically) this system's server rate vector."""
        rng = np.random.default_rng(
            np.random.SeedSequence((self.rate_seed, self.num_servers))
        )
        return make_rates(self.profile, self.num_servers, rng)

    def lambdas(self, rho: float, weights: np.ndarray | None = None) -> np.ndarray:
        """Per-dispatcher Poisson rates giving offered load ``rho``."""
        return lambdas_for_load(rho, self.rates(), self.num_dispatchers, weights)


def lambdas_for_load(
    rho: float,
    rates: np.ndarray,
    num_dispatchers: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Arrival rates realizing offered load ``rho``.

    By default the traffic splits symmetrically, ``lambda_d = rho *
    sum(mu) / m`` (the paper's setup).  ``weights`` skews the split --
    dispatcher ``d`` receives the fraction ``weights[d] / sum(weights)``
    of the total -- which stresses SCD's Eq. 18 estimator (it assumes all
    dispatchers receive alike; see the skew ablation benchmark).

    ``rho`` may be >= 1 only for instability experiments; the admissible
    regime the paper studies is ``rho < 1``.
    """
    if rho < 0:
        raise ValueError("offered load must be non-negative")
    rates = np.asarray(rates, dtype=np.float64)
    total = rho * float(rates.sum())
    if weights is None:
        return np.full(num_dispatchers, total / num_dispatchers)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (num_dispatchers,):
        raise ValueError(
            f"weights must have one entry per dispatcher ({num_dispatchers}), "
            f"got shape {weights.shape}"
        )
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with a positive sum")
    return total * weights / weights.sum()


def paper_system(
    num_servers: int,
    num_dispatchers: int,
    profile: str = "u1_10",
) -> SystemSpec:
    """A system with the paper's standard rate seed."""
    return SystemSpec(num_servers, num_dispatchers, profile)


#: The four (n, m) systems of Figures 3a/4a/6a/7a, per profile.
PAPER_SYSTEMS: dict[str, tuple[SystemSpec, ...]] = {
    profile: (
        paper_system(100, 5, profile),
        paper_system(100, 10, profile),
        paper_system(200, 10, profile),
        paper_system(200, 20, profile),
    )
    for profile in ("u1_10", "u1_100")
}

#: Offered-load grid of the mean-response figures.
PAPER_LOADS: tuple[float, ...] = (0.60, 0.70, 0.80, 0.90, 0.95, 0.99)

#: Loads at which the paper reports response-time tails (Figures 3b/4b).
TAIL_LOADS: tuple[float, ...] = (0.70, 0.90, 0.99)
