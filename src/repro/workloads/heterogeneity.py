"""Server-rate heterogeneity profiles.

The paper evaluates two profiles: *moderate* heterogeneity from mixed CPU
generations (``mu_s ~ U[1, 10]``, Figures 3/5/6) and *high* heterogeneity
from accelerators (``mu_s ~ U[1, 100]``, Figures 4/7/8).  The bimodal
profile models the accelerator story explicitly (a CPU fleet plus a small
fraction of much faster devices) and is used in the examples.

Rate vectors are drawn from a dedicated seed, so the same system
specification always has the same servers across policies and loads.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_rates",
    "bimodal_rates",
    "constant_rates",
    "make_rates",
]


def _resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def uniform_rates(
    num_servers: int,
    low: float = 1.0,
    high: float = 10.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Rates drawn uniformly from the real interval ``[low, high]``."""
    if num_servers < 1:
        raise ValueError("need at least one server")
    if not 0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
    return _resolve_rng(rng).uniform(low, high, size=num_servers)


def bimodal_rates(
    num_servers: int,
    slow: float = 1.0,
    fast: float = 50.0,
    fast_fraction: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A slow CPU fleet with a fraction of fast accelerator servers.

    Exactly ``round(fast_fraction * n)`` servers (at least one) get the
    ``fast`` rate; positions are randomized.
    """
    if num_servers < 1:
        raise ValueError("need at least one server")
    if not 0.0 <= fast_fraction <= 1.0:
        raise ValueError("fast_fraction must be in [0, 1]")
    if slow <= 0 or fast <= 0:
        raise ValueError("rates must be positive")
    rates = np.full(num_servers, float(slow))
    num_fast = max(1, int(round(fast_fraction * num_servers))) if fast_fraction > 0 else 0
    if num_fast:
        positions = _resolve_rng(rng).choice(num_servers, size=num_fast, replace=False)
        rates[positions] = float(fast)
    return rates


def constant_rates(num_servers: int, value: float = 1.0) -> np.ndarray:
    """A homogeneous system (where SCD coincides with TWF)."""
    if num_servers < 1:
        raise ValueError("need at least one server")
    if value <= 0:
        raise ValueError("rates must be positive")
    return np.full(num_servers, float(value))


#: Named profiles accepted by :func:`make_rates` and the scenario registry.
_PROFILES = {
    "u1_10": lambda n, rng: uniform_rates(n, 1.0, 10.0, rng),
    "u1_100": lambda n, rng: uniform_rates(n, 1.0, 100.0, rng),
    "bimodal": lambda n, rng: bimodal_rates(n, rng=rng),
    "homogeneous": lambda n, rng: constant_rates(n),
}


def make_rates(
    profile: str,
    num_servers: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Build a rate vector from a named profile.

    Profiles: ``"u1_10"`` (paper case 1), ``"u1_100"`` (paper case 2),
    ``"bimodal"``, ``"homogeneous"``.
    """
    try:
        factory = _PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ValueError(f"unknown profile {profile!r}; known: {known}") from None
    return factory(num_servers, rng)
