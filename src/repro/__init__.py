"""repro -- Stochastic Coordination in Heterogeneous Load Balancing Systems.

A complete reproduction of Goren, Vargaftik & Moses (PODC 2021): the SCD
dispatching policy and its supporting mathematics, ten baseline policies,
and a synchronous-round cluster simulator with the paper's evaluation
protocol exposed as a declarative :class:`Experiment` grid.

Quickstart
----------
Declare the evaluation grid -- policies x systems x loads x replications
(x workloads) -- and run it, serially or on a process pool:

>>> import repro
>>> exp = repro.Experiment(
...     policies=["scd", "jsq", "sed"],
...     systems=repro.SystemSpec(num_servers=50, num_dispatchers=5),
...     loads=[0.7, 0.9],
...     replications=2,
...     rounds=2000,
... )
>>> result = exp.run(workers=4)        # same records as workers=1
>>> result.best_policy_at(0.9)  # doctest: +SKIP
'scd'

Workloads are pluggable (``repro.WorkloadSpec.skewed(3.0)``,
``.bursty()``, ``.sized(...)``, or arbitrary arrival/service factories);
the default is the paper's Poisson+geometric workload, and single runs
through the legacy helper reproduce it bit-for-bit:

>>> system = repro.SystemSpec(num_servers=50, num_dispatchers=5, profile="u1_10")
>>> single = repro.run_simulation("scd", system, rho=0.9,
...                               config=repro.ExperimentConfig(rounds=2000))
>>> single.mean_response_time  # doctest: +SKIP
2.1...

The core math is importable directly:

>>> import numpy as np
>>> q, mu = np.array([2, 1, 3, 1]), np.array([5.0, 2.0, 1.0, 1.0])
>>> repro.compute_iwl(q, mu, arrivals=7)   # Figure 1's ideal workload
1.375
"""

from .analysis.ccdf import ccdf_series, tail_improvement_factor, tail_quantiles
from .analysis.replication import (
    ReplicatedResult,
    paired_comparison,
    replicated_runs,
)
from .analysis.herding import HerdingProbe, HerdingStats
from .analysis.persistence import (
    load_experiment,
    load_result,
    load_sweep,
    save_experiment,
    save_result,
    save_sweep,
)
from .analysis.runner import (
    ExperimentConfig,
    SweepResult,
    mean_response_sweep,
    run_simulation,
    tail_experiment,
)
from .analysis.stability import StabilityVerdict, assess_stability
from .analysis.tables import format_series_table, format_table
from .experiments import (
    BurstyArrivalFactory,
    Cell,
    CellRecord,
    Executor,
    Experiment,
    ExperimentResult,
    PolicySpec,
    ProcessPoolExecutor,
    SerialExecutor,
    WorkloadSpec,
    simulate_cell,
)
from .core.estimation import (
    ArrivalEstimator,
    ConstantEstimator,
    EwmaEstimator,
    OracleTotal,
    ScaledOwnArrivals,
    make_estimator,
)
from .core.iwl import compute_iba, compute_iwl, compute_iwl_reference
from .core.probabilities import (
    kkt_residuals,
    scd_objective,
    scd_probabilities,
    scd_probabilities_loop,
    scd_probabilities_quadratic,
    single_job_probabilities,
)
from .core.scd import SCDPolicy, scd_decision
from .core.sized import (
    generalized_probabilities,
    sized_objective,
    sized_scd_probabilities,
)
from .core.sized_policy import SizedSCDPolicy
from .core.theory import (
    StabilityBound,
    geometric_second_moment,
    poisson_second_moment,
    strong_stability_bound,
)
from .core.twf import TWFPolicy, twf_probabilities
from .policies.base import Policy, SystemContext, available_policies, make_policy
from .policies.greedy import greedy_batch_assign, greedy_batch_assign_heap
from .sim.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    ModulatedPoissonArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from .sim.backends import (
    EngineBackend,
    FastBackend,
    ReferenceBackend,
    available_backends,
    backend_descriptions,
    make_backend,
    register_backend,
)
from .sim.batchstore import BatchQueueStore, SizedBatchQueueStore
from .sim.engine import Simulation, SimulationConfig, SimulationResult, simulate
from .sim.metrics import QueueLengthSeries, ResponseTimeHistogram
from .sim.probes import (
    DEFAULT_PROBE_LABELS,
    DispatcherStatsProbe,
    HerdingSignalProbe,
    Probe,
    ProbeBlock,
    ProbeContext,
    ProbeSet,
    ProbeSpec,
    QueueSeriesProbe,
    ResponseTimeProbe,
    ServerStatsProbe,
    WindowedMeanProbe,
    available_probes,
    make_probe,
    probe_descriptions,
    probe_from_state,
    register_probe,
)
from .sim.seeding import derive_seed, spawn_streams
from .sim.server import ServerQueue
from .sim.sharding import ShardedBackend, ShardPlan, SizedShardedBackend
from .sim.sized import (
    BimodalSize,
    DeterministicSize,
    GeometricSize,
    JobSizeDistribution,
    SizedServerQueue,
    SizedSimulation,
    SizedSimulationResult,
)
from .sim.sizedbackends import (
    SizedEngineBackend,
    SizedFastBackend,
    SizedReferenceBackend,
    available_sized_backends,
    make_sized_backend,
    register_sized_backend,
    sized_backend_descriptions,
)
from .sim.service import (
    DeterministicService,
    GeometricService,
    ServiceProcess,
    TraceService,
)
from .workloads.heterogeneity import (
    bimodal_rates,
    constant_rates,
    make_rates,
    uniform_rates,
)
from .workloads.scenarios import (
    PAPER_LOADS,
    PAPER_SYSTEMS,
    TAIL_LOADS,
    SystemSpec,
    lambdas_for_load,
    paper_system,
)

__version__ = "1.0.0"

__all__ = [
    # declarative experiments
    "Experiment",
    "ExperimentResult",
    "WorkloadSpec",
    "PolicySpec",
    "Cell",
    "CellRecord",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "BurstyArrivalFactory",
    "simulate_cell",
    "save_experiment",
    "load_experiment",
    # core math
    "compute_iwl",
    "compute_iwl_reference",
    "compute_iba",
    "scd_probabilities",
    "scd_probabilities_loop",
    "scd_probabilities_quadratic",
    "single_job_probabilities",
    "scd_objective",
    "kkt_residuals",
    "scd_decision",
    "twf_probabilities",
    "generalized_probabilities",
    "sized_scd_probabilities",
    "sized_objective",
    "SizedSCDPolicy",
    # estimators
    "ArrivalEstimator",
    "ScaledOwnArrivals",
    "OracleTotal",
    "ConstantEstimator",
    "EwmaEstimator",
    "make_estimator",
    # policies
    "Policy",
    "SystemContext",
    "SCDPolicy",
    "TWFPolicy",
    "make_policy",
    "available_policies",
    "greedy_batch_assign",
    "greedy_batch_assign_heap",
    # simulation
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "simulate",
    "EngineBackend",
    "ReferenceBackend",
    "FastBackend",
    "register_backend",
    "make_backend",
    "available_backends",
    "backend_descriptions",
    "SizedEngineBackend",
    "SizedReferenceBackend",
    "SizedFastBackend",
    "register_sized_backend",
    "make_sized_backend",
    "available_sized_backends",
    "sized_backend_descriptions",
    "ShardPlan",
    "ShardedBackend",
    "SizedShardedBackend",
    "BatchQueueStore",
    "SizedBatchQueueStore",
    "ServerQueue",
    # observability probes
    "Probe",
    "ProbeSpec",
    "ProbeSet",
    "ProbeContext",
    "ProbeBlock",
    "ResponseTimeProbe",
    "QueueSeriesProbe",
    "ServerStatsProbe",
    "DispatcherStatsProbe",
    "WindowedMeanProbe",
    "HerdingSignalProbe",
    "register_probe",
    "make_probe",
    "available_probes",
    "probe_descriptions",
    "probe_from_state",
    "DEFAULT_PROBE_LABELS",
    "ResponseTimeHistogram",
    "JobSizeDistribution",
    "DeterministicSize",
    "GeometricSize",
    "BimodalSize",
    "SizedServerQueue",
    "SizedSimulation",
    "SizedSimulationResult",
    "QueueLengthSeries",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "ModulatedPoissonArrivals",
    "ServiceProcess",
    "GeometricService",
    "DeterministicService",
    "TraceService",
    "spawn_streams",
    "derive_seed",
    # workloads
    "SystemSpec",
    "paper_system",
    "PAPER_SYSTEMS",
    "PAPER_LOADS",
    "TAIL_LOADS",
    "lambdas_for_load",
    "uniform_rates",
    "bimodal_rates",
    "constant_rates",
    "make_rates",
    # analysis
    "ExperimentConfig",
    "run_simulation",
    "mean_response_sweep",
    "tail_experiment",
    "SweepResult",
    "ReplicatedResult",
    "replicated_runs",
    "paired_comparison",
    "ccdf_series",
    "tail_quantiles",
    "tail_improvement_factor",
    "assess_stability",
    "StabilityVerdict",
    "HerdingProbe",
    "HerdingStats",
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "StabilityBound",
    "strong_stability_bound",
    "poisson_second_moment",
    "geometric_second_moment",
    "format_table",
    "format_series_table",
]
