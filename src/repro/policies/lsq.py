"""Local-Shortest-Queue (LSQ) and its heterogeneity-aware variant hLSQ.

LSQ-style policies [Vargaftik et al., ToN 2020] give each dispatcher a
*local array* of queue-length estimates and dispatch greedily against that
array rather than against the true state.  The local arrays are updated by

* **self-increments** -- a dispatcher adds its own assignments to its
  estimates (it knows what it sent), and
* **random sampling** -- the dispatcher queries random servers for their
  true queue length and overwrites those entries.

Because each dispatcher samples different servers, the dispatchers' views
decorrelate, which is what suppresses (though does not eliminate) herding.
The hLSQ variant ranks by local expected delay ``q_est/mu`` and samples
servers proportionally to their rates (paper footnote 6).

LSQ's native model processes one job per time slot and samples one server
per job; a round here batches ``a_d`` jobs, so the faithful adaptation
samples ``ceil(samples_per_job * a_d)`` servers per dispatcher per round
(default one sample per job, the classic LSQ budget).

The sampled refreshes are vectorized across dispatchers: one RNG draw
per round covers every dispatcher's budget (numpy fills draws element by
element, so the realization -- and the stream position -- is exactly the
per-dispatcher loop's), and one fancy assignment applies all refreshes.
Together with the native :meth:`LSQPolicy.dispatch_round` this is the
batch-protocol path on the fast kernels, bit-identical to the
per-dispatcher fallback it replaces.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy
from .greedy import greedy_batch_assign

__all__ = ["LSQPolicy"]


class LSQPolicy(Policy):
    """LSQ / hLSQ with per-dispatcher local estimate arrays."""

    def __init__(
        self,
        heterogeneity_aware: bool = False,
        samples_per_job: float = 1.0,
    ) -> None:
        super().__init__()
        if samples_per_job <= 0:
            raise ValueError("samples_per_job must be positive")
        self.heterogeneity_aware = bool(heterogeneity_aware)
        self.samples_per_job = float(samples_per_job)
        self.name = "hlsq" if heterogeneity_aware else "lsq"

    def _on_bind(self) -> None:
        m = self.ctx.num_dispatchers
        n = self.ctx.num_servers
        # Optimistic zero initialization, as in the LSQ paper; the sampled
        # refreshes correct the estimates within a few rounds.
        self._local = np.zeros((m, n), dtype=np.float64)
        self._batch_sizes = np.zeros(m, dtype=np.int64)
        if self.heterogeneity_aware:
            weights = self.rates / self.rates.sum()
            self._sampling_cdf: np.ndarray | None = np.cumsum(weights)
            self._rank_rates = self.rates
        else:
            self._sampling_cdf = None
            self._rank_rates = np.ones(n, dtype=np.float64)

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._batch_sizes[:] = 0

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        estimates = self._local[dispatcher]
        counts = greedy_batch_assign(estimates, self._rank_rates, num_jobs)
        estimates += counts
        self._batch_sizes[dispatcher] = num_jobs
        return counts

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """Native batch protocol, bit-identical to the fallback.

        Each dispatcher ranks against its *own* local estimate array --
        sequential per-dispatcher state -- so the greedy itself cannot
        fuse across dispatchers; the win of going native is pairing
        with the vectorized :meth:`end_round` refresh (one RNG draw per
        round instead of one per dispatcher) while skipping the empty
        batches up front.
        """
        assert self.ctx is not None, "policy used before bind()"
        rows = np.zeros(
            (self.ctx.num_dispatchers, self.ctx.num_servers), dtype=np.int64
        )
        batch = np.asarray(batch, dtype=np.int64)
        for d in np.flatnonzero(batch):
            rows[d] = self.dispatch(int(d), int(batch[d]))
        return rows

    def _sample_servers(self, count: int) -> np.ndarray:
        n = self.ctx.num_servers
        if self._sampling_cdf is None:
            return self.rng.integers(0, n, size=count)
        return np.searchsorted(self._sampling_cdf, self.rng.random(count))

    def end_round(self, round_index: int, queues: np.ndarray) -> None:
        # One draw covers every active dispatcher's sampling budget.
        # numpy fills random output element by element, so the single
        # draw realizes exactly the per-dispatcher draws it replaces
        # (bit-identical stream consumption, dispatcher order).
        active = np.flatnonzero(self._batch_sizes)
        if active.size == 0:
            return
        budgets = np.maximum(
            1,
            np.ceil(self.samples_per_job * self._batch_sizes[active]).astype(
                np.int64
            ),
        )
        sampled = self._sample_servers(int(budgets.sum()))
        rows = np.repeat(active, budgets)
        # Duplicate (dispatcher, server) pairs all write queues[server]:
        # order inside the fancy assignment cannot matter.
        self._local[rows, sampled] = queues[sampled]


@register_policy("lsq")
def _make_lsq(samples_per_job: float = 1.0) -> LSQPolicy:
    return LSQPolicy(heterogeneity_aware=False, samples_per_job=samples_per_job)


@register_policy("hlsq")
def _make_hlsq(samples_per_job: float = 1.0) -> LSQPolicy:
    return LSQPolicy(heterogeneity_aware=True, samples_per_job=samples_per_job)
