"""Local-Shortest-Queue (LSQ) and its heterogeneity-aware variant hLSQ.

LSQ-style policies [Vargaftik et al., ToN 2020] give each dispatcher a
*local array* of queue-length estimates and dispatch greedily against that
array rather than against the true state.  The local arrays are updated by

* **self-increments** -- a dispatcher adds its own assignments to its
  estimates (it knows what it sent), and
* **random sampling** -- the dispatcher queries random servers for their
  true queue length and overwrites those entries.

Because each dispatcher samples different servers, the dispatchers' views
decorrelate, which is what suppresses (though does not eliminate) herding.
The hLSQ variant ranks by local expected delay ``q_est/mu`` and samples
servers proportionally to their rates (paper footnote 6).

LSQ's native model processes one job per time slot and samples one server
per job; a round here batches ``a_d`` jobs, so the faithful adaptation
samples ``ceil(samples_per_job * a_d)`` servers per dispatcher per round
(default one sample per job, the classic LSQ budget).
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy
from .greedy import greedy_batch_assign

__all__ = ["LSQPolicy"]


class LSQPolicy(Policy):
    """LSQ / hLSQ with per-dispatcher local estimate arrays."""

    def __init__(
        self,
        heterogeneity_aware: bool = False,
        samples_per_job: float = 1.0,
    ) -> None:
        super().__init__()
        if samples_per_job <= 0:
            raise ValueError("samples_per_job must be positive")
        self.heterogeneity_aware = bool(heterogeneity_aware)
        self.samples_per_job = float(samples_per_job)
        self.name = "hlsq" if heterogeneity_aware else "lsq"

    def _on_bind(self) -> None:
        m = self.ctx.num_dispatchers
        n = self.ctx.num_servers
        # Optimistic zero initialization, as in the LSQ paper; the sampled
        # refreshes correct the estimates within a few rounds.
        self._local = np.zeros((m, n), dtype=np.float64)
        self._batch_sizes = np.zeros(m, dtype=np.int64)
        if self.heterogeneity_aware:
            weights = self.rates / self.rates.sum()
            self._sampling_cdf: np.ndarray | None = np.cumsum(weights)
            self._rank_rates = self.rates
        else:
            self._sampling_cdf = None
            self._rank_rates = np.ones(n, dtype=np.float64)

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._batch_sizes[:] = 0

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        estimates = self._local[dispatcher]
        counts = greedy_batch_assign(estimates, self._rank_rates, num_jobs)
        estimates += counts
        self._batch_sizes[dispatcher] = num_jobs
        return counts

    def _sample_servers(self, count: int) -> np.ndarray:
        n = self.ctx.num_servers
        if self._sampling_cdf is None:
            return self.rng.integers(0, n, size=count)
        return np.searchsorted(self._sampling_cdf, self.rng.random(count))

    def end_round(self, round_index: int, queues: np.ndarray) -> None:
        for d in range(self.ctx.num_dispatchers):
            batch = int(self._batch_sizes[d])
            if batch == 0:
                continue
            budget = max(1, int(np.ceil(self.samples_per_job * batch)))
            sampled = self._sample_servers(budget)
            self._local[d, sampled] = queues[sampled]


@register_policy("lsq")
def _make_lsq(samples_per_job: float = 1.0) -> LSQPolicy:
    return LSQPolicy(heterogeneity_aware=False, samples_per_job=samples_per_job)


@register_policy("hlsq")
def _make_hlsq(samples_per_job: float = 1.0) -> LSQPolicy:
    return LSQPolicy(heterogeneity_aware=True, samples_per_job=samples_per_job)
