"""Power-of-d-choices policies: JSQ(d) and hJSQ(d).

For each arriving job the dispatcher samples ``d`` servers and sends the
job to the best of the sample.  The classic JSQ(d) samples uniformly and
ranks by queue length; the heterogeneity-aware hJSQ(d) of the paper's
footnote 6 samples server ``s`` with probability ``mu_s / sum(mu)`` and
ranks by expected delay ``q_s / mu_s``.

Sampling is per *job* (that is the mechanism that breaks dispatcher
symmetry), and a dispatcher tracks its own within-round assignments, so two
of its jobs landing on the same sampled server see the incremented queue.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy

__all__ = ["PowerOfDPolicy"]


class PowerOfDPolicy(Policy):
    """JSQ(d) / hJSQ(d), parameterized by sample size and awareness.

    Parameters
    ----------
    d:
        Number of servers sampled per job (``d >= 1``); ``d = 2`` is the
        paper's configuration.
    heterogeneity_aware:
        ``False`` for JSQ(d) (uniform sampling, rank by ``q``); ``True``
        for hJSQ(d) (rate-proportional sampling, rank by ``q/mu``).
    """

    def __init__(self, d: int = 2, heterogeneity_aware: bool = False) -> None:
        super().__init__()
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self.heterogeneity_aware = bool(heterogeneity_aware)
        self.name = f"hjsq({d})" if heterogeneity_aware else f"jsq({d})"

    def _on_bind(self) -> None:
        n = self.ctx.num_servers
        if self.heterogeneity_aware:
            weights = self.rates / self.rates.sum()
            self._sampling_cdf: np.ndarray | None = np.cumsum(weights)
            self._inv_rates = (1.0 / self.rates).tolist()
        else:
            self._sampling_cdf = None
            self._inv_rates = [1.0] * n
        self._queues: np.ndarray | None = None

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._queues = queues

    def _sample_servers(self, count: int) -> np.ndarray:
        """Draw a (count, d) array of candidate server indices."""
        n = self.ctx.num_servers
        if self._sampling_cdf is None:
            return self.rng.integers(0, n, size=(count, self.d))
        u = self.rng.random((count, self.d))
        return np.searchsorted(self._sampling_cdf, u)

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        n = self.ctx.num_servers
        counts = np.zeros(n, dtype=np.int64)
        if num_jobs <= 0:
            return counts
        samples = self._sample_servers(int(num_jobs)).tolist()
        # Local view: snapshot ranks plus this dispatcher's own assignments.
        rank = (self._queues.astype(np.float64) * np.asarray(self._inv_rates)).tolist()
        self._assign(samples, rank, counts)
        return counts

    def _assign(self, samples: list, rank: list, counts: np.ndarray) -> None:
        """Sequentially place one job per candidate tuple, best-of-sample."""
        inv_rates = self._inv_rates
        for candidates in samples:
            best = candidates[0]
            best_rank = rank[best]
            for s in candidates[1:]:
                r = rank[s]
                if r < best_rank:
                    best = s
                    best_rank = r
            counts[best] += 1
            rank[best] = best_rank + inv_rates[best]

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """Native batch path: one candidate draw for the whole round.

        All dispatchers' per-job samples are drawn in a single RNG call
        and the shared snapshot ranks are materialized once; the
        sequential best-of-sample selection (with each dispatcher's own
        within-round increments) is unchanged, so the assignment law is
        identical while the per-dispatcher numpy overhead disappears.
        Statistically (not bit-) equivalent to the reference loop: the
        RNG stream is consumed in one gulp instead of ``m``.
        """
        n = self.ctx.num_servers
        m = self.ctx.num_dispatchers
        batch = np.asarray(batch, dtype=np.int64)
        rows = np.zeros((m, n), dtype=np.int64)
        total = int(batch.sum())
        if total == 0:
            return rows
        samples = self._sample_servers(total).tolist()
        base_rank = (queues.astype(np.float64) * np.asarray(self._inv_rates)).tolist()
        offset = 0
        for d in np.flatnonzero(batch):
            k = int(batch[d])
            self._assign(samples[offset : offset + k], list(base_rank), rows[d])
            offset += k
        return rows


@register_policy("jsq(d)")
def _make_jsq_d(d: int = 2) -> PowerOfDPolicy:
    return PowerOfDPolicy(d=d, heterogeneity_aware=False)


@register_policy("jsq(2)")
def _make_jsq_2() -> PowerOfDPolicy:
    return PowerOfDPolicy(d=2, heterogeneity_aware=False)


@register_policy("hjsq(d)")
def _make_hjsq_d(d: int = 2) -> PowerOfDPolicy:
    return PowerOfDPolicy(d=d, heterogeneity_aware=True)


@register_policy("hjsq(2)")
def _make_hjsq_2() -> PowerOfDPolicy:
    return PowerOfDPolicy(d=2, heterogeneity_aware=True)
