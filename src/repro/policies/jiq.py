"""Join-the-Idle-Queue (JIQ) and its heterogeneity-aware variant hJIQ.

A JIQ dispatcher forwards jobs only to *idle* servers (empty queue at the
round's snapshot); once it has used up the idle servers it knows about, the
remaining jobs go to random servers.  The paper's hJIQ variant (footnote 6)
replaces both uniform choices with rate-proportional ones: idle servers are
picked with probability proportional to ``mu_s`` and the random fallback is
weighted-random.

Each dispatcher consumes the idle set *independently* -- dispatchers do not
see each other's assignments, so at moderate load many dispatchers pile
onto the same few idle servers.  That correlation, plus the random fallback
at high load, is exactly why JIQ degrades as load grows (Section 1.1).

The batch protocol (:meth:`JIQPolicy.dispatch_round`) exploits exactly
that high-load regime: in rounds whose idle set is *empty* -- the common
case near saturation, where the fast kernels matter -- every job takes
the random fallback, and one fused RNG draw covers all dispatchers
(numpy fills random output element by element, so the realization and
stream position match the per-dispatcher loop bit for bit).  Rounds with
idle servers keep the sequential per-dispatcher draws, whose
permutation/weighted-choice sampling cannot fuse.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy

__all__ = ["JIQPolicy"]


class JIQPolicy(Policy):
    """JIQ / hJIQ, parameterized by heterogeneity awareness."""

    def __init__(self, heterogeneity_aware: bool = False) -> None:
        super().__init__()
        self.heterogeneity_aware = bool(heterogeneity_aware)
        self.name = "hjiq" if heterogeneity_aware else "jiq"

    def _on_bind(self) -> None:
        if self.heterogeneity_aware:
            weights = self.rates / self.rates.sum()
            self._fallback_cdf: np.ndarray | None = np.cumsum(weights)
        else:
            self._fallback_cdf = None
        self._idle: np.ndarray | None = None

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._idle = np.flatnonzero(queues == 0)

    def _pick_idle(self, budget: int) -> np.ndarray:
        """Choose up to ``budget`` *distinct* idle servers for one dispatcher."""
        idle = self._idle
        take = min(budget, idle.size)
        if take == 0:
            return idle[:0]
        if self._fallback_cdf is None:
            return self.rng.permutation(idle)[:take]
        weights = self.rates[idle]
        return self.rng.choice(idle, size=take, replace=False, p=weights / weights.sum())

    def _pick_fallback(self, count: int) -> np.ndarray:
        """Random destinations once no idle servers remain."""
        n = self.ctx.num_servers
        if self._fallback_cdf is None:
            return self.rng.integers(0, n, size=count)
        return np.searchsorted(self._fallback_cdf, self.rng.random(count))

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        n = self.ctx.num_servers
        counts = np.zeros(n, dtype=np.int64)
        if num_jobs <= 0:
            return counts
        k = int(num_jobs)
        chosen_idle = self._pick_idle(k)
        counts[chosen_idle] += 1
        rest = k - chosen_idle.size
        if rest > 0:
            fallback = self._pick_fallback(rest)
            np.add.at(counts, fallback, 1)
        return counts

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """Native batch protocol, bit-identical to the fallback.

        With no idle servers this round, ``dispatch`` would draw only
        the random fallback for each dispatcher in index order; one
        fused draw realizes exactly those element-by-element fills.
        With idle servers present the per-dispatcher loop runs
        unchanged (distinct-idle sampling is sequential by nature).
        """
        assert self.ctx is not None, "policy used before bind()"
        rows = np.zeros(
            (self.ctx.num_dispatchers, self.ctx.num_servers), dtype=np.int64
        )
        batch = np.asarray(batch, dtype=np.int64)
        active = np.flatnonzero(batch)
        if active.size == 0:
            return rows
        if self._idle is not None and self._idle.size:
            for d in active:
                rows[d] = self.dispatch(int(d), int(batch[d]))
            return rows
        # Empty idle set: _pick_idle consumes no randomness, every job
        # falls back.  Scatter the fused draw back to dispatcher rows.
        sizes = batch[active]
        fallback = self._pick_fallback(int(sizes.sum()))
        np.add.at(rows, (np.repeat(active, sizes), fallback), 1)
        return rows


@register_policy("jiq")
def _make_jiq() -> JIQPolicy:
    return JIQPolicy(heterogeneity_aware=False)


@register_policy("hjiq")
def _make_hjiq() -> JIQPolicy:
    return JIQPolicy(heterogeneity_aware=True)
