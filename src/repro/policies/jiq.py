"""Join-the-Idle-Queue (JIQ) and its heterogeneity-aware variant hJIQ.

A JIQ dispatcher forwards jobs only to *idle* servers (empty queue at the
round's snapshot); once it has used up the idle servers it knows about, the
remaining jobs go to random servers.  The paper's hJIQ variant (footnote 6)
replaces both uniform choices with rate-proportional ones: idle servers are
picked with probability proportional to ``mu_s`` and the random fallback is
weighted-random.

Each dispatcher consumes the idle set *independently* -- dispatchers do not
see each other's assignments, so at moderate load many dispatchers pile
onto the same few idle servers.  That correlation, plus the random fallback
at high load, is exactly why JIQ degrades as load grows (Section 1.1).
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy

__all__ = ["JIQPolicy"]


class JIQPolicy(Policy):
    """JIQ / hJIQ, parameterized by heterogeneity awareness."""

    def __init__(self, heterogeneity_aware: bool = False) -> None:
        super().__init__()
        self.heterogeneity_aware = bool(heterogeneity_aware)
        self.name = "hjiq" if heterogeneity_aware else "jiq"

    def _on_bind(self) -> None:
        if self.heterogeneity_aware:
            weights = self.rates / self.rates.sum()
            self._fallback_cdf: np.ndarray | None = np.cumsum(weights)
        else:
            self._fallback_cdf = None
        self._idle: np.ndarray | None = None

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._idle = np.flatnonzero(queues == 0)

    def _pick_idle(self, budget: int) -> np.ndarray:
        """Choose up to ``budget`` *distinct* idle servers for one dispatcher."""
        idle = self._idle
        take = min(budget, idle.size)
        if take == 0:
            return idle[:0]
        if self._fallback_cdf is None:
            return self.rng.permutation(idle)[:take]
        weights = self.rates[idle]
        return self.rng.choice(idle, size=take, replace=False, p=weights / weights.sum())

    def _pick_fallback(self, count: int) -> np.ndarray:
        """Random destinations once no idle servers remain."""
        n = self.ctx.num_servers
        if self._fallback_cdf is None:
            return self.rng.integers(0, n, size=count)
        return np.searchsorted(self._fallback_cdf, self.rng.random(count))

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        n = self.ctx.num_servers
        counts = np.zeros(n, dtype=np.int64)
        if num_jobs <= 0:
            return counts
        k = int(num_jobs)
        chosen_idle = self._pick_idle(k)
        counts[chosen_idle] += 1
        rest = k - chosen_idle.size
        if rest > 0:
            fallback = self._pick_fallback(rest)
            np.add.at(counts, fallback, 1)
        return counts


@register_policy("jiq")
def _make_jiq() -> JIQPolicy:
    return JIQPolicy(heterogeneity_aware=False)


@register_policy("hjiq")
def _make_hjiq() -> JIQPolicy:
    return JIQPolicy(heterogeneity_aware=True)
