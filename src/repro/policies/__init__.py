"""Dispatching policies: SCD's baselines and the policy framework.

Importing this package registers every policy with the name registry, so
``make_policy("hlsq")`` etc. work after ``import repro.policies``.
"""

from .base import Policy, SystemContext, available_policies, make_policy, register_policy
from .greedy import greedy_batch_assign, greedy_batch_assign_heap, greedy_certificate_ok
from .jiq import JIQPolicy
from .jsq import JSQPolicy, SEDPolicy
from .led import LEDPolicy
from .lsq import LSQPolicy
from .power_of_d import PowerOfDPolicy
from .random_policies import UniformRandomPolicy, WeightedRandomPolicy
from .round_robin import RoundRobinPolicy, WeightedRoundRobinPolicy

__all__ = [
    "Policy",
    "SystemContext",
    "make_policy",
    "available_policies",
    "register_policy",
    "greedy_batch_assign",
    "greedy_batch_assign_heap",
    "greedy_certificate_ok",
    "JSQPolicy",
    "SEDPolicy",
    "PowerOfDPolicy",
    "JIQPolicy",
    "LSQPolicy",
    "LEDPolicy",
    "RoundRobinPolicy",
    "WeightedRoundRobinPolicy",
    "WeightedRandomPolicy",
    "UniformRandomPolicy",
]
