"""Dispatching-policy framework.

Every load-balancing technique in the paper (SCD and the ten baselines) is
a :class:`Policy`.  The simulation engine drives policies through a small
life-cycle:

1. :meth:`Policy.bind` -- once per simulation, with the immutable
   :class:`SystemContext` (server rates, dimensions, RNG stream).
2. :meth:`Policy.begin_round` -- once per round with the queue-length
   snapshot all dispatchers observe (the model of Section 2 gives every
   dispatcher the same `q_s(t)`).
3. :meth:`Policy.dispatch` -- once per dispatcher with a non-empty batch;
   returns per-server job counts for that dispatcher's whole batch.  The
   vectorized engine backend instead makes one :meth:`Policy.dispatch_round`
   call per round (the *batch protocol*); its base implementation falls
   back to looping ``dispatch``, and snapshot-only policies override it
   with a native numpy path.
4. :meth:`Policy.end_round` -- after departures, with the updated queues
   (used by policies with local state, e.g. LSQ's sampled refreshes).

Policies must be *independent across dispatchers within a round*: a
``dispatch`` call may use only the shared snapshot, the dispatcher's own
batch size, and per-dispatcher private state.  That restriction is what
makes the model distributed -- it is asserted in tests, not enforced at
runtime.

A registry (:func:`register_policy` / :func:`make_policy`) maps the names
used in the paper's figures (``"scd"``, ``"jsq"``, ``"hlsq"``, ...) to
policy factories so experiments can be specified as plain strings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "SystemContext",
    "Policy",
    "register_policy",
    "make_policy",
    "available_policies",
    "has_native_dispatch_round",
    "supports_round_batching",
]


@dataclass
class SystemContext:
    """Immutable facts a policy may rely on, fixed for a whole simulation.

    Attributes
    ----------
    rates:
        Server processing rates ``mu_s`` (float array, length ``n``).
    num_dispatchers:
        ``m``, the number of dispatchers sharing the server pool.
    rng:
        The policy's private random stream.  Seeded independently of the
        arrival/departure streams so that different policies can be
        compared under *identical* workload realizations.
    """

    rates: np.ndarray
    num_dispatchers: int
    rng: np.random.Generator

    num_servers: int = field(init=False)

    def __post_init__(self) -> None:
        self.rates = np.asarray(self.rates, dtype=np.float64)
        if self.rates.ndim != 1 or self.rates.size == 0:
            raise ValueError("rates must be a non-empty 1-D array")
        if np.any(self.rates <= 0):
            raise ValueError("service rates must be strictly positive")
        if self.num_dispatchers < 1:
            raise ValueError("need at least one dispatcher")
        self.num_servers = int(self.rates.size)


class Policy(ABC):
    """Base class for dispatching policies.

    Subclasses set :attr:`name` (the identifier used in figures and the
    registry) and implement :meth:`dispatch`; the remaining hooks default
    to no-ops.
    """

    #: Registry / display name, e.g. ``"scd"`` or ``"hjsq(2)"``.
    name: str = "abstract"

    def __init__(self) -> None:
        self.ctx: SystemContext | None = None

    # -- life-cycle -------------------------------------------------------

    def bind(self, ctx: SystemContext) -> None:
        """Attach the policy to a system; called once before the first round.

        A policy instance carries per-system mutable state (local views,
        rotation positions, credit counters...), so binding an
        already-bound instance to a second system would silently share
        that state across simulations.  Rebinding therefore raises;
        build a fresh instance (``make_policy``) per simulation.
        """
        if self.ctx is not None:
            raise RuntimeError(
                f"policy {self.name!r} is already bound to a system; "
                f"policies carry per-system state, so build a fresh "
                f"instance (e.g. via make_policy) for each simulation"
            )
        self.ctx = ctx
        self._on_bind()

    def _on_bind(self) -> None:
        """Subclass hook: allocate per-system state (local arrays, CDFs...)."""

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        """Receive the round's shared queue-length snapshot.

        ``queues`` is the engine's live int64 array; policies must treat it
        as read-only and must not keep references past the round.
        """

    @abstractmethod
    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        """Assign ``num_jobs`` jobs for dispatcher ``dispatcher``.

        Returns an int64 array of length ``n`` whose entries sum to
        ``num_jobs``: the count of jobs this dispatcher forwards to each
        server this round.
        """

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """Assign a whole round's batches in one call (the batch protocol).

        Parameters
        ----------
        batch:
            Int array of length ``m``: each dispatcher's batch size this
            round (zeros allowed).
        queues:
            The round's shared queue-length snapshot (length ``n``,
            read-only) -- the same array ``begin_round`` received.

        Returns
        -------
        numpy.ndarray
            An ``(m, n)`` int64 matrix; row ``d`` is dispatcher ``d``'s
            per-server job counts and sums to ``batch[d]``.

        The base implementation loops over the classic per-dispatcher
        :meth:`dispatch` in dispatcher order, skipping empty batches --
        *bit-identical* to what the reference engine backend does, for
        any policy.  Policies whose decisions depend only on the shared
        snapshot (and not on per-dispatcher sequential state fed by
        earlier rounds' RNG draws) override this with a native
        vectorized path; deterministic overrides must reproduce the
        fallback exactly, stochastic overrides may restructure their RNG
        consumption (statistically equivalent, not bit-equal).
        """
        assert self.ctx is not None, "policy used before bind()"
        rows = np.zeros((self.ctx.num_dispatchers, self.ctx.num_servers), dtype=np.int64)
        for d in range(self.ctx.num_dispatchers):
            k = int(batch[d])
            if k == 0:
                continue
            rows[d] = self.dispatch(d, k)
        return rows

    def dispatch_rounds(self, batch_block: np.ndarray) -> np.ndarray | None:
        """Assign a whole *block* of rounds in one call (cross-round batching).

        Parameters
        ----------
        batch_block:
            ``(L, m)`` int array: row ``i`` is round ``i``'s per-dispatcher
            batch sizes (zeros allowed).

        Returns
        -------
        numpy.ndarray or None
            An ``(L, n)`` int64 matrix of per-round, per-server admission
            counts (dispatcher rows already summed), with all rotation /
            credit state advanced exactly as ``L`` consecutive
            ``dispatch_round`` calls would have left it -- or ``None`` to
            decline, sending the engine back to the per-round protocol.

        Only *queue-oblivious* policies may override this: the engine
        skips ``begin_round`` / ``end_round`` / ``observe_total_arrivals``
        and never exposes intermediate queue states on this path, so an
        override is valid only when those hooks are no-ops and dispatch
        decisions never read the queue snapshot (``rr``, ``wrr``,
        uniform random...).  Overrides must be bit-identical to the
        per-round path; :func:`supports_round_batching` is the guard the
        engines check before using it.
        """
        return None

    def end_round(self, round_index: int, queues: np.ndarray) -> None:
        """Observe post-departure queues (for local-state policies)."""

    def observe_total_arrivals(self, total: int) -> None:
        """Feed the true round total (consumed only by oracle estimators)."""

    # -- conveniences ------------------------------------------------------

    @property
    def rates(self) -> np.ndarray:
        assert self.ctx is not None, "policy used before bind()"
        return self.ctx.rates

    @property
    def rng(self) -> np.random.Generator:
        assert self.ctx is not None, "policy used before bind()"
        return self.ctx.rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: dict[str, Callable[..., Policy]] = {}


def register_policy(name: str) -> Callable[[Callable[..., Policy]], Callable[..., Policy]]:
    """Class decorator registering a policy factory under ``name``."""

    def decorator(factory: Callable[..., Policy]) -> Callable[..., Policy]:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"policy {name!r} registered twice")
        _REGISTRY[key] = factory
        return factory

    return decorator


def make_policy(spec: str | Policy, **kwargs) -> Policy:
    """Instantiate a policy from its registry name (or pass one through).

    Examples
    --------
    >>> make_policy("scd").name
    'scd'
    >>> make_policy("jsq(d)", d=3).name
    'jsq(3)'
    """
    if isinstance(spec, Policy):
        return spec
    key = spec.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown policy {spec!r}; known policies: {known}")
    return _REGISTRY[key](**kwargs)


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`, sorted."""
    return sorted(_REGISTRY)


def has_native_dispatch_round(policy: Policy) -> bool:
    """True when ``policy`` overrides the batch protocol with a native path.

    Policies using the base-class fallback are bit-identical between the
    reference and fast engine backends; native stochastic overrides are
    only statistically equivalent (they reshape RNG consumption), which
    tests and benchmarks need to know.
    """
    return type(policy).dispatch_round is not Policy.dispatch_round


def supports_round_batching(policy: Policy) -> bool:
    """True when the engines may drive ``policy`` via ``dispatch_rounds``.

    Requires the cross-round override itself plus base-class (no-op)
    round hooks: a policy that observes ``begin_round`` / ``end_round``
    queue snapshots or round totals cannot legally skip them, whatever
    its ``dispatch_rounds`` claims.
    """
    cls = type(policy)
    return (
        cls.dispatch_rounds is not Policy.dispatch_rounds
        and cls.begin_round is Policy.begin_round
        and cls.end_round is Policy.end_round
        and cls.observe_total_arrivals is Policy.observe_total_arrivals
    )
