"""Greedy batch assignment: the JSQ / SED inner loop, done in bulk.

In the round-based model a dispatcher receives a *batch* of ``k`` jobs and
(under JSQ-style policies) assigns them one at a time, each to the server
minimizing the post-assignment criterion.  For SED the criterion for the
``j``-th extra job on server ``s`` is the resulting load
``(q_s + j) / mu_s``; JSQ is the special case ``mu == 1``.

Because the per-server marginal costs ``(q_s + j)/mu_s`` are increasing in
``j``, the sequential greedy is equivalent to selecting the ``k`` globally
smallest marginals -- which admits an ``O(n log n + k)``-ish vectorized
computation instead of ``k`` heap operations:

1. Water-fill to the continuous level ``L*`` (reusing
   :func:`repro.core.iwl.compute_iwl`); every marginal strictly below
   ``L*`` is certainly selected, giving per-server base counts.
2. Only ``O(n)`` jobs remain; their marginals are materialized per server
   and resolved with one ``argpartition``.

Both the vectorized routine and a plain heap reference are provided; they
agree up to tie-breaking, certified by :func:`greedy_certificate_ok`
(exchange optimality: no selected marginal exceeds any unselected one).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.iwl import compute_iwl

__all__ = [
    "greedy_batch_assign",
    "greedy_batch_assign_heap",
    "greedy_rows_for_batches",
    "greedy_certificate_ok",
]

#: Above this many candidate marginals the vectorized finish would allocate
#: too much; fall back to the heap for the residue.
_MAX_CANDIDATES = 4_000_000


def greedy_batch_assign_heap(
    queues: np.ndarray,
    rates: np.ndarray,
    num_jobs: int,
) -> np.ndarray:
    """Reference implementation: ``k`` heap pops, exactly the sequential greedy.

    Ties are broken by server index (the model allows arbitrary
    tie-breaking).  Used by tests and as the fallback path.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    n = queues.size
    counts = np.zeros(n, dtype=np.int64)
    if num_jobs <= 0:
        return counts
    q_list = queues.tolist()
    mu_list = rates.tolist()
    heap = [((q_list[s] + 1.0) / mu_list[s], s) for s in range(n)]
    heapq.heapify(heap)
    for _ in range(int(num_jobs)):
        _, s = heap[0]
        counts[s] += 1
        next_marginal = (q_list[s] + counts[s] + 1.0) / mu_list[s]
        heapq.heapreplace(heap, (next_marginal, s))
    return counts


def greedy_batch_assign(
    queues: np.ndarray,
    rates: np.ndarray,
    num_jobs: int,
) -> np.ndarray:
    """Vectorized sequential-greedy batch assignment.

    Parameters
    ----------
    queues:
        Queue lengths (or load estimates) the greedy ranks on.
    rates:
        Service rates; pass an all-ones array for plain JSQ ranking.
    num_jobs:
        Batch size ``k``.

    Returns
    -------
    numpy.ndarray
        Int64 counts per server summing to ``num_jobs``, satisfying the
        greedy exchange certificate.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    n = queues.size
    if num_jobs <= 0:
        return np.zeros(n, dtype=np.int64)
    k = int(num_jobs)

    # Continuous water level: every integer marginal strictly below L* is
    # among the k smallest (the selection threshold T* is >= L*).
    level = compute_iwl(queues, rates, float(k))
    base = np.ceil(rates * level - queues - 1e-9).astype(np.int64) - 1
    np.maximum(base, 0, out=base)
    remaining = k - int(base.sum())
    if remaining < 0:
        # Floating-point pathologies only; the heap is always correct.
        return greedy_batch_assign_heap(queues, rates, k)
    if remaining == 0:
        return base
    if remaining * n > _MAX_CANDIDATES:
        return _heap_finish(queues, rates, base, remaining)

    # Materialize each server's next `remaining` marginals and take the
    # `remaining` smallest overall.
    steps = np.arange(1, remaining + 1, dtype=np.float64)
    cand = (queues[:, None] + base[:, None] + steps[None, :]) / rates[:, None]
    flat = cand.ravel()
    chosen = np.argpartition(flat, remaining - 1)[:remaining]
    extra = np.bincount(chosen // remaining, minlength=n)
    return base + extra


def greedy_rows_for_batches(
    queues: np.ndarray,
    rates: np.ndarray,
    batch: np.ndarray,
) -> np.ndarray:
    """Whole-round greedy assignment: one ``(m, n)`` matrix of counts.

    Every dispatcher decides against the *same* snapshot, so dispatchers
    with equal batch sizes produce identical (deterministic) assignments
    -- the greedy runs once per *distinct* batch size instead of once per
    dispatcher.  Bit-identical to calling :func:`greedy_batch_assign`
    per dispatcher; this is the native batch-protocol path of JSQ/SED.
    """
    batch = np.asarray(batch, dtype=np.int64)
    queues = np.asarray(queues)
    rows = np.zeros((batch.size, queues.size), dtype=np.int64)
    for k in np.unique(batch):
        if k == 0:
            continue
        rows[batch == k] = greedy_batch_assign(queues, rates, int(k))
    return rows


def _heap_finish(
    queues: np.ndarray,
    rates: np.ndarray,
    base: np.ndarray,
    remaining: int,
) -> np.ndarray:
    """Finish a partially water-filled assignment with heap pops."""
    n = queues.size
    counts = base.copy()
    q_list = queues.tolist()
    mu_list = rates.tolist()
    heap = [((q_list[s] + counts[s] + 1.0) / mu_list[s], s) for s in range(n)]
    heapq.heapify(heap)
    for _ in range(remaining):
        _, s = heap[0]
        counts[s] += 1
        heapq.heapreplace(heap, ((q_list[s] + counts[s] + 1.0) / mu_list[s], s))
    return counts


def greedy_certificate_ok(
    queues: np.ndarray,
    rates: np.ndarray,
    counts: np.ndarray,
    *,
    rtol: float = 1e-9,
) -> bool:
    """Check the exchange-optimality certificate of a greedy assignment.

    ``counts`` is a valid greedy outcome iff moving any assigned job to any
    other server cannot lower its marginal: for all ``s`` with
    ``counts_s > 0`` and all ``u``,

        (q_s + counts_s) / mu_s  <=  (q_u + counts_u + 1) / mu_u.

    Tie-breaking differences between implementations pass this test; real
    assignment errors do not.
    """
    queues = np.asarray(queues, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    counts = np.asarray(counts)
    if np.any(counts < 0):
        return False
    assigned = counts > 0
    if not assigned.any():
        return True
    max_selected = float(np.max((queues[assigned] + counts[assigned]) / rates[assigned]))
    min_next = float(np.min((queues + counts + 1.0) / rates))
    return max_selected <= min_next * (1.0 + rtol) + rtol
