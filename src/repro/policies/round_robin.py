"""Round-robin and weighted round-robin dispatching.

The default algorithms of production L7 balancers (NGINX, HAProxy) that
the paper's introduction positions SCD against.  Both are queue-oblivious:
plain round-robin cycles through servers uniformly (and, like uniform
random, is unstable in heterogeneous systems at high load); weighted
round-robin visits each server proportionally to its service rate using a
smooth interleaving (the classic smooth-WRR scheme NGINX uses: each step,
add every server's weight to its credit and pick the largest credit).

Each dispatcher keeps its *own* rotation state -- dispatchers do not
coordinate, so their rotations drift apart, which is precisely why
round-robin avoids herding while still wasting queue information.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy

__all__ = ["RoundRobinPolicy", "WeightedRoundRobinPolicy"]


@register_policy("rr")
class RoundRobinPolicy(Policy):
    """Plain round-robin: dispatcher d cycles servers in index order."""

    name = "rr"

    def _on_bind(self) -> None:
        m = self.ctx.num_dispatchers
        # Stagger starting positions so dispatchers do not trivially align.
        n = self.ctx.num_servers
        self._position = np.array([(d * n) // m for d in range(m)], dtype=np.int64)

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        n = self.ctx.num_servers
        start = int(self._position[dispatcher])
        counts = np.bincount((start + np.arange(num_jobs)) % n, minlength=n)
        self._position[dispatcher] = (start + num_jobs) % n
        return counts.astype(np.int64)

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """All rotations advanced at once (bit-identical to the loop).

        Dispatcher ``d`` with batch ``k`` starting at ``p`` gives every
        server ``k // n`` jobs plus one job to each of the ``k % n``
        servers ``p, p+1, ... (mod n)``; the remainder arc is written as
        a per-row difference array and prefix-summed, so the whole round
        is O(m * n) numpy work with no per-job indexing.
        """
        n = self.ctx.num_servers
        m = self.ctx.num_dispatchers
        batch = np.asarray(batch, dtype=np.int64)
        start = self._position
        remainder = batch % n
        end = start + remainder
        diff = np.zeros((m, n + 1), dtype=np.int64)
        rows_idx = np.arange(m)
        plain = (remainder > 0) & (end <= n)
        diff[rows_idx[plain], start[plain]] += 1
        diff[rows_idx[plain], end[plain]] -= 1
        wrapped = end > n
        diff[rows_idx[wrapped], start[wrapped]] += 1
        diff[rows_idx[wrapped], n] -= 1
        diff[rows_idx[wrapped], 0] += 1
        diff[rows_idx[wrapped], end[wrapped] - n] -= 1
        rows = np.cumsum(diff[:, :n], axis=1) + (batch // n)[:, None]
        self._position[:] = (start + batch) % n
        return rows

    def dispatch_rounds(self, batch_block: np.ndarray) -> np.ndarray:
        """A whole block's rotations advanced at once (bit-identical).

        Round-robin is queue-oblivious, so every round's starting
        positions follow from the cumulative batch counts alone:
        dispatcher ``d`` opens round ``i`` at
        ``(p_d + sum_{j<i} batch[j, d]) mod n``.  Each non-empty
        ``(round, dispatcher)`` cell contributes its remainder arc as a
        difference-array scatter (one ``np.add.at`` per boundary kind)
        and the full-cycle part as a per-round constant; a row-wise
        prefix sum then yields every round's per-server admissions in
        one pass -- the same integer arithmetic as ``dispatch_round``,
        so counts and carried positions match it exactly.
        """
        n = self.ctx.num_servers
        batch_block = np.asarray(batch_block, dtype=np.int64)
        length = batch_block.shape[0]
        starts = self._position[None, :] + np.cumsum(batch_block, axis=0) - batch_block
        starts %= n
        remainder = batch_block % n
        row_i, col_d = np.nonzero(remainder)
        arc_start = starts[row_i, col_d]
        arc_end = arc_start + remainder[row_i, col_d]
        diff = np.zeros((length, n + 1), dtype=np.int64)
        plain = arc_end <= n
        np.add.at(diff, (row_i[plain], arc_start[plain]), 1)
        np.add.at(diff, (row_i[plain], arc_end[plain]), -1)
        wrapped = ~plain
        np.add.at(diff, (row_i[wrapped], arc_start[wrapped]), 1)
        np.add.at(diff, (row_i[wrapped], np.full(int(wrapped.sum()), n)), -1)
        np.add.at(diff, (row_i[wrapped], np.zeros(int(wrapped.sum()), dtype=np.int64)), 1)
        np.add.at(diff, (row_i[wrapped], arc_end[wrapped] - n), -1)
        received = np.cumsum(diff[:, :n], axis=1)
        received += (batch_block // n).sum(axis=1)[:, None]
        self._position[:] = (self._position + batch_block.sum(axis=0)) % n
        return received


@register_policy("wrr")
class WeightedRoundRobinPolicy(Policy):
    """Smooth weighted round-robin (NGINX's algorithm), per dispatcher.

    Per job: every server's credit increases by its weight ``mu_s``; the
    job goes to the largest credit, which is then decreased by the total
    weight.  Long-run shares converge to ``mu_s / sum(mu)`` with the
    smoothest possible interleaving.
    """

    name = "wrr"

    def _on_bind(self) -> None:
        m = self.ctx.num_dispatchers
        n = self.ctx.num_servers
        self._credits = np.zeros((m, n), dtype=np.float64)
        self._total_weight = float(self.rates.sum())

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        n = self.ctx.num_servers
        counts = np.zeros(n, dtype=np.int64)
        credits = self._credits[dispatcher]
        rates = self.rates
        total = self._total_weight
        for _ in range(int(num_jobs)):
            credits += rates
            best = int(np.argmax(credits))
            credits[best] -= total
            counts[best] += 1
        return counts

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """All dispatchers' credit loops advanced in lock-step (bit-identical).

        Dispatchers are independent (each owns a credits row and no RNG
        is involved), so the per-dispatcher job loops can be transposed:
        step ``j`` updates every dispatcher still holding a ``j``-th job
        at once.  Each step is the same float arithmetic and the same
        first-of-the-maxima ``argmax`` as the scalar loop, so the counts
        *and* the carried credit state match the fallback exactly; the
        round costs O(max batch) vectorized steps instead of O(total
        jobs) scalar ones.
        """
        n = self.ctx.num_servers
        m = self.ctx.num_dispatchers
        batch = np.asarray(batch, dtype=np.int64)
        counts = np.zeros((m, n), dtype=np.int64)
        credits = self._credits
        rates = self.rates
        total = self._total_weight
        dispatchers = np.arange(m)
        for j in range(int(batch.max()) if batch.size else 0):
            active = dispatchers[batch > j]
            block = credits[active] + rates
            best = np.argmax(block, axis=1)
            block[np.arange(active.size), best] -= total
            credits[active] = block
            counts[active, best] += 1
        return counts
