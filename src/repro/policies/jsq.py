"""Join-the-Shortest-Queue (JSQ) and Shortest-Expected-Delay (SED).

Both are deterministic greedy policies operating on the full queue-length
information.  JSQ sends each job to the server with the fewest queued jobs;
SED normalizes by processing speed and sends each job to the server with
the smallest expected wait ``(q_s + x_s + 1) / mu_s`` (its
heterogeneity-aware counterpart; the two coincide when all rates are
equal).

Under multiple dispatchers these policies *herd*: every dispatcher sees the
same snapshot and floods the same short queues -- the failure mode SCD is
designed to avoid.  They remain the strongest centralized baselines and are
what production L7 balancers ship today, hence their place in every figure.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy
from .greedy import greedy_batch_assign, greedy_rows_for_batches

__all__ = ["JSQPolicy", "SEDPolicy"]


@register_policy("jsq")
class JSQPolicy(Policy):
    """Join-the-shortest-queue, batch form.

    A dispatcher assigns its batch one job at a time, each to the currently
    shortest queue *in its own local view* (snapshot plus its own
    assignments this round); the batch computation is the exact sequential
    greedy (see :mod:`repro.policies.greedy`).
    """

    name = "jsq"

    def _on_bind(self) -> None:
        self._ones = np.ones(self.ctx.num_servers, dtype=np.float64)
        self._queues: np.ndarray | None = None

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._queues = queues

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        return greedy_batch_assign(self._queues, self._ones, num_jobs)

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        return greedy_rows_for_batches(queues, self._ones, batch)


@register_policy("sed")
class SEDPolicy(Policy):
    """Shortest-expected-delay: greedy on the normalized loads ``q_s/mu_s``."""

    name = "sed"

    def _on_bind(self) -> None:
        self._queues: np.ndarray | None = None

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._queues = queues

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        return greedy_batch_assign(self._queues, self.rates, num_jobs)

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        return greedy_rows_for_batches(queues, self.rates, batch)
