"""Local Estimation Driven dispatching (LED) and its h-variant.

LED [Zhou, Shroff & Wierman, Perf. Eval. 2021] is the other
local-view state-of-the-art the paper discusses alongside LSQ
(Section 1.1).  Like LSQ, each dispatcher keeps a local array and
occasionally queries random servers for their true queue lengths.  Unlike
LSQ -- whose entries only move on samples and self-increments -- LED
*drives the estimates between samples*: each round the dispatcher also
applies the known service model, draining every estimate by the server's
expected completions.  The estimates therefore track the real queues far
more closely between refreshes, at zero extra communication.

Both papers' analyses only require the estimates to be refreshed
infrequently; the sampling budget here follows the same one-query-per-job
convention as our LSQ implementation so the two are directly comparable.

The heterogeneity-aware variant (``hled``) ranks by estimated expected
delay and samples rate-proportionally, mirroring the paper's footnote 6
adaptations of the other baselines.

The batch-protocol path mirrors :mod:`repro.policies.lsq`: the greedy
itself stays a per-dispatcher loop (each dispatcher ranks against its own
sequential local array), while :meth:`LEDPolicy.end_round` fuses every
dispatcher's sampling budget into one RNG draw and one fancy assignment.
numpy fills random output element by element, so the fused draw realizes
exactly the per-dispatcher draws it replaces -- bit-identical stream
consumption on every engine backend.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy
from .greedy import greedy_batch_assign

__all__ = ["LEDPolicy"]


class LEDPolicy(Policy):
    """LED / hLED with drift-corrected per-dispatcher estimates."""

    def __init__(
        self,
        heterogeneity_aware: bool = False,
        samples_per_job: float = 1.0,
    ) -> None:
        super().__init__()
        if samples_per_job <= 0:
            raise ValueError("samples_per_job must be positive")
        self.heterogeneity_aware = bool(heterogeneity_aware)
        self.samples_per_job = float(samples_per_job)
        self.name = "hled" if heterogeneity_aware else "led"

    def _on_bind(self) -> None:
        m = self.ctx.num_dispatchers
        n = self.ctx.num_servers
        self._local = np.zeros((m, n), dtype=np.float64)
        self._batch_sizes = np.zeros(m, dtype=np.int64)
        if self.heterogeneity_aware:
            weights = self.rates / self.rates.sum()
            self._sampling_cdf: np.ndarray | None = np.cumsum(weights)
            self._rank_rates = self.rates
        else:
            self._sampling_cdf = None
            self._rank_rates = np.ones(n, dtype=np.float64)

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._batch_sizes[:] = 0

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        estimates = self._local[dispatcher]
        counts = greedy_batch_assign(estimates, self._rank_rates, num_jobs)
        estimates += counts
        self._batch_sizes[dispatcher] = num_jobs
        return counts

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """Native batch protocol, bit-identical to the fallback.

        As in LSQ, each dispatcher greedily ranks against its *own*
        drift-corrected estimate array, so the greedy cannot fuse across
        dispatchers; going native pairs it with the vectorized
        :meth:`end_round` refresh while skipping empty batches up front.
        """
        assert self.ctx is not None, "policy used before bind()"
        rows = np.zeros(
            (self.ctx.num_dispatchers, self.ctx.num_servers), dtype=np.int64
        )
        batch = np.asarray(batch, dtype=np.int64)
        for d in np.flatnonzero(batch):
            rows[d] = self.dispatch(int(d), int(batch[d]))
        return rows

    def _sample_servers(self, count: int) -> np.ndarray:
        n = self.ctx.num_servers
        if self._sampling_cdf is None:
            return self.rng.integers(0, n, size=count)
        return np.searchsorted(self._sampling_cdf, self.rng.random(count))

    def end_round(self, round_index: int, queues: np.ndarray) -> None:
        # The LED step: drive every estimate with the known service model
        # (each server drains ~mu jobs per round), floored at zero.
        np.maximum(self._local - self.rates, 0.0, out=self._local)
        # Then refresh sampled entries with ground truth, as in LSQ: one
        # draw covers every active dispatcher's budget (numpy fills
        # random output element by element, so the realization -- and
        # the stream position -- matches the per-dispatcher loop this
        # replaces), and one fancy assignment applies all refreshes.
        active = np.flatnonzero(self._batch_sizes)
        if active.size == 0:
            return
        budgets = np.maximum(
            1,
            np.ceil(self.samples_per_job * self._batch_sizes[active]).astype(
                np.int64
            ),
        )
        sampled = self._sample_servers(int(budgets.sum()))
        rows = np.repeat(active, budgets)
        # Duplicate (dispatcher, server) pairs all write queues[server]:
        # order inside the fancy assignment cannot matter.
        self._local[rows, sampled] = queues[sampled]


@register_policy("led")
def _make_led(samples_per_job: float = 1.0) -> LEDPolicy:
    return LEDPolicy(heterogeneity_aware=False, samples_per_job=samples_per_job)


@register_policy("hled")
def _make_hled(samples_per_job: float = 1.0) -> LEDPolicy:
    return LEDPolicy(heterogeneity_aware=True, samples_per_job=samples_per_job)
