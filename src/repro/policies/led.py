"""Local Estimation Driven dispatching (LED) and its h-variant.

LED [Zhou, Shroff & Wierman, Perf. Eval. 2021] is the other
local-view state-of-the-art the paper discusses alongside LSQ
(Section 1.1).  Like LSQ, each dispatcher keeps a local array and
occasionally queries random servers for their true queue lengths.  Unlike
LSQ -- whose entries only move on samples and self-increments -- LED
*drives the estimates between samples*: each round the dispatcher also
applies the known service model, draining every estimate by the server's
expected completions.  The estimates therefore track the real queues far
more closely between refreshes, at zero extra communication.

Both papers' analyses only require the estimates to be refreshed
infrequently; the sampling budget here follows the same one-query-per-job
convention as our LSQ implementation so the two are directly comparable.

The heterogeneity-aware variant (``hled``) ranks by estimated expected
delay and samples rate-proportionally, mirroring the paper's footnote 6
adaptations of the other baselines.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy
from .greedy import greedy_batch_assign

__all__ = ["LEDPolicy"]


class LEDPolicy(Policy):
    """LED / hLED with drift-corrected per-dispatcher estimates."""

    def __init__(
        self,
        heterogeneity_aware: bool = False,
        samples_per_job: float = 1.0,
    ) -> None:
        super().__init__()
        if samples_per_job <= 0:
            raise ValueError("samples_per_job must be positive")
        self.heterogeneity_aware = bool(heterogeneity_aware)
        self.samples_per_job = float(samples_per_job)
        self.name = "hled" if heterogeneity_aware else "led"

    def _on_bind(self) -> None:
        m = self.ctx.num_dispatchers
        n = self.ctx.num_servers
        self._local = np.zeros((m, n), dtype=np.float64)
        self._batch_sizes = np.zeros(m, dtype=np.int64)
        if self.heterogeneity_aware:
            weights = self.rates / self.rates.sum()
            self._sampling_cdf: np.ndarray | None = np.cumsum(weights)
            self._rank_rates = self.rates
        else:
            self._sampling_cdf = None
            self._rank_rates = np.ones(n, dtype=np.float64)

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        self._batch_sizes[:] = 0

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        estimates = self._local[dispatcher]
        counts = greedy_batch_assign(estimates, self._rank_rates, num_jobs)
        estimates += counts
        self._batch_sizes[dispatcher] = num_jobs
        return counts

    def _sample_servers(self, count: int) -> np.ndarray:
        n = self.ctx.num_servers
        if self._sampling_cdf is None:
            return self.rng.integers(0, n, size=count)
        return np.searchsorted(self._sampling_cdf, self.rng.random(count))

    def end_round(self, round_index: int, queues: np.ndarray) -> None:
        # The LED step: drive every estimate with the known service model
        # (each server drains ~mu jobs per round), floored at zero.
        np.maximum(self._local - self.rates, 0.0, out=self._local)
        # Then refresh sampled entries with ground truth, as in LSQ.
        for d in range(self.ctx.num_dispatchers):
            batch = int(self._batch_sizes[d])
            if batch == 0:
                continue
            budget = max(1, int(np.ceil(self.samples_per_job * batch)))
            sampled = self._sample_servers(budget)
            self._local[d, sampled] = queues[sampled]


@register_policy("led")
def _make_led(samples_per_job: float = 1.0) -> LEDPolicy:
    return LEDPolicy(heterogeneity_aware=False, samples_per_job=samples_per_job)


@register_policy("hled")
def _make_hled(samples_per_job: float = 1.0) -> LEDPolicy:
    return LEDPolicy(heterogeneity_aware=True, samples_per_job=samples_per_job)
