"""Load-oblivious randomized policies: weighted random and uniform random.

Weighted random (WR, paper footnote 7) sends each job to server ``s`` with
probability ``mu_s / sum(mu)`` -- the optimal *static* split for
heterogeneous rates, but blind to queue state, so it cannot exploit
momentarily under-loaded servers.  Uniform random ignores rates entirely
and is unstable in heterogeneous systems at high load (slow servers receive
more than they can process); it is included as a sanity baseline and for
the stability ablation.

For a probability-vector policy, dispatching a batch of ``k`` jobs i.i.d.
is exactly a multinomial draw, so these dispatch in one vectorized call --
and a whole *round* (every dispatcher's batch) is one stacked multinomial
draw, which is the native batch-protocol path below.  The batched draw
consumes the policy RNG stream differently from per-dispatcher draws, so
the fast engine backend is statistically (not bit-) equivalent to the
reference backend for these policies.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, register_policy

__all__ = ["WeightedRandomPolicy", "UniformRandomPolicy"]


@register_policy("wr")
class WeightedRandomPolicy(Policy):
    """Rate-proportional random dispatching (WR)."""

    name = "wr"

    def _on_bind(self) -> None:
        self._probs = self.rates / self.rates.sum()

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        return self.rng.multinomial(int(num_jobs), self._probs).astype(np.int64)

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        return self.rng.multinomial(
            np.asarray(batch, dtype=np.int64), self._probs
        ).astype(np.int64)


@register_policy("random")
class UniformRandomPolicy(Policy):
    """Uniform random dispatching (ignores both queues and rates)."""

    name = "random"

    def _on_bind(self) -> None:
        n = self.ctx.num_servers
        self._probs = np.full(n, 1.0 / n)

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        return self.rng.multinomial(int(num_jobs), self._probs).astype(np.int64)

    def dispatch_round(self, batch: np.ndarray, queues: np.ndarray) -> np.ndarray:
        return self.rng.multinomial(
            np.asarray(batch, dtype=np.int64), self._probs
        ).astype(np.int64)
