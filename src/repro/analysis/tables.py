"""Plain-text rendering of experiment results (the benches' output format).

Produces the rows the paper's figures encode: one line per policy with its
series over the load grid (mean-response figures) or over the tau grid
(tail figures).  Everything is monospace text so the benchmark harness can
simply print it.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of rows as an aligned monospace table."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render named series sharing an x-grid (one figure panel as text).

    Rows are x-values; columns are series (policies), matching how the
    paper's figure data reads.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(float(values[i]))
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
