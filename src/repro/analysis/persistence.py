"""Saving and loading experiment results as JSON.

Long sweeps are expensive; these helpers serialize
:class:`repro.sim.engine.SimulationResult` (including the full
response-time histogram, losslessly -- it is just integer counts),
:class:`repro.analysis.runner.SweepResult`, and the declarative
:class:`repro.experiments.ExperimentResult` so that figure regeneration,
EXPERIMENTS.md tables and notebook analysis can reuse completed runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analysis.runner import SweepResult
from repro.experiments.grid import Experiment, PolicySpec
from repro.experiments.results import CellRecord, ExperimentResult
from repro.experiments.workload import (
    UnreconstructedFactory,
    WorkloadSpec,
    workload_factory_from_descriptor,
)
from repro.sim.engine import SimulationConfig, SimulationResult
from repro.sim.metrics import QueueLengthSeries, ResponseTimeHistogram
from repro.sim.sized import SizedSimulationResult
from repro.sim.probes import (
    DEFAULT_PROBE_LABELS,
    ProbeSpec,
    QueueSeriesProbe,
    ResponseTimeProbe,
    probe_from_state,
)
from repro.workloads.scenarios import SystemSpec

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "sized_result_to_dict",
    "sized_result_from_dict",
    "sweep_to_dict",
    "sweep_from_dict",
    "save_sweep",
    "load_sweep",
    "experiment_from_descriptor",
    "experiment_result_to_dict",
    "experiment_result_from_dict",
    "save_experiment",
    "load_experiment",
]

_FORMAT_VERSION = 1
_EXPERIMENT_FORMAT_VERSION = 1


def result_to_dict(result: SimulationResult) -> dict:
    """Lossless dict form of a simulation result (JSON-serializable).

    The default collectors serialize exactly as they always did (the
    ``histogram`` and ``queue_series`` keys), so probe-free results are
    byte-identical to the pre-probe format; extra probes add their
    ``state_dict`` under a ``probes`` key and the config records their
    specs.
    """
    config_payload = {
        "rounds": result.config.rounds,
        "warmup": result.config.warmup,
        "seed": result.config.seed,
        "track_queue_series": result.config.track_queue_series,
        "backend": result.config.backend,
    }
    if result.config.probes:
        config_payload["probes"] = [
            {"name": s.name, "kwargs": dict(s.kwargs)} for s in result.config.probes
        ]
    if result.config.scenario is not None:
        # Emitted only when set, so scenario-free files stay byte-identical.
        config_payload["scenario"] = result.config.scenario
    payload = {
        "format_version": _FORMAT_VERSION,
        "policy_name": result.policy_name,
        "config": config_payload,
        "histogram": result.histogram.state_dict(),
        "total_arrived": result.total_arrived,
        "total_departed": result.total_departed,
        "final_queued": result.final_queued,
        "final_queues": result.final_queues.tolist(),
    }
    if result.queue_series is not None:
        payload["queue_series"] = result.queue_series.values.tolist()
    extras = {
        label: probe.state_dict()
        for label, probe in result.probes.items()
        if label not in DEFAULT_PROBE_LABELS
    }
    if extras:
        payload["probes"] = extras
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    """Inverse of :func:`result_to_dict`."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    hist = ResponseTimeHistogram()
    hist.load_state(payload["histogram"])
    series = None
    if "queue_series" in payload:
        series = QueueLengthSeries(rounds_hint=len(payload["queue_series"]))
        for value in payload["queue_series"]:
            series.record(int(value))
    config_payload = dict(payload["config"])
    # Files written before the engine-backend registry carry no key.
    config_payload.setdefault("backend", "reference")
    # ProbeSpec.__post_init__ coerces dict kwargs to the sorted tuple.
    config_payload["probes"] = tuple(
        ProbeSpec(p["name"], p.get("kwargs", {}))
        for p in config_payload.get("probes", ())
    )
    # Re-home the collectors as the default probe set (legacy files
    # carry no "probes" key and load with exactly these two).
    probes = {"responses": ResponseTimeProbe(histogram=hist)}
    if series is not None:
        probes["queue_series"] = QueueSeriesProbe(series=series)
    for label, state in payload.get("probes", {}).items():
        probes[label] = probe_from_state(state)
    return SimulationResult(
        policy_name=payload["policy_name"],
        config=SimulationConfig(**config_payload),
        histogram=hist,
        queue_series=series,
        total_arrived=int(payload["total_arrived"]),
        total_departed=int(payload["total_departed"]),
        final_queued=int(payload["final_queued"]),
        final_queues=np.asarray(payload["final_queues"], dtype=np.int64),
        probes=probes,
    )


def sized_result_to_dict(result: SizedSimulationResult) -> dict:
    """Lossless dict form of a sized-engine result (JSON-serializable).

    The sized analog of :func:`result_to_dict` (the run-lifecycle
    orchestrator uses it for ``result.json``); the ``kind`` key
    disambiguates the two formats.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "sized_result",
        "policy_name": result.policy_name,
        "histogram": result.histogram.state_dict(),
        "queue_series": result.queue_series.values.tolist(),
        "total_jobs": result.total_jobs,
        "total_units_arrived": result.total_units_arrived,
        "total_units_departed": result.total_units_departed,
        "final_units_queued": result.final_units_queued,
    }
    extras = {
        label: probe.state_dict()
        for label, probe in result.probes.items()
        if label not in DEFAULT_PROBE_LABELS
    }
    if extras:
        payload["probes"] = extras
    return payload


def sized_result_from_dict(payload: dict) -> SizedSimulationResult:
    """Inverse of :func:`sized_result_to_dict`."""
    version = payload.get("format_version")
    if payload.get("kind") != "sized_result" or version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported sized-result format: kind={payload.get('kind')!r} "
            f"version={version!r}"
        )
    hist = ResponseTimeHistogram()
    hist.load_state(payload["histogram"])
    series = QueueLengthSeries(rounds_hint=max(16, len(payload["queue_series"])))
    series.record_many(np.asarray(payload["queue_series"], dtype=np.int64))
    probes = {
        "responses": ResponseTimeProbe(histogram=hist),
        "queue_series": QueueSeriesProbe(series=series),
    }
    for label, state in payload.get("probes", {}).items():
        probes[label] = probe_from_state(state)
    return SizedSimulationResult(
        policy_name=payload["policy_name"],
        histogram=hist,
        queue_series=series,
        total_jobs=int(payload["total_jobs"]),
        total_units_arrived=int(payload["total_units_arrived"]),
        total_units_departed=int(payload["total_units_departed"]),
        final_units_queued=int(payload["final_units_queued"]),
        probes=probes,
    )


def save_result(result: SimulationResult, path: str | Path) -> Path:
    """Write a result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result)))
    return path


def load_result(path: str | Path) -> SimulationResult:
    """Read a result previously written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def sweep_to_dict(sweep: SweepResult) -> dict:
    """JSON-serializable form of a mean-response sweep."""
    return {
        "format_version": _FORMAT_VERSION,
        "system": {
            "num_servers": sweep.system.num_servers,
            "num_dispatchers": sweep.system.num_dispatchers,
            "profile": sweep.system.profile,
            "rate_seed": sweep.system.rate_seed,
        },
        "loads": list(sweep.loads),
        "policies": list(sweep.policies),
        "means": {
            policy: {str(rho): value for rho, value in by_load.items()}
            for policy, by_load in sweep.means.items()
        },
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Inverse of :func:`sweep_to_dict`."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported sweep format version: {version!r}")
    return SweepResult(
        system=SystemSpec(**payload["system"]),
        loads=tuple(payload["loads"]),
        policies=tuple(payload["policies"]),
        means={
            policy: {float(rho): value for rho, value in by_load.items()}
            for policy, by_load in payload["means"].items()
        },
    )


def save_sweep(sweep: SweepResult, path: str | Path) -> Path:
    """Write a sweep to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(sweep_to_dict(sweep)))
    return path


def load_sweep(path: str | Path) -> SweepResult:
    """Read a sweep previously written by :func:`save_sweep`."""
    return sweep_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Declarative experiment results (repro.experiments).
# ---------------------------------------------------------------------------


def _workload_from_descriptor(payload: dict) -> WorkloadSpec:
    """Best-effort workload reconstruction from its JSON descriptor.

    Name, skew, scenario, and explicit dispatcher weights round-trip
    exactly, and so do arrival/service factories registered via
    :func:`repro.experiments.workload.register_workload_factory` (they
    serialize as ``{"factory": ..., "kwargs": ...}`` descriptors).
    Unregistered factories and job-size distributions only serialize as
    a repr; a workload that had any gets an
    :class:`UnreconstructedFactory` placeholder, so the loaded result's
    records stay fully usable but re-*running* the loaded experiment
    raises instead of silently simulating the default workload under
    the old name.
    """
    weights = payload.get("dispatcher_weights")
    lossy = "job_sizes" in payload

    def component(key):
        nonlocal lossy
        value = payload.get(key)
        if value is None:
            return None
        if isinstance(value, dict):
            try:
                return workload_factory_from_descriptor(value)
            except ValueError:
                pass  # unknown/newer factory: degrade to the placeholder
        lossy = True
        return None

    arrivals = component("arrivals")
    service = component("service")
    if lossy:
        # One loud placeholder is enough: executing any cell of the
        # rebuilt workload must raise, whichever component was lost.
        arrivals = UnreconstructedFactory(payload["name"])
        service = None
    return WorkloadSpec(
        name=payload["name"],
        skew=payload.get("skew"),
        dispatcher_weights=tuple(weights) if weights is not None else None,
        arrivals=arrivals,
        service=service,
        scenario=payload.get("scenario"),
    )


def _record_to_dict(record: CellRecord) -> dict:
    payload = {
        "policy": record.policy,
        "system": record.system,
        "rho": record.rho,
        "replication": record.replication,
        "workload": record.workload,
        "seed": record.seed,
        "metrics": dict(record.metrics),
    }
    if isinstance(record.result, SimulationResult):
        payload["result"] = result_to_dict(record.result)
    return payload


def _record_from_dict(payload: dict) -> CellRecord:
    result = None
    if "result" in payload:
        result = result_from_dict(payload["result"])
    return CellRecord(
        policy=payload["policy"],
        system=payload["system"],
        rho=float(payload["rho"]),
        replication=int(payload["replication"]),
        workload=payload["workload"],
        seed=int(payload["seed"]),
        metrics={k: float(v) for k, v in payload["metrics"].items()},
        result=result,
    )


def experiment_result_to_dict(
    result: ExperimentResult, include_results: bool = True
) -> dict:
    """JSON-serializable form of a declarative experiment result.

    Per-cell metrics always serialize; full simulation payloads
    (histograms, queue series) are included when ``include_results`` and
    the record kept them.  Sized-engine results serialize metrics-only.
    """
    experiment = result.experiment.describe()
    records = [_record_to_dict(r) for r in result.records]
    if not include_results:
        for record in records:
            record.pop("result", None)
    return {
        "format_version": _EXPERIMENT_FORMAT_VERSION,
        "kind": "experiment_result",
        "experiment": experiment,
        "records": records,
    }


def experiment_from_descriptor(spec: dict) -> Experiment:
    """Rebuild a declarative :class:`Experiment` from its JSON descriptor.

    The inverse of :meth:`Experiment.describe`, shared by result loading
    and the service job API (``POST /jobs`` bodies are exactly these
    descriptors).  Workload names, skew, dispatcher weights, and
    *registered* arrival/service factories (``bursty``, trace replay)
    round-trip exactly; workloads that carried unregistered factories or
    job-size distributions come back with
    :class:`UnreconstructedFactory` placeholders, so the rebuilt grid
    raises if *executed* under the old name instead of silently
    simulating the default workload.
    """
    return Experiment(
        policies=tuple(
            PolicySpec(name=p["name"], kwargs=tuple(sorted(p["kwargs"].items())))
            for p in spec["policies"]
        ),
        systems=tuple(SystemSpec(**s) for s in spec["systems"]),
        loads=tuple(spec["loads"]),
        replications=int(spec["replications"]),
        workloads=tuple(_workload_from_descriptor(w) for w in spec["workloads"]),
        rounds=int(spec["rounds"]),
        warmup=int(spec["warmup"]),
        base_seed=int(spec["base_seed"]),
        backend=spec.get("backend", "reference"),
        metrics=tuple(
            ProbeSpec(p["name"], p.get("kwargs", {}))
            for p in spec.get("metrics", ())
        ),
    )


def experiment_result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`experiment_result_to_dict`."""
    version = payload.get("format_version")
    if payload.get("kind") != "experiment_result" or version != _EXPERIMENT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported experiment format: kind={payload.get('kind')!r} "
            f"version={version!r}"
        )
    experiment = experiment_from_descriptor(payload["experiment"])
    records = tuple(_record_from_dict(r) for r in payload["records"])
    return ExperimentResult(experiment=experiment, records=records)


def save_experiment(
    result: ExperimentResult, path: str | Path, include_results: bool = True
) -> Path:
    """Write an experiment result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(experiment_result_to_dict(result, include_results)))
    return path


def load_experiment(path: str | Path) -> ExperimentResult:
    """Read a result previously written by :func:`save_experiment`."""
    return experiment_result_from_dict(json.loads(Path(path).read_text()))
