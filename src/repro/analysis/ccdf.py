"""CCDF series extraction for the tail figures (3b, 4b, 6b, 7b).

The paper plots ``P(response time > tau)`` on a log y-axis against a linear
tau grid.  These helpers turn response-time histograms into those series
and extract the tail quantiles quoted in the text (e.g. "at the 1e-4
percentile SCD improves over the second best by 2.1x").
"""

from __future__ import annotations

import numpy as np

from repro.sim.metrics import ResponseTimeHistogram

__all__ = ["ccdf_series", "tail_quantiles", "tail_improvement_factor"]


def ccdf_series(
    histogram: ResponseTimeHistogram,
    max_tau: int | None = None,
    num_points: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """An evenly spaced (taus, ccdf) series for plotting or tabulation.

    Parameters
    ----------
    histogram:
        A populated response-time histogram.
    max_tau:
        Largest tau in the grid; defaults to the largest observed response
        time (where the CCDF reaches 0).
    num_points:
        Grid resolution.
    """
    if max_tau is None:
        max_tau = histogram.max_response_time
    taus = np.unique(np.linspace(0, max(1, max_tau), num_points).astype(np.int64))
    return taus, histogram.ccdf(taus)


def tail_quantiles(
    histogram: ResponseTimeHistogram,
    levels: tuple[float, ...] = (1e-1, 1e-2, 1e-3, 1e-4),
) -> dict[float, int]:
    """Response time at each CCDF level: smallest tau with P(T > tau) <= level.

    Levels beyond the histogram's resolution (fewer than ``1/level`` jobs
    recorded) are reported at the max observed response time.
    """
    out: dict[float, int] = {}
    for level in levels:
        if histogram.total * level < 1.0:
            out[level] = histogram.max_response_time
        else:
            out[level] = histogram.quantile_of_ccdf(level)
    return out


def tail_improvement_factor(
    candidate: ResponseTimeHistogram,
    competitors: dict[str, ResponseTimeHistogram],
    level: float = 1e-4,
) -> tuple[float, str]:
    """How much shorter the candidate's tail is than the best competitor's.

    Returns ``(factor, second_best_name)`` where ``factor`` is the
    second-best policy's tail quantile divided by the candidate's (the
    paper quotes >2.1x for SCD at rho = 0.99).
    """
    candidate_tau = tail_quantiles(candidate, (level,))[level]
    best_name = ""
    best_tau = np.inf
    for name, histogram in competitors.items():
        tau = tail_quantiles(histogram, (level,))[level]
        if tau < best_tau:
            best_tau = tau
            best_name = name
    return float(best_tau) / max(1.0, float(candidate_tau)), best_name
