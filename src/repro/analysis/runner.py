"""Experiment runner: the paper's evaluation protocol as a library.

Builds simulations from ``(policy name, system spec, offered load)``
coordinates, with seeds derived from the *workload* coordinates only --
every policy compared at the same coordinates sees identical arrival and
departure realizations, matching the paper's common-seed methodology.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.policies.base import Policy, make_policy
from repro.sim.arrivals import PoissonArrivals
from repro.sim.engine import Simulation, SimulationConfig, SimulationResult
from repro.sim.seeding import derive_seed
from repro.sim.service import GeometricService
from repro.workloads.scenarios import SystemSpec

__all__ = [
    "ExperimentConfig",
    "run_simulation",
    "mean_response_sweep",
    "tail_experiment",
    "SweepResult",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared run-length parameters for a family of simulations.

    ``base_seed`` shifts the whole experiment to a fresh workload
    realization (use different values for replications).
    """

    rounds: int = 10_000
    warmup: int = 0
    base_seed: int = 0


def _workload_seed(config: ExperimentConfig, system: SystemSpec, rho: float) -> int:
    """Seed from workload coordinates only (policy-independent)."""
    return derive_seed(config.base_seed, system.name, round(rho * 10_000))


def run_simulation(
    policy: str | Policy,
    system: SystemSpec,
    rho: float,
    config: ExperimentConfig | None = None,
    **policy_kwargs,
) -> SimulationResult:
    """Run one (policy, system, load) cell and return its result."""
    config = config or ExperimentConfig()
    rates = system.rates()
    arrivals = PoissonArrivals(system.lambdas(rho))
    service = GeometricService(rates)
    sim = Simulation(
        rates=rates,
        policy=make_policy(policy, **policy_kwargs),
        arrivals=arrivals,
        service=service,
        config=SimulationConfig(
            rounds=config.rounds,
            warmup=config.warmup,
            seed=_workload_seed(config, system, rho),
        ),
    )
    return sim.run()


@dataclass
class SweepResult:
    """Mean response times on a (policy x load) grid for one system."""

    system: SystemSpec
    loads: tuple[float, ...]
    policies: tuple[str, ...]
    #: ``means[policy][load]`` -> mean response time in rounds.
    means: dict[str, dict[float, float]]

    def row(self, policy: str) -> list[float]:
        """The policy's series over the load grid (figure line order)."""
        return [self.means[policy][rho] for rho in self.loads]

    def best_policy_at(self, rho: float) -> str:
        """Name of the policy with the lowest mean response at ``rho``."""
        return min(self.policies, key=lambda p: self.means[p][rho])


def mean_response_sweep(
    policies: list[str],
    system: SystemSpec,
    loads: tuple[float, ...],
    config: ExperimentConfig | None = None,
) -> SweepResult:
    """Reproduce one panel of Figures 3a/4a/6a/7a.

    Runs every (policy, load) cell with common random numbers and collects
    mean response times.
    """
    config = config or ExperimentConfig()
    means: dict[str, dict[float, float]] = {p: {} for p in policies}
    for rho in loads:
        for policy in policies:
            result = run_simulation(policy, system, rho, config)
            means[policy][rho] = result.mean_response_time
    return SweepResult(
        system=system,
        loads=tuple(loads),
        policies=tuple(policies),
        means=means,
    )


def tail_experiment(
    policies: list[str],
    system: SystemSpec,
    rho: float,
    config: ExperimentConfig | None = None,
) -> dict[str, SimulationResult]:
    """Reproduce one panel of Figures 3b/4b: full distributions at one load."""
    config = config or ExperimentConfig()
    return {
        policy: run_simulation(policy, system, rho, config) for policy in policies
    }
