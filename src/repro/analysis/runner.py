"""Legacy experiment runner: thin wrappers over :mod:`repro.experiments`.

The original one-off functions (``run_simulation``,
``mean_response_sweep``, ``tail_experiment``) predate the declarative
:class:`repro.experiments.Experiment` grid and are kept as back-compat
shims: same signatures, same results bit-for-bit (the default
:class:`~repro.experiments.WorkloadSpec` contributes no seed components,
so the historical ``derive_seed(base, system.name, round(rho * 10_000))``
scheme is reproduced exactly).  New code should declare an
``Experiment`` and call ``.run()`` -- it reaches the pluggable-workload
and parallel-execution machinery these wrappers cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import simulate_cell
from repro.experiments.grid import Experiment
from repro.experiments.workload import WorkloadSpec
from repro.policies.base import Policy
from repro.sim.engine import SimulationResult
from repro.sim.seeding import derive_seed
from repro.workloads.scenarios import SystemSpec

__all__ = [
    "ExperimentConfig",
    "run_simulation",
    "mean_response_sweep",
    "tail_experiment",
    "SweepResult",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared run-length parameters for a family of simulations.

    ``base_seed`` shifts the whole experiment to a fresh workload
    realization (use different values for replications).  ``backend``
    picks the engine round kernel (see :mod:`repro.sim.backends`);
    ``metrics`` appends extra observability probes (names or
    ``ProbeSpec``, see :mod:`repro.sim.probes`) to every run.
    """

    rounds: int = 10_000
    warmup: int = 0
    base_seed: int = 0
    backend: str = "reference"
    metrics: tuple = ()


def _workload_seed(config: ExperimentConfig, system: SystemSpec, rho: float) -> int:
    """Seed from workload coordinates only (policy-independent)."""
    return derive_seed(config.base_seed, system.name, round(rho * 10_000))


def run_simulation(
    policy: str | Policy,
    system: SystemSpec,
    rho: float,
    config: ExperimentConfig | None = None,
    **policy_kwargs,
) -> SimulationResult:
    """Run one (policy, system, load) cell and return its result.

    Equivalent to a one-cell :class:`~repro.experiments.Experiment` with
    the default workload; kept because a bare result object (and support
    for pre-built :class:`Policy` instances) is sometimes handier than a
    record container.
    """
    config = config or ExperimentConfig()
    if isinstance(policy, str) and policy_kwargs:
        from repro.experiments.grid import PolicySpec

        policy = PolicySpec(name=policy, kwargs=tuple(sorted(policy_kwargs.items())))
    return simulate_cell(
        policy,
        system,
        rho,
        WorkloadSpec(),
        seed=_workload_seed(config, system, rho),
        rounds=config.rounds,
        warmup=config.warmup,
        backend=config.backend,
        probes=config.metrics,
    )


@dataclass
class SweepResult:
    """Mean response times on a (policy x load) grid for one system."""

    system: SystemSpec
    loads: tuple[float, ...]
    policies: tuple[str, ...]
    #: ``means[policy][load]`` -> mean response time in rounds.
    means: dict[str, dict[float, float]]

    def row(self, policy: str) -> list[float]:
        """The policy's series over the load grid (figure line order)."""
        return [self.means[policy][rho] for rho in self.loads]

    def best_policy_at(self, rho: float) -> str:
        """Name of the policy with the lowest mean response at ``rho``."""
        return min(self.policies, key=lambda p: self.means[p][rho])


def mean_response_sweep(
    policies: list[str],
    system: SystemSpec,
    loads: tuple[float, ...],
    config: ExperimentConfig | None = None,
    workers: int | None = None,
) -> SweepResult:
    """Reproduce one panel of Figures 3a/4a/6a/7a.

    Runs every (policy, load) cell with common random numbers and collects
    mean response times.  ``workers > 1`` fans the cells out over a
    process pool (results are identical to the serial run).
    """
    config = config or ExperimentConfig()
    experiment = Experiment(
        policies=tuple(policies),
        systems=(system,),
        loads=tuple(loads),
        rounds=config.rounds,
        warmup=config.warmup,
        base_seed=config.base_seed,
        backend=config.backend,
        metrics=config.metrics,
    )
    result = experiment.run(workers=workers, keep_results=False)
    return result.to_sweep()


def tail_experiment(
    policies: list[str],
    system: SystemSpec,
    rho: float,
    config: ExperimentConfig | None = None,
    workers: int | None = None,
) -> dict[str, SimulationResult]:
    """Reproduce one panel of Figures 3b/4b: full distributions at one load."""
    config = config or ExperimentConfig()
    experiment = Experiment(
        policies=tuple(policies),
        systems=(system,),
        loads=(rho,),
        rounds=config.rounds,
        warmup=config.warmup,
        base_seed=config.base_seed,
        backend=config.backend,
        metrics=config.metrics,
    )
    result = experiment.run(workers=workers, keep_results=True)
    return {record.policy: record.result for record in result.records}
