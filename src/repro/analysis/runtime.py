"""Decision run-time measurement (Figures 5 and 8).

The paper asks: given the system state and a dispatcher's arrivals, how
long does computing the round's assignment take?  It reports the CDF of
per-decision times for SCD via Algorithm 1, SCD via Algorithm 4, JSQ and
SED, at rho = 0.99 over growing server counts.

We reproduce the protocol in two steps:

1. :func:`collect_snapshots` runs a short simulation under SCD and records
   (queue vector, batch size) pairs -- realistic high-load states.
2. :func:`measure_decision_times` times each technique's *from-scratch*
   single-dispatcher computation on those snapshots (sorting included, as
   Algorithm 2 charges it to the dispatcher).

Our substrate is Python/numpy rather than the paper's optimized C++, so
absolute times differ; the comparisons the figures establish -- Algorithm 4
scaling like JSQ/SED while Algorithm 1 grows faster -- are preserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.scd import scd_decision
from repro.policies.greedy import greedy_batch_assign
from repro.sim.arrivals import PoissonArrivals
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.service import GeometricService
from repro.workloads.scenarios import SystemSpec

from repro.policies.base import make_policy

__all__ = [
    "DecisionSnapshot",
    "collect_snapshots",
    "measure_decision_times",
    "RUNTIME_TECHNIQUES",
    "runtime_cdf_summary",
]


@dataclass(frozen=True)
class DecisionSnapshot:
    """One (state, batch) input to a dispatching decision."""

    queues: np.ndarray
    batch_size: int


def collect_snapshots(
    system: SystemSpec,
    rho: float = 0.99,
    rounds: int = 200,
    seed: int = 0,
    max_snapshots: int = 500,
) -> list[DecisionSnapshot]:
    """Harvest realistic high-load decision inputs from a short SCD run."""
    rates = system.rates()
    policy = make_policy("scd")
    snapshots: list[DecisionSnapshot] = []

    original_dispatch = policy.dispatch

    def recording_dispatch(dispatcher: int, num_jobs: int) -> np.ndarray:
        if len(snapshots) < max_snapshots:
            snapshots.append(
                DecisionSnapshot(
                    queues=np.array(policy._queues, dtype=np.int64),
                    batch_size=int(num_jobs),
                )
            )
        return original_dispatch(dispatcher, num_jobs)

    policy.dispatch = recording_dispatch  # type: ignore[method-assign]
    sim = Simulation(
        rates=rates,
        policy=policy,
        arrivals=PoissonArrivals(system.lambdas(rho)),
        service=GeometricService(rates),
        config=SimulationConfig(rounds=rounds, seed=seed, track_queue_series=False),
    )
    sim.run()
    return snapshots


def _scd_alg4(queues: np.ndarray, rates: np.ndarray, batch: int, m: int) -> None:
    scd_decision(queues, rates, batch, m, algorithm="vectorized")


def _scd_alg1(queues: np.ndarray, rates: np.ndarray, batch: int, m: int) -> None:
    scd_decision(queues, rates, batch, m, algorithm="quadratic")


def _jsq(queues: np.ndarray, rates: np.ndarray, batch: int, m: int) -> None:
    greedy_batch_assign(queues, np.ones_like(rates), batch)


def _sed(queues: np.ndarray, rates: np.ndarray, batch: int, m: int) -> None:
    greedy_batch_assign(queues, rates, batch)


#: Technique name -> callable(queues, rates, batch, m); the four lines of
#: Figures 5 and 8.
RUNTIME_TECHNIQUES = {
    "scd-alg4": _scd_alg4,
    "scd-alg1": _scd_alg1,
    "jsq": _jsq,
    "sed": _sed,
}


def measure_decision_times(
    technique: str,
    snapshots: list[DecisionSnapshot],
    rates: np.ndarray,
    num_dispatchers: int,
    repeats: int = 1,
) -> np.ndarray:
    """Per-snapshot decision latencies in seconds (one per snapshot).

    ``repeats > 1`` times each snapshot several times and keeps the
    minimum, suppressing scheduler noise for the fast techniques.
    """
    fn = RUNTIME_TECHNIQUES[technique]
    rates = np.asarray(rates, dtype=np.float64)
    times = np.empty(len(snapshots))
    for i, snap in enumerate(snapshots):
        best = np.inf
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            fn(snap.queues, rates, snap.batch_size, num_dispatchers)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
        times[i] = best
    return times


def runtime_cdf_summary(times_s: np.ndarray) -> dict[str, float]:
    """Microsecond summary statistics of a latency sample (CDF landmarks)."""
    us = np.asarray(times_s) * 1e6
    return {
        "p10_us": float(np.percentile(us, 10)),
        "p50_us": float(np.percentile(us, 50)),
        "p90_us": float(np.percentile(us, 90)),
        "p99_us": float(np.percentile(us, 99)),
        "mean_us": float(us.mean()),
    }
