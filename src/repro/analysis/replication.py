"""Replicated experiments with confidence intervals.

A single simulation is one realization of the arrival/departure processes;
for publication-grade comparisons the evaluation should be replicated over
independent workload realizations.  These helpers run R replications
(seeded so that replication r is common across policies -- paired
comparisons stay paired) and summarize means with Student-t confidence
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.analysis.runner import ExperimentConfig
from repro.experiments.grid import Experiment, PolicySpec
from repro.workloads.scenarios import SystemSpec

__all__ = ["ReplicatedResult", "replicated_runs", "paired_comparison"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Mean response time over R independent workload replications."""

    policy: str
    system: SystemSpec
    rho: float
    replication_means: tuple[float, ...]

    @property
    def replications(self) -> int:
        """Number of independent runs."""
        return len(self.replication_means)

    @property
    def mean(self) -> float:
        """Grand mean of the per-replication means."""
        return float(np.mean(self.replication_means))

    @property
    def std_error(self) -> float:
        """Standard error of the grand mean (0 for one replication)."""
        if self.replications < 2:
            return 0.0
        return float(
            np.std(self.replication_means, ddof=1) / np.sqrt(self.replications)
        )

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Student-t interval for the true mean response time."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        if self.replications < 2:
            return (self.mean, self.mean)
        halfwidth = self.std_error * stats.t.ppf(
            0.5 + level / 2.0, df=self.replications - 1
        )
        return (self.mean - halfwidth, self.mean + halfwidth)

    def __str__(self) -> str:
        lo, hi = self.confidence_interval()
        return (
            f"{self.policy}: {self.mean:.3f} "
            f"[{lo:.3f}, {hi:.3f}] over {self.replications} reps"
        )


def replicated_runs(
    policy: str,
    system: SystemSpec,
    rho: float,
    config: ExperimentConfig | None = None,
    replications: int = 5,
    **policy_kwargs,
) -> ReplicatedResult:
    """Run ``replications`` independent workload realizations.

    A thin wrapper over a one-policy :class:`repro.experiments.Experiment`
    with ``replications`` along the replication axis.  Replication ``r``
    shifts the experiment's base seed by ``r``; two policies replicated
    with the same arguments therefore see *matching* workloads per
    replication (paired design).
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    config = config or ExperimentConfig()
    experiment = Experiment(
        policies=(PolicySpec(name=policy, kwargs=tuple(sorted(policy_kwargs.items()))),),
        systems=(system,),
        loads=(rho,),
        replications=replications,
        rounds=config.rounds,
        warmup=config.warmup,
        base_seed=config.base_seed,
        backend=config.backend,
    )
    records = experiment.run(keep_results=False).records
    means = [r.metrics["mean"] for r in sorted(records, key=lambda r: r.replication)]
    return ReplicatedResult(
        policy=policy,
        system=system,
        rho=rho,
        replication_means=tuple(means),
    )


def paired_comparison(
    candidate: ReplicatedResult,
    baseline: ReplicatedResult,
    level: float = 0.95,
) -> dict[str, float | bool]:
    """Paired-t comparison of two policies replicated on matched workloads.

    Returns the mean per-replication difference (baseline - candidate; a
    positive value favors the candidate), the p-value of the paired t-test,
    and whether the candidate is significantly better at ``level``.

    Raises
    ------
    ValueError
        If the two results do not come from matching replication designs.
    """
    if (
        candidate.replications != baseline.replications
        or candidate.system != baseline.system
        or candidate.rho != baseline.rho
    ):
        raise ValueError("results are not from matching replication designs")
    if candidate.replications < 2:
        raise ValueError("paired comparison needs at least two replications")
    diffs = np.asarray(baseline.replication_means) - np.asarray(
        candidate.replication_means
    )
    t_stat, p_two_sided = stats.ttest_rel(
        baseline.replication_means, candidate.replication_means
    )
    # One-sided: candidate better means diffs > 0.
    p_one_sided = p_two_sided / 2.0 if t_stat > 0 else 1.0 - p_two_sided / 2.0
    return {
        "mean_improvement": float(diffs.mean()),
        "p_value": float(p_one_sided),
        "significant": bool(p_one_sided < 1.0 - level),
    }
