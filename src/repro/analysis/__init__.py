"""Evaluation protocol: runner, tails, run-time and stability analysis."""

from .ccdf import ccdf_series, tail_improvement_factor, tail_quantiles
from .herding import HerdingProbe, HerdingStats
from .persistence import (
    load_experiment,
    load_result,
    load_sweep,
    save_experiment,
    save_result,
    save_sweep,
)
from .replication import ReplicatedResult, paired_comparison, replicated_runs
from .runner import (
    ExperimentConfig,
    SweepResult,
    mean_response_sweep,
    run_simulation,
    tail_experiment,
)
from .runtime import (
    RUNTIME_TECHNIQUES,
    DecisionSnapshot,
    collect_snapshots,
    measure_decision_times,
    runtime_cdf_summary,
)
from .stability import StabilityVerdict, assess_stability
from .tables import format_series_table, format_table

__all__ = [
    "ExperimentConfig",
    "run_simulation",
    "mean_response_sweep",
    "tail_experiment",
    "SweepResult",
    "ccdf_series",
    "tail_quantiles",
    "tail_improvement_factor",
    "DecisionSnapshot",
    "collect_snapshots",
    "measure_decision_times",
    "runtime_cdf_summary",
    "RUNTIME_TECHNIQUES",
    "HerdingProbe",
    "HerdingStats",
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "save_experiment",
    "load_experiment",
    "ReplicatedResult",
    "replicated_runs",
    "paired_comparison",
    "assess_stability",
    "StabilityVerdict",
    "format_table",
    "format_series_table",
]
