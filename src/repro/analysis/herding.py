"""Herding diagnostics: measuring coordination failures directly.

The paper's narrative is that deterministic full-information policies herd
-- within a single round, many dispatchers independently pick the same few
servers, piling jobs onto them.  Response times show the *consequence*;
this module measures the *mechanism*:

* **round spike** -- the largest number of jobs any single server receives
  in one round.  Herding makes spikes scale with the number of
  dispatchers; coordinated policies keep them near the balanced share.
* **arrival imbalance** -- the per-round coefficient of variation of jobs
  received across servers, normalized against the rate-proportional split
  (so heterogeneity-aware placement is not itself flagged as imbalance).

:class:`HerdingProbe` wraps any policy transparently; run it through the
ordinary engine and read the statistics afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Policy, SystemContext

__all__ = ["HerdingProbe", "HerdingStats"]


class HerdingStats:
    """Aggregated per-round placement statistics."""

    def __init__(self) -> None:
        self.rounds_observed = 0
        self.max_spike = 0
        self._spike_sum = 0.0
        self._imbalance_sum = 0.0

    def observe(self, received: np.ndarray, fair_share: np.ndarray) -> None:
        """Fold in one round's per-server received-job counts.

        Parameters
        ----------
        received:
            Jobs each server received this round (all dispatchers).
        fair_share:
            The rate-proportional expectation for this round's total --
            the placement a perfectly coordinated randomized policy
            centers on.
        """
        total = int(received.sum())
        if total == 0:
            return
        self.rounds_observed += 1
        spike = int(received.max())
        self._spike_sum += spike
        if spike > self.max_spike:
            self.max_spike = spike
        # Root-mean-square deviation from the fair share, scaled by the
        # round total: 0 = perfectly proportional placement.
        deviation = np.sqrt(np.mean((received - fair_share) ** 2))
        self._imbalance_sum += deviation / total

    def observe_many(self, received: np.ndarray, fair_shares: np.ndarray) -> None:
        """Fold in a block of rounds at once (vectorized ``observe``).

        Parameters
        ----------
        received:
            ``(rounds, servers)`` jobs each server received per round.
        fair_shares:
            Same shape: each round's rate-proportional expectation.

        Rounds with no arrivals are skipped, exactly as ``observe``
        skips them; the accumulated statistics match the per-round loop
        (the imbalance sum up to floating-point summation order).
        """
        received = np.asarray(received)
        totals = received.sum(axis=1)
        active = totals > 0
        if not active.any():
            return
        rows = received[active]
        shares = np.asarray(fair_shares)[active]
        self.rounds_observed += int(rows.shape[0])
        spikes = rows.max(axis=1)
        self._spike_sum += float(spikes.sum())
        self.max_spike = max(self.max_spike, int(spikes.max()))
        deviation = np.sqrt(np.mean((rows - shares) ** 2, axis=1))
        self._imbalance_sum += float((deviation / totals[active]).sum())

    def merge(self, other: "HerdingStats") -> None:
        """Fold another accumulator's rounds into this one."""
        self.rounds_observed += other.rounds_observed
        self.max_spike = max(self.max_spike, other.max_spike)
        self._spike_sum += other._spike_sum
        self._imbalance_sum += other._imbalance_sum

    def get_state(self) -> dict:
        """Accumulated state as a JSON-able dict (see :meth:`set_state`)."""
        return {
            "rounds": self.rounds_observed,
            "max_spike": self.max_spike,
            "spike_sum": self._spike_sum,
            "imbalance_sum": self._imbalance_sum,
        }

    def set_state(self, state: dict) -> None:
        """Restore state written by :meth:`get_state` (probe persistence)."""
        self.rounds_observed = int(state.get("rounds", 0))
        self.max_spike = int(state.get("max_spike", 0))
        self._spike_sum = float(state.get("spike_sum", 0.0))
        self._imbalance_sum = float(state.get("imbalance_sum", 0.0))

    @property
    def mean_spike(self) -> float:
        """Average per-round maximum pile-up."""
        if self.rounds_observed == 0:
            return 0.0
        return self._spike_sum / self.rounds_observed

    @property
    def mean_imbalance(self) -> float:
        """Average normalized RMS deviation from rate-proportional placement."""
        if self.rounds_observed == 0:
            return 0.0
        return self._imbalance_sum / self.rounds_observed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HerdingStats rounds={self.rounds_observed} "
            f"max_spike={self.max_spike} mean_spike={self.mean_spike:.2f}>"
        )


class HerdingProbe(Policy):
    """Transparent wrapper measuring a policy's per-round placements.

    Behaves exactly like the wrapped policy (same name, same decisions,
    same RNG consumption); accumulates a :class:`HerdingStats` as the
    simulation runs.

    Example
    -------
    >>> import repro
    >>> from repro.analysis.herding import HerdingProbe
    >>> probe = HerdingProbe(repro.make_policy("jsq"))
    >>> # ... run `probe` through repro.Simulation ...
    >>> # probe.stats.max_spike, probe.stats.mean_imbalance
    """

    def __init__(self, inner: Policy) -> None:
        super().__init__()
        self.inner = inner
        self.name = inner.name
        self.stats = HerdingStats()
        self._round_received: np.ndarray | None = None
        self._rate_share: np.ndarray | None = None

    def bind(self, ctx: SystemContext) -> None:
        """Bind both the probe and the wrapped policy."""
        super().bind(ctx)
        self.inner.bind(ctx)
        self._round_received = np.zeros(ctx.num_servers, dtype=np.int64)
        self._rate_share = ctx.rates / ctx.rates.sum()

    def begin_round(self, round_index: int, queues: np.ndarray) -> None:
        """Flush the previous round's counts, then delegate."""
        self._flush()
        self.inner.begin_round(round_index, queues)

    def dispatch(self, dispatcher: int, num_jobs: int) -> np.ndarray:
        """Delegate and record the returned placement."""
        counts = self.inner.dispatch(dispatcher, num_jobs)
        self._round_received += counts
        return counts

    def end_round(self, round_index: int, queues: np.ndarray) -> None:
        """Delegate (local-state policies update here)."""
        self.inner.end_round(round_index, queues)

    def observe_total_arrivals(self, total: int) -> None:
        """Delegate (oracle estimators listen here)."""
        self.inner.observe_total_arrivals(total)

    def finalize(self) -> HerdingStats:
        """Flush the last round and return the accumulated statistics."""
        self._flush()
        return self.stats

    def _flush(self) -> None:
        if self._round_received is None:
            return
        total = int(self._round_received.sum())
        if total:
            self.stats.observe(self._round_received, total * self._rate_share)
            self._round_received[:] = 0
