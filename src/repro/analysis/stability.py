"""Empirical stability diagnostics (Appendix D, footnote 1).

The paper proves SCD is *strongly stable*: at any admissible load
(``rho < 1``) the time-averaged total queue length stays bounded.  It also
notes that heterogeneity-oblivious policies -- JSQ(d) with ``d < n``,
uniform random -- can be *unstable* in heterogeneous systems: slow servers
receive more work than they can process and their queues grow without
bound while fast servers idle.

These diagnostics classify a finite run: a stable policy's total-queue
series flattens out, an unstable one's grows linearly.  We use two
complementary signals (growth slope relative to capacity, and the
tail/head mean ratio) so that a noisy-but-stationary series is not
misclassified.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.sim.engine import SimulationResult

__all__ = ["StabilityVerdict", "assess_stability"]


@dataclass(frozen=True)
class StabilityVerdict:
    """Outcome of an empirical stability check on one run."""

    stable: bool
    growth_slope: float
    tail_to_head_ratio: float
    mean_total_queue: float

    def __str__(self) -> str:
        word = "STABLE" if self.stable else "UNSTABLE"
        return (
            f"{word} (slope={self.growth_slope:+.4f} jobs/round, "
            f"tail/head={self.tail_to_head_ratio:.2f}, "
            f"mean queue={self.mean_total_queue:.1f})"
        )


def assess_stability(
    result: SimulationResult,
    total_capacity: float,
    slope_fraction: float = 0.01,
    ratio_threshold: float = 2.5,
) -> StabilityVerdict:
    """Classify a run as empirically stable or unstable.

    A run is flagged unstable when the queue series grows faster than
    ``slope_fraction`` of the per-round system capacity *and* the last
    quarter's mean exceeds the first quarter's by ``ratio_threshold`` --
    both a trend and a level shift, so stationary noise does not trip it.

    Parameters
    ----------
    result:
        A simulation result with ``track_queue_series`` enabled.
    total_capacity:
        ``sum(mu)``, used to normalize the slope.
    """
    series = result.queue_series
    if series is None:
        raise ValueError("run the simulation with track_queue_series=True")
    slope = series.growth_slope()
    ratio = series.tail_to_head_ratio()
    growing = slope > slope_fraction * total_capacity and ratio > ratio_threshold
    return StabilityVerdict(
        stable=not growing,
        growth_slope=slope,
        tail_to_head_ratio=ratio,
        mean_total_queue=series.mean(),
    )
