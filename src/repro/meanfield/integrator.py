"""Fixed-step explicit integrators with per-step invariant checks.

The mean-field backend uses this to advance the power-of-d arrival ODE
in within-round job time; the examples use it directly on the combined
fluid drift.  The integrators are intentionally plain -- fixed-step RK4
for production, Euler for debugging discretization effects -- because
the checked invariants, not adaptivity, are what make the results
trustworthy: every step verifies the state stayed (numerically) inside
``[0, 1]`` and, when a mass functional is supplied, that the integrated
mass change is consistent with the step's own flux (conservation).

Tail states additionally need monotonicity (``s_k >= s_{k+1}``); the
caller passes the model's projection for that, and the projection
doubles as the stabilizer for the stiff JSQ limit (d -> n), where an
explicit step can overfill a level by design and the projection is
exactly the water-filling correction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["InvariantError", "euler_step", "rk4_step", "FixedStepIntegrator"]

#: Integration methods the backend grammar accepts.
METHODS = ("rk4", "euler")


class InvariantError(RuntimeError):
    """A fluid-state invariant (bounds or conservation) was violated."""


def euler_step(f: Callable, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """One forward-Euler step of ``dy/dt = f(t, y)``."""
    return y + h * f(t, y)


def rk4_step(f: Callable, t: float, y: np.ndarray, h: float) -> np.ndarray:
    """One classical Runge-Kutta step of ``dy/dt = f(t, y)``."""
    k1 = f(t, y)
    k2 = f(t + 0.5 * h, y + 0.5 * h * k1)
    k3 = f(t + 0.5 * h, y + 0.5 * h * k2)
    k4 = f(t + h, y + h * k3)
    return y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


_STEPPERS = {"euler": euler_step, "rk4": rk4_step}


class FixedStepIntegrator:
    """Fixed-step integration with bounds/conservation checks each step.

    Parameters
    ----------
    method:
        ``"rk4"`` or ``"euler"``.
    dt:
        Target step size; :meth:`integrate` divides each interval into
        equal steps no longer than this.
    bounds_tol:
        How far below 0 a component may land before the step is
        declared broken (values within tolerance are clipped).
    overshoot:
        How far above 1 a component may *transiently* land before being
        projected back.  The stiff JSQ limit (d -> n) legitimately
        overfills the level at the filling front within a step -- the
        projection is the water-filling correction -- but anything past
        this slack (or any non-finite value) means the step size is
        genuinely too large for the drift and the step raises.
    """

    def __init__(
        self,
        method: str = "rk4",
        dt: float = 0.25,
        bounds_tol: float = 1e-6,
        overshoot: float = 0.5,
    ) -> None:
        if method not in _STEPPERS:
            known = ", ".join(sorted(_STEPPERS))
            raise ValueError(f"unknown integration method {method!r}; known: {known}")
        if not dt > 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.method = method
        self.dt = float(dt)
        self.bounds_tol = float(bounds_tol)
        self.overshoot = float(overshoot)
        self._step = _STEPPERS[method]

    def integrate(
        self,
        f: Callable,
        y: np.ndarray,
        t0: float,
        t1: float,
        project: Callable[[np.ndarray], np.ndarray] | None = None,
        mass: Callable[[np.ndarray], float] | None = None,
        mass_rate_bound: float = 1.0,
    ) -> np.ndarray:
        """Advance ``dy/dt = f(t, y)`` from ``t0`` to ``t1``.

        ``project`` (e.g. the tail-polytope projection) is applied after
        each step, once the raw step passed the bounds check.  When
        ``mass`` is given, each step also checks conservation: the mass
        gained may not exceed ``mass_rate_bound * h`` (plus tolerance)
        and may not be negative -- for the arrival ODE, jobs enter at
        unit rate per server and never leave.
        """
        if t1 <= t0:
            return y
        span = t1 - t0
        steps = max(1, int(np.ceil(span / self.dt)))
        h = span / steps
        tol = self.bounds_tol
        for i in range(steps):
            t = t0 + i * h
            y_new = self._step(f, t, y, h)
            if not np.all(np.isfinite(y_new)):
                raise InvariantError(
                    f"{self.method} step at t={t:.6g} produced non-finite "
                    f"state (h={h:.3g}); reduce dt"
                )
            low = float(y_new.min())
            high = float(y_new.max())
            if low < -tol or high > 1.0 + self.overshoot:
                raise InvariantError(
                    f"{self.method} step at t={t:.6g} left [0,1]: "
                    f"min={low:.3e} max={high:.3e} (h={h:.3g}); "
                    "reduce dt"
                )
            y_new = np.clip(y_new, 0.0, 1.0)
            if project is not None:
                y_new = project(y_new)
            if mass is not None:
                gained = mass(y_new) - mass(y)
                if gained < -tol or gained > mass_rate_bound * h + tol:
                    raise InvariantError(
                        f"{self.method} step at t={t:.6g} broke conservation: "
                        f"mass change {gained:.3e} outside "
                        f"[0, {mass_rate_bound * h:.3e}] (h={h:.3g})"
                    )
            y = y_new
        return y
