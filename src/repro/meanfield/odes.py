"""Fluid-limit algebra for the synchronous-round model.

State convention
----------------
The mean-field state is the per-class queue-length tail matrix
``S[j, k-1] = s_{j,k} = P(a class-j server holds >= k jobs)`` for levels
``k = 1..K`` (``K`` = truncation depth).  Tails are the right coordinate
system: every update below maps valid tails (monotone, in ``[0, 1]``) to
valid tails, and mass pushed past the truncation depth pools in the last
tail instead of silently vanishing.

Round structure
---------------
One engine round is *arrivals then departures*, and the limit object
inherits that split exactly:

* **Departures** (geometric capacities, mean ``mu_j``) are an *exact
  linear* map on tails.  With ``beta_j = mu_j / (1 + mu_j)`` (so
  ``P(C >= k) = beta_j**k``), a server at level ``q`` ends the round at
  level ``>= k`` with probability ``1 - beta_j**(q-k+1)``, hence

      s'_k  =  s_k - D_k,      D_k = sum_{q>=k} p_q * beta_j**(q-k+1),

  where ``p_q`` is the level pmf.  No integration error, no stiffness:
  this is probability calculus, valid at any load.

* **Arrivals** depend on the policy:

  - ``random`` (and ``rr``, modeled as a uniform split): each server
    receives an independent ``Poisson(lambda(t))`` batch, so the round
    update is the exact convolution of the level pmf with the Poisson
    tail -- again a linear map, and in fact exact *at every finite n*
    for the marginal distribution, not just in the limit.
  - ``jsq(d)`` / ``jsq`` (d -> n): jobs arrive one at a time and each
    joins the shortest of ``d`` uniform samples of the *current*
    empirical state, so within a round the tails follow the classical
    power-of-d ODE in job time ``tau`` (jobs per server, from 0 to
    ``lambda(t)``):

        ds_{j,k}/dtau = w_k(ybar) * p_{j,k-1},
        w_k = (ybar_{k-1}**d - ybar_k**d) / (ybar_{k-1} - ybar_k),

    with ``ybar`` the class-mixture tails.  This is Mitzenmacher's
    drift lifted to heterogeneous classes: ``w_k`` is the probability
    (per job) that the sampled d-set bottoms out at level ``k-1``, and
    ``p_{j,k-1} / (ybar_{k-1} - ybar_k)`` is class j's share of that
    level.  The backend integrates it with the fixed-step RK4/Euler
    integrator.

Heterogeneity enters only through the class decomposition: a rate
vector with ``n`` distinct entries is quantized into at most
``max_classes`` rate bins (:class:`ServerClasses`), after which every
cost below is independent of ``n`` -- the whole point of the backend.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ServerClasses",
    "FluidModel",
    "arrival_choices_for_policy",
    "SUPPORTED_POLICY_FORMS",
]

#: Policy-name forms the fluid model covers, for error messages / docs.
SUPPORTED_POLICY_FORMS = ("random", "rr", "jsq", "jsq(d)")

_POWER_OF_D = re.compile(r"^jsq\((\d+)\)$")


def arrival_choices_for_policy(policy_name: str, num_servers: int) -> int | None:
    """Map a registered policy name to its arrival regime.

    Returns ``None`` for the Poisson-split regime (``random``; ``rr`` is
    modeled as a uniform split, honest for mean behavior), the sample
    count ``d`` for ``jsq(d)``, and ``num_servers`` for full ``jsq``
    (the d -> n limit).  Raises :class:`ValueError` for policies whose
    drift the fluid model does not have (rate-aware samplers like
    ``hjsq``/``sed``/``wr`` weight servers by identity, which the
    exchangeable-within-class limit cannot represent).
    """
    name = policy_name.lower()
    if name in ("random", "rr"):
        return None
    if name == "jsq":
        return num_servers
    match = _POWER_OF_D.match(name)
    if match:
        d = int(match.group(1))
        if d < 1:
            raise ValueError(f"power-of-d policy needs d >= 1, got {policy_name!r}")
        return min(d, num_servers)
    supported = ", ".join(SUPPORTED_POLICY_FORMS)
    raise ValueError(
        f"mean-field backend has no fluid drift for policy {policy_name!r}; "
        f"supported policies: {supported}"
    )


@dataclass(frozen=True)
class ServerClasses:
    """Heterogeneous rate vector quantized into exchangeable classes."""

    #: Per-class mean service capacity (jobs/round), shape ``(J,)``.
    mu: np.ndarray
    #: Class weights (fraction of servers), shape ``(J,)``, sums to 1.
    gamma: np.ndarray
    #: Total servers represented.
    num_servers: int
    #: Class index of every server, shape ``(n,)`` -- used to expand
    #: per-class summaries back to per-server arrays for probes.
    class_of: np.ndarray

    @classmethod
    def from_rates(cls, rates: np.ndarray, max_classes: int = 16) -> "ServerClasses":
        """Group servers by rate, quantizing to at most ``max_classes`` bins.

        Exact grouping when the vector has few distinct rates (the u2 /
        u3 profiles); otherwise equal-population bins over the sorted
        rates with the bin mean as the class rate (the continuous u1
        profiles), which preserves the aggregate service capacity of
        every bin.
        """
        rates = np.asarray(rates, dtype=np.float64)
        if rates.ndim != 1 or rates.size == 0:
            raise ValueError("rates must be a non-empty 1-D vector")
        if np.any(rates <= 0):
            raise ValueError("mean-field classes need strictly positive rates")
        if max_classes < 1:
            raise ValueError(f"max_classes must be >= 1, got {max_classes}")
        n = rates.size
        unique = np.unique(rates)
        if unique.size <= max_classes:
            class_of = np.searchsorted(unique, rates)
            mu = unique
        else:
            order = np.argsort(rates, kind="stable")
            # Equal-population contiguous bins over the sorted rates.
            bin_of_sorted = (
                np.arange(n, dtype=np.int64) * max_classes // n
            )
            class_of = np.empty(n, dtype=np.int64)
            class_of[order] = bin_of_sorted
            mu = np.array(
                [rates[class_of == j].mean() for j in range(max_classes)]
            )
        counts = np.bincount(class_of, minlength=mu.size).astype(np.float64)
        return cls(
            mu=mu,
            gamma=counts / n,
            num_servers=n,
            class_of=class_of.astype(np.int64),
        )

    @property
    def num_classes(self) -> int:
        return self.mu.size

    def expand(self, per_class: np.ndarray) -> np.ndarray:
        """Broadcast a per-class vector back to a per-server vector."""
        return np.asarray(per_class)[self.class_of]


class FluidModel:
    """The per-round fluid maps for one (classes, depth, policy) triple."""

    def __init__(
        self,
        classes: ServerClasses,
        depth: int = 128,
        choices: int | None = None,
    ) -> None:
        if depth < 2:
            raise ValueError(f"truncation depth must be >= 2, got {depth}")
        if choices is not None and choices < 1:
            raise ValueError(f"choices must be >= 1 when given, got {choices}")
        self.classes = classes
        self.depth = int(depth)
        self.choices = choices
        self.beta = classes.mu / (1.0 + classes.mu)
        # Departure operator: M[j, k-1, q] = beta_j**(q-k+1) for q >= k
        # (levels q = 0..K as pmf columns, target tails k = 1..K), so
        # D = M @ pmf is the full departure flux in one batched matmul.
        K = self.depth
        k_idx = np.arange(1, K + 1)[:, None]  # (K, 1)
        q_idx = np.arange(0, K + 1)[None, :]  # (1, K+1)
        expo = q_idx - k_idx + 1  # (K, K+1)
        valid = expo >= 1
        expo_safe = np.where(valid, expo, 0)
        self._dep = np.where(
            valid[None, :, :],
            self.beta[:, None, None] ** expo_safe[None, :, :],
            0.0,
        )  # (J, K, K+1)

    # ------------------------------------------------------------------
    # state helpers
    def empty_state(self) -> np.ndarray:
        """All servers idle: every tail fraction zero."""
        return np.zeros((self.classes.num_classes, self.depth))

    def pmf(self, S: np.ndarray) -> np.ndarray:
        """Level pmf ``(J, K+1)`` for levels ``0..K`` (level K pools >= K)."""
        J, K = S.shape
        p = np.empty((J, K + 1))
        p[:, 0] = 1.0 - S[:, 0]
        p[:, 1:K] = S[:, : K - 1] - S[:, 1:]
        p[:, K] = S[:, K - 1]
        return p

    def mixture_tails(self, S: np.ndarray) -> np.ndarray:
        """Mixture tails ``ybar_k`` for ``k = 0..K`` (``ybar_0 = 1``)."""
        Y = np.empty(self.depth + 1)
        Y[0] = 1.0
        Y[1:] = self.classes.gamma @ S
        return Y

    def mean_queue_per_server(self, S: np.ndarray) -> float:
        """Mixture mean queue length per server (jobs)."""
        return float(self.classes.gamma @ S.sum(axis=1))

    def project(self, S: np.ndarray) -> np.ndarray:
        """Clip to the valid tail polytope: ``1 >= s_1 >= ... >= s_K >= 0``."""
        S = np.clip(S, 0.0, 1.0)
        return np.minimum.accumulate(S, axis=1)

    # ------------------------------------------------------------------
    # departures (exact linear round map)
    def departure_flux(self, S: np.ndarray) -> np.ndarray:
        """Per-class per-level departure probability mass this round."""
        return np.einsum("jkq,jq->jk", self._dep, self.pmf(S))

    def depart(self, S: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One exact departure phase; returns ``(S_new, flux)``."""
        D = self.departure_flux(S)
        return self.project(S - D), D

    # ------------------------------------------------------------------
    # arrivals, Poisson-split regime (exact round map)
    def poisson_tail(self, a: float) -> np.ndarray:
        """``T[i-1] = P(Poisson(a) >= i)`` for ``i = 1..K``."""
        K = self.depth
        if a <= 0.0:
            return np.zeros(K)
        terms = np.empty(K)
        terms[0] = np.exp(-a)
        if K > 1:
            terms[1:] = a / np.arange(1, K)
            terms = np.cumprod(terms)
        return np.clip(1.0 - np.cumsum(terms), 0.0, 1.0)

    def apply_poisson_arrivals(
        self, S: np.ndarray, a: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """One exact Poisson(``a``)-batch arrival phase.

        Returns ``(S_new, joins)`` where ``joins[j, k-1]`` is the
        expected number of jobs (per class-j server) that landed at
        queue position ``k`` this round -- exactly the tail increment
        ``s'_k - s_k``, which is what the response-time synthesis needs.
        """
        if a <= 0.0:
            return S, np.zeros_like(S)
        K = self.depth
        p = self.pmf(S)
        # kernel[i] = P(A >= i) with kernel[0] = 0, so the convolution
        # sum_{q < k} p_q * P(A >= k - q) is conv(p, kernel)[k].
        kernel = np.empty(K + 1)
        kernel[0] = 0.0
        kernel[1:] = self.poisson_tail(a)
        inc = np.empty_like(S)
        for j in range(p.shape[0]):
            inc[j] = np.convolve(p[j], kernel)[1 : K + 1]
        return self.project(S + inc), inc

    # ------------------------------------------------------------------
    # arrivals, full-JSQ regime (exact water-filling round map)
    def apply_waterfill_arrivals(
        self, S: np.ndarray, a: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """One exact sequential-JSQ arrival phase (the d -> n limit).

        Each job joins a current-minimum queue, so ``a`` jobs per server
        water-fill the profile: find the largest integer level ``L``
        whose cumulative deficit ``sum_{k<=L} (1 - ybar_k)`` fits in
        ``a``, raise every server below ``L`` to ``L``, and spend the
        remainder lifting level ``L+1`` -- split across classes by
        their share of the servers sitting at the waterline.  Exact,
        conservative (up to truncation) and stiffness-free, which the
        explicit ODE in this regime is not.
        """
        if a <= 0.0:
            return S, np.zeros_like(S)
        K = self.depth
        Y = self.mixture_tails(S)[1:]  # ybar_k for k = 1..K
        deficit = np.concatenate(([0.0], np.cumsum(1.0 - Y)))  # index L = 0..K
        L = int(np.searchsorted(deficit, a, side="right") - 1)
        S_new = S.copy()
        if L >= K:
            # More mass than the truncation can level; saturate.
            S_new[:, :] = 1.0
            return S_new, S_new - S
        S_new[:, :L] = 1.0
        remainder = a - deficit[L]
        if remainder > 0.0 and L < K:
            # Servers at the waterline (exactly L after leveling):
            # class share 1 - s_{j,L+1}; mixture share 1 - ybar_{L+1}.
            at_line = 1.0 - S_new[:, L]
            total = float(self.classes.gamma @ at_line)
            if total > 1e-15:
                S_new[:, L] += remainder * at_line / total
        S_new = self.project(S_new)
        return S_new, S_new - S

    # ------------------------------------------------------------------
    # arrivals, power-of-d choice regime (job-time ODE drift)
    def arrival_drift(self, S: np.ndarray) -> np.ndarray:
        """``ds/dtau`` at unit job rate per server (power-of-d regime)."""
        if self.choices is None:
            raise ValueError("arrival_drift needs a power-of-d model (choices set)")
        d = self.choices
        K = self.depth
        Y = self.mixture_tails(S)
        hi, lo = Y[:-1], Y[1:]
        denom = hi - lo
        with np.errstate(divide="ignore", invalid="ignore"):
            w = np.where(
                denom > 1e-12,
                (hi**d - lo**d) / np.where(denom > 1e-12, denom, 1.0),
                d * np.where(hi > 0.0, hi, 0.0) ** (d - 1),
            )
        p_below = self.pmf(S)[:, :K]  # p_{j, k-1} for k = 1..K
        return w[None, :] * p_below

    def drift(self, S: np.ndarray, rate: float) -> np.ndarray:
        """Continuous-time net drift ``rate * A(S) - D(S)`` (jobs/round).

        The backend itself advances the *split* round maps (exact
        departures, phase-ordered arrivals); this combined form is the
        classical fluid ODE used by the fixed-point analysis in
        :mod:`examples` and by drift-level unit tests.
        """
        return rate * self.arrival_drift(S) - self.departure_flux(S)
