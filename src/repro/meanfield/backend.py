"""The ``meanfield`` engine backend: fluid limits through the probe seam.

:class:`MeanFieldBackend` consumes the exact same bound
:class:`~repro.sim.engine.Simulation` every simulation kernel consumes
-- policy, arrival process, geometric service, scenario-modulated rate
curves, probes -- but advances the deterministic fluid limit instead of
sampling servers, so its cost is independent of ``n``: a million-server
system integrates as fast as a hundred-server one.

What it honestly supports (and what it refuses):

* policies ``random``, ``rr`` (as a uniform split), ``jsq(d)`` and
  ``jsq`` (as d -> n); rate-aware samplers are rejected because the
  within-class exchangeable limit cannot represent them;
* ``PoissonArrivals`` and scenario-modulated ``ModulatedRateArrivals``
  -- the PR 9 rate curves *are* the time-varying ``lambda(t)`` of the
  drift; churn/elastic scenarios (which rewrite the policy or service)
  are rejected;
* ``GeometricService`` only (the departure update is exact for it);
* probes ``windowed_mean`` / ``windowed_stability`` / ``server_stats``,
  whose summaries it synthesizes from the fluid state; probes needing
  discrete events are rejected;
* no checkpoint/resume: there is no kernel state to export, and the
  whole run costs less than one checkpoint write.  Capability flags
  (:meth:`capabilities`) make every one of these limits visible to
  ``Experiment``, ``Run`` and the CLI before anything executes.

Result synthesis leans on two exact identities of the model: the
expected number of jobs joining queue position ``k`` per server-round
equals the arrival-phase tail increment ``s'_k - s_k`` (feeding the
response histogram via the drain-time map ``T(j, k) = k / mu_j + 1``,
which reproduces Little's law ``T = N / lambda + 1`` for the end-of-round
census), and the expected completions equal the departure flux mass.
"""

from __future__ import annotations

import numpy as np

from ..scenarios.arrivals import ModulatedRateArrivals
from ..scenarios.churn import ChurnPolicyAdapter
from ..sim.arrivals import PoissonArrivals
from ..sim.backends import (
    BackendCapabilities,
    EngineBackend,
    _make_result,
    register_backend,
)
from ..sim.lifecycle import RunController
from ..sim.metrics import QueueLengthSeries, ResponseTimeHistogram
from ..sim.probes import (
    ProbeContext,
    ProbeSpec,
    QueueSeriesProbe,
    ResponseTimeProbe,
)
from ..sim.service import GeometricService
from .integrator import METHODS, FixedStepIntegrator, InvariantError
from .odes import FluidModel, ServerClasses, arrival_choices_for_policy

__all__ = ["MeanFieldBackend"]

#: Probe names whose summaries the fluid state can synthesize.
PROBE_ALLOWLIST = frozenset({"windowed_mean", "windowed_stability", "server_stats"})

#: Rounds of rate-curve factors materialized per chunk.
_FACTOR_CHUNK = 16384

#: Mixture mass allowed in the pooled deepest tail before the run is
#: declared untruncatable.  Above this the fluid state is silently
#: capping queues the real system would keep growing (an unstable
#: configuration, or a depth= too shallow for the load), so the honest
#: move is to refuse rather than report a bounded lie.
_TRUNCATION_LIMIT = 0.05


@register_backend("meanfield")
class MeanFieldBackend(EngineBackend):
    """Analytical fluid-limit engine (see module docstring)."""

    name = "meanfield"
    description = (
        "analytical fluid-limit engine: integrates per-class queue-tail "
        "dynamics instead of simulating servers (random/rr/jsq(d)/jsq; "
        "cost independent of n)"
    )

    def __init__(
        self,
        method: str = "rk4",
        dt: float = 0.25,
        depth: int = 128,
        classes: int = 16,
    ) -> None:
        # The integrator constructor owns method/dt validation.
        self.integrator = FixedStepIntegrator(method=method, dt=dt)
        if depth < 2:
            raise ValueError(f"depth must be >= 2, got {depth}")
        if classes < 1:
            raise ValueError(f"classes must be >= 1, got {classes}")
        self.method = method
        self.dt = float(dt)
        self.depth = int(depth)
        self.max_classes = int(classes)

    @classmethod
    def from_param(cls, param: str, **kwargs) -> "MeanFieldBackend":
        """Parse the ``meanfield[:rk4|euler][:key=value...]`` grammar.

        Examples: ``meanfield:rk4:dt=0.1``, ``meanfield:euler``,
        ``meanfield:depth=256:classes=8``.  Keys: ``dt`` (job-time step
        of the choice-arrival integration), ``depth`` (tail truncation),
        ``classes`` (max heterogeneity bins).
        """
        if kwargs:
            raise ValueError("meanfield backend takes no factory kwargs")
        settings: dict = {}
        for token in param.split(":"):
            if not token:
                raise ValueError(f"empty token in meanfield parameters {param!r}")
            if token in METHODS:
                if "method" in settings:
                    raise ValueError(
                        f"integration method given twice in {param!r}"
                    )
                settings["method"] = token
                continue
            key, sep, value = token.partition("=")
            if not sep or key not in ("dt", "depth", "classes"):
                raise ValueError(
                    f"bad meanfield parameter {token!r}; expected one of "
                    f"{'/'.join(METHODS)} or dt=/depth=/classes="
                )
            if key in settings:
                raise ValueError(f"meanfield parameter {key!r} given twice")
            try:
                settings[key] = float(value) if key == "dt" else int(value)
            except ValueError:
                raise ValueError(
                    f"bad value for meanfield parameter {key!r}: {value!r}"
                ) from None
        return cls(**settings)

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            supports_checkpoint=False,
            supports_probes=False,
            probe_allowlist=PROBE_ALLOWLIST,
            analytic=True,
        )

    # ------------------------------------------------------------------
    def _validate(self, sim) -> tuple[np.ndarray, object, int | None]:
        """Check the bound simulation is inside the fluid model's reach."""
        policy = sim.policy
        if isinstance(policy, ChurnPolicyAdapter):
            raise ValueError(
                "meanfield backend cannot model churn scenarios (the fluid "
                "limit has no per-server identity to mask); use a "
                "simulation backend"
            )
        choices = arrival_choices_for_policy(policy.name, sim.rates.size)
        arrivals = sim.arrivals
        if isinstance(arrivals, ModulatedRateArrivals):
            lambdas, curve = arrivals.lambdas, arrivals.curve
        elif isinstance(arrivals, PoissonArrivals):
            lambdas, curve = arrivals.lambdas, None
        else:
            raise ValueError(
                f"meanfield backend needs Poisson (optionally rate-curve "
                f"modulated) arrivals, got {type(arrivals).__name__}"
            )
        if not isinstance(sim.service, GeometricService):
            raise ValueError(
                f"meanfield backend needs the geometric service model, "
                f"got {type(sim.service).__name__}"
            )
        for spec in sim.config.probes:
            spec = ProbeSpec.of(spec)
            if spec.name not in PROBE_ALLOWLIST:
                allowed = ", ".join(sorted(PROBE_ALLOWLIST))
                raise ValueError(
                    f"meanfield backend cannot feed probe {spec.name!r} "
                    f"(no discrete events to observe); synthesizable "
                    f"probes: {allowed}"
                )
        return np.asarray(lambdas, dtype=np.float64), curve, choices

    # ------------------------------------------------------------------
    def run(self, sim, controller: RunController | None = None):
        if controller is not None:
            raise ValueError(
                "meanfield backend does not support checkpoint/resume "
                "(no kernel state to export); run it without a lifecycle "
                "controller"
            )
        config = sim.config
        lambdas, curve, choices = self._validate(sim)
        n = sim.rates.size
        rounds = config.rounds
        lam_total = float(lambdas.sum())

        classes = ServerClasses.from_rates(sim.rates, self.max_classes)
        model = FluidModel(classes, depth=self.depth, choices=choices)
        gamma = classes.gamma
        n_class = gamma * n
        J, K = classes.num_classes, model.depth

        # Three arrival regimes: exact Poisson convolution (d = 1 split),
        # exact water-filling (full JSQ: every job sees the true
        # minimum), and the power-of-d ODE in job time for finite d --
        # where the substep shrinks with d because the choice flux
        # steepens with it.
        waterfill = choices is not None and choices >= n
        integrator = None
        if choices is not None and not waterfill:
            integrator = FixedStepIntegrator(
                method=self.method, dt=min(self.dt, 2.0 / choices)
            )
            # Stage evaluations of the choice drift must stay on valid
            # tails, so the projection wraps the derivative itself.
            drift = lambda _t, y: model.arrival_drift(model.project(y))  # noqa: E731
            mass = lambda y: float(gamma @ y.sum(axis=1))  # noqa: E731

        S = model.empty_state()
        # Per-round trajectories (floats; the synthesis rounds at the end).
        queue_totals = np.empty(rounds)
        dep_totals = np.empty(rounds)
        # Time accumulators for the probe synthesis.
        joins_acc = np.zeros((J, K))  # post-warmup, for the histogram
        pmf_time = np.zeros((J, K + 1))
        qsum_class = np.zeros(J)
        idle_class = np.zeros(J)
        recv_class = np.zeros(J)
        done_class = np.zeros(J)
        max_level = np.zeros(J, dtype=np.int64)

        for start in range(0, rounds, _FACTOR_CHUNK):
            count = min(_FACTOR_CHUNK, rounds - start)
            factors = (
                curve.factors(start, count)
                if curve is not None
                else np.ones(count)
            )
            for i in range(count):
                t = start + i
                a = lam_total * float(factors[i]) / n
                if choices is None:
                    S, joins = model.apply_poisson_arrivals(S, a)
                elif waterfill:
                    S, joins = model.apply_waterfill_arrivals(S, a)
                elif a > 0.0:
                    pre = S
                    S = integrator.integrate(
                        drift, S, 0.0, a, project=model.project, mass=mass
                    )
                    joins = S - pre
                else:
                    joins = np.zeros_like(S)
                recv_class += joins.sum(axis=1)
                if t >= config.warmup:
                    joins_acc += joins
                S, dep = model.depart(S)
                dep_class = dep.sum(axis=1)
                done_class += dep_class
                dep_totals[t] = float(n_class @ dep_class)
                q_class = S.sum(axis=1)
                qsum_class += q_class
                queue_totals[t] = float(n_class @ q_class)
                idle_class += 1.0 - S[:, 0]
                pmf_time += model.pmf(S)
                np.maximum(
                    max_level, (S > 1e-9).sum(axis=1), out=max_level
                )
                pooled = float(classes.gamma @ S[:, -1])
                if pooled > _TRUNCATION_LIMIT:
                    raise InvariantError(
                        f"truncation overflow at round {t}: {pooled:.3f} of "
                        f"the mixture mass sits at queue length >= "
                        f"{K} -- the configuration is unstable for the "
                        f"fluid limit (a server class is overloaded) or "
                        f"depth={K} is too shallow; raise it via "
                        f"'meanfield:depth=N'"
                    )

        return self._synthesize(
            sim,
            model=model,
            S=S,
            queue_totals=queue_totals,
            dep_totals=dep_totals,
            joins_acc=joins_acc,
            pmf_time=pmf_time,
            qsum_class=qsum_class,
            idle_class=idle_class,
            recv_class=recv_class,
            done_class=done_class,
            max_level=max_level,
        )

    # ------------------------------------------------------------------
    def _synthesize(
        self,
        sim,
        *,
        model: FluidModel,
        S: np.ndarray,
        queue_totals: np.ndarray,
        dep_totals: np.ndarray,
        joins_acc: np.ndarray,
        pmf_time: np.ndarray,
        qsum_class: np.ndarray,
        idle_class: np.ndarray,
        recv_class: np.ndarray,
        done_class: np.ndarray,
        max_level: np.ndarray,
    ):
        """Shape the fluid trajectory into a SimulationResult."""
        config = sim.config
        classes = model.classes
        n = classes.num_servers
        n_class = classes.gamma * n
        rounds = config.rounds
        K = model.depth

        # Response-time histogram: jobs joining position k at a class-j
        # server drain in ~ k / mu_j + 1 rounds (exact for k = 1, and
        # Little-consistent in aggregate).
        histogram = ResponseTimeHistogram()
        levels = np.arange(1, K + 1)
        times = np.maximum(
            1, np.rint(levels[None, :] / classes.mu[:, None] + 1.0)
        ).astype(np.int64)
        counts = np.rint(joins_acc * n_class[:, None]).astype(np.int64)
        keep = counts > 0
        if np.any(keep):
            histogram.record_many(times[keep], counts[keep])

        series = None
        queue_ints = np.rint(queue_totals).astype(np.int64)
        if config.track_queue_series:
            series = QueueLengthSeries(rounds_hint=rounds)
            series.record_many(queue_ints)

        probes: dict = {"responses": ResponseTimeProbe(histogram)}
        if series is not None:
            probes["queue_series"] = QueueSeriesProbe(series)

        ctx = ProbeContext(
            num_servers=n,
            num_dispatchers=sim.arrivals.num_dispatchers,
            rates=sim.rates,
            rounds=rounds,
            warmup=config.warmup,
            sized=False,
        )
        for spec in config.probes:
            spec = ProbeSpec.of(spec)
            probe = spec.build()
            probe.bind(ctx)
            probe.set_state(
                self._probe_state(
                    spec.name,
                    probe,
                    queue_totals=queue_totals,
                    dep_totals=dep_totals,
                    qsum_class=qsum_class,
                    idle_class=idle_class,
                    recv_class=recv_class,
                    done_class=done_class,
                    max_level=max_level,
                    pmf_time=pmf_time,
                    classes=classes,
                    rounds=rounds,
                    warmup=config.warmup,
                )
            )
            probes[spec.label] = probe

        received = np.rint(classes.expand(recv_class)).astype(np.int64)
        departed = np.rint(classes.expand(done_class)).astype(np.int64)
        final_queues = np.rint(classes.expand(S.sum(axis=1))).astype(np.int64)
        return _make_result(
            sim,
            histogram=histogram,
            queue_series=series,
            total_arrived=int(round(float(n_class @ recv_class))),
            total_departed=int(round(float(n_class @ done_class))),
            final_queued=int(queue_ints[-1]) if rounds else 0,
            final_queues=final_queues,
            server_received=received,
            server_departed=departed,
            probes=probes,
        )

    def _probe_state(
        self,
        name: str,
        probe,
        *,
        queue_totals: np.ndarray,
        dep_totals: np.ndarray,
        qsum_class: np.ndarray,
        idle_class: np.ndarray,
        recv_class: np.ndarray,
        done_class: np.ndarray,
        max_level: np.ndarray,
        pmf_time: np.ndarray,
        classes: ServerClasses,
        rounds: int,
        warmup: int,
    ) -> dict:
        """The synthesized ``set_state`` payload for one allowed probe."""
        if name == "windowed_stability":
            # The block feed sees every round, so windows cover the
            # whole run; sums are per-window integrals of the fluid
            # total-queue trajectory.
            window = probe.window
            index = np.arange(rounds, dtype=np.int64) // window
            nwin = int(index[-1]) + 1 if rounds else 0
            sums = np.zeros(nwin, dtype=np.float64)
            np.add.at(sums, index, queue_totals)
            counts = np.bincount(index, minlength=nwin)
            return {
                "sums": np.rint(sums).astype(np.int64).tolist(),
                "counts": counts.astype(np.int64).tolist(),
            }
        if name == "windowed_mean":
            # The response feed is warmup-gated; per-round mean response
            # comes from the census identity T = N / throughput + 1,
            # weighted by that round's completion mass.
            window = probe.window
            index = np.arange(rounds, dtype=np.int64) // window
            nwin = int(index[-1]) + 1 if rounds else 0
            dep = np.where(np.arange(rounds) >= warmup, dep_totals, 0.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                mean_t = np.where(
                    dep_totals > 1e-12, queue_totals / dep_totals + 1.0, 0.0
                )
            sums = np.zeros(nwin, dtype=np.float64)
            counts = np.zeros(nwin, dtype=np.float64)
            np.add.at(sums, index, mean_t * dep)
            np.add.at(counts, index, dep)
            return {
                "sums": np.rint(sums).astype(np.int64).tolist(),
                "counts": np.rint(counts).astype(np.int64).tolist(),
            }
        if name == "server_stats":
            expand = classes.expand
            queue_hist = np.rint(
                (classes.gamma * classes.num_servers) @ pmf_time
            ).astype(np.int64)
            return {
                "rounds": rounds,
                # Class-quantized rates, not the raw per-server rates:
                # the synthesized done counts come from the class mu, so
                # the probe's utilization stays internally consistent.
                "rates": expand(classes.mu).tolist(),
                "received": np.rint(expand(recv_class)).astype(np.int64).tolist(),
                "done": np.rint(expand(done_class)).astype(np.int64).tolist(),
                "queue_sum": np.rint(expand(qsum_class)).astype(np.int64).tolist(),
                "max_queue": expand(max_level).astype(np.int64).tolist(),
                "idle": np.rint(expand(idle_class)).astype(np.int64).tolist(),
                "queue_hist": queue_hist.tolist(),
            }
        raise ValueError(f"no synthesized state for probe {name!r}")
