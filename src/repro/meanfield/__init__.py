"""Mean-field (fluid-limit) backend: analytics instead of simulation.

The simulation kernels scale linearly in servers x rounds; the fluid
limit does not scale in servers at all.  This package tracks the
per-class queue-length *tail fractions* ``s_{j,k} = P(class-j queue >= k)``
of the empirical measure and advances them with the deterministic round
map that the stochastic system converges to as ``n -> infinity``
(propagation of chaos for the synchronous-round model):

* :mod:`repro.meanfield.odes` -- the drift / round-map algebra: class
  binning of heterogeneous rate vectors, the exact linear departure
  update for geometric capacities, the exact Poisson-split arrival
  update (``random`` / ``rr``), and the power-of-d choice arrival flux
  (``jsq(d)``, and ``jsq`` as d -> n) integrated in within-round job
  time.
* :mod:`repro.meanfield.integrator` -- fixed-step RK4 (plus Euler for
  debugging) with conservation / negativity invariant checks each step.
* :mod:`repro.meanfield.backend` -- :class:`MeanFieldBackend`, the
  ``"meanfield"`` registration in :mod:`repro.sim.backends`, consuming
  the same ``SimulationConfig`` seam as every simulation kernel and
  synthesizing results through the probe/metrics interface.
"""

from .backend import MeanFieldBackend
from .integrator import FixedStepIntegrator, InvariantError, euler_step, rk4_step
from .odes import FluidModel, ServerClasses, arrival_choices_for_policy

__all__ = [
    "FluidModel",
    "ServerClasses",
    "arrival_choices_for_policy",
    "FixedStepIntegrator",
    "InvariantError",
    "euler_step",
    "rk4_step",
    "MeanFieldBackend",
]
