"""Command-line interface: run paper experiments without writing code.

Installed as the ``repro`` console script (also ``python -m repro``).

Subcommands
-----------
``policies``    list the registered dispatching policies
``backends``    list the registered engine backends (round kernels),
                both the unsized and the sized-engine registries, with a
                capability column (checkpoint/probe/analytic support)
``compare``     run one (policy, system, load) cell on several backends
                side by side -- e.g. the finite-n ``fast`` kernel vs the
                analytical ``meanfield`` fluid limit -- with wall-clock
                and relative-error columns
``probes``      list the registered observability probes (``--metrics``
                accepts them on ``experiment`` and ``simulate``)
``scenarios``   list the registered workload scenarios (``--scenario``
                accepts them on ``experiment``, ``run`` and ``submit``)
``experiment``  declarative grid: policies x systems x loads x reps x
                workload, optionally on a process pool (``--workers``),
                the vectorized engine (``--backend fast``), extra
                probes (``--metrics herding server_stats``) and a
                nonstationary scenario (``--scenario flash:spike=5``)
``simulate``    one (policy, system, load) run; optional JSON output
``sweep``       mean response times over a load grid, several policies
``tails``       tail quantiles at one load, several policies
``runtime``     per-decision computation-time CDF landmarks (Figures 5/8)
``stability``   empirical stability verdict + the Appendix D bound
``run``         checkpointed simulation run: block-aligned snapshots,
                streaming JSONL telemetry, crash-safe resume
``resume``      continue a killed/paused run (or experiment run) from
                its newest valid checkpoint, bit-identically
``tail``        print or follow (``-f``) a run's telemetry events
``runs``        ``runs list DIR``: inventory the run directories on disk
``serve``       start the coordination service: HTTP job API + worker
                coordinator (federated experiment execution); ``--token``
                requires workers to quote a shared secret
``worker``      register with a coordinator and serve grid cells
``submit``      POST an experiment to a running service's job API
                (``--priority`` jumps the cell queue)
``status``      show a service's workers, leases and job progress
``cancel``      stop a running job; its queued cells are dropped

Examples
--------
::

    repro experiment --policies scd jsq sed --systems 100x10 200x20 \
        --loads 0.7 0.9 --replications 3 --workers 8 --save grid.json
    repro experiment --policies scd sed --workload skew:3 --loads 0.9
    repro experiment --policies jsq rr wr --backend fast --rounds 100000
    repro experiment --policies jsq sed --workload sized:geom:4 --backend fast
    repro experiment --policies jsq sed --backend sharded:4 --rounds 100000
    repro experiment --policies scd jsq --metrics herding server_stats \
        windowed_mean:window=500
    repro experiment --policies jsq sed --backend fast \
        --scenario flash:spike=5,at=2048 --metrics windowed_stability
    repro simulate --policy scd --servers 100 --dispatchers 10 --rho 0.9
    repro compare --backends fast,meanfield --policy jsq(2) --rho 0.9 \
        --servers 1000 --replications 3
    repro sweep --policies scd jsq sed --loads 0.7 0.9 0.99 --rounds 5000
    repro runtime --servers 100 200 400
    repro stability --policy jsq(2) --rho 0.95
    repro run --policy scd --rho 0.9 --backend fast --rounds 100000 \
        --checkpoint-dir runs/scd-09 --checkpoint-every 4
    repro resume runs/scd-09
    repro tail runs/scd-09 --follow
    repro runs list runs/
    repro serve --data-dir service/ --port 8642 --token s3cret
    repro worker --data-dir service/ --exit-when-idle --token s3cret
    repro submit --data-dir service/ --policies scd jsq --loads 0.9 \
        --priority 5 --follow
    repro status --data-dir service/
    repro cancel job-0001 --data-dir service/
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path


from repro.analysis.ccdf import tail_quantiles
from repro.analysis.persistence import save_experiment, save_result, save_sweep
from repro.analysis.runner import (
    ExperimentConfig,
    mean_response_sweep,
    run_simulation,
)
from repro.experiments import Experiment, WorkloadSpec
from repro.analysis.runtime import (
    RUNTIME_TECHNIQUES,
    collect_snapshots,
    measure_decision_times,
    runtime_cdf_summary,
)
from repro.analysis.stability import assess_stability
from repro.analysis.tables import format_series_table, format_table
from repro.core.theory import strong_stability_bound
from repro.policies.base import available_policies
from repro.sim.backends import (
    backend_capabilities,
    backend_descriptions,
    make_backend,
)
from repro.sim.probes import DEFAULT_PROBE_LABELS, ProbeSpec, probe_descriptions
from repro.sim.sized import BimodalSize, DeterministicSize, GeometricSize
from repro.sim.sizedbackends import (
    sized_backend_capabilities,
    sized_backend_descriptions,
)
from repro.workloads.scenarios import SystemSpec

__all__ = ["main", "build_parser"]


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", "-n", type=int, default=100)
    parser.add_argument("--dispatchers", "-m", type=int, default=10)
    parser.add_argument(
        "--profile",
        default="u1_10",
        choices=["u1_10", "u1_100", "bimodal", "homogeneous"],
    )
    parser.add_argument("--rate-seed", type=int, default=7)


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rounds", type=int, default=5000)
    parser.add_argument("--warmup", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)


def _system_from(args: argparse.Namespace) -> SystemSpec:
    return SystemSpec(
        num_servers=args.servers,
        num_dispatchers=args.dispatchers,
        profile=args.profile,
        rate_seed=args.rate_seed,
    )


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        rounds=args.rounds,
        warmup=args.warmup,
        base_seed=args.seed,
        backend=getattr(args, "backend", "reference"),
        metrics=_parse_metrics(getattr(args, "metrics", None)),
    )


def cmd_policies(args: argparse.Namespace) -> int:
    for name in available_policies():
        print(name)
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    registries = (
        ("engine backends (unsized jobs)", backend_descriptions(), backend_capabilities),
        (
            "sized engine backends (unit-denominated queues)",
            sized_backend_descriptions(),
            sized_backend_capabilities,
        ),
    )
    width = max(len(name) for _, d, _ in registries for name in d)
    cap_width = max(
        len(caps(name).describe()) for _, d, caps in registries for name in d
    )
    for index, (title, descriptions, caps) in enumerate(registries):
        if index:
            print()
        print(f"{title}:")
        for name, description in descriptions.items():
            column = caps(name).describe()
            print(f"  {name:<{width}}  {column:<{cap_width}}  {description}")
    return 0


def _coerce_param(text: str):
    """Best-effort int -> float -> str coercion for key=value params."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_probe_token(token: str) -> ProbeSpec:
    """``name`` or ``name:key=value[,key=value...]`` -> validated spec."""
    name, _, params = token.partition(":")
    kwargs = {}
    if params:
        for pair in params.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key:
                raise SystemExit(
                    f"invalid probe parameter {pair!r} in {token!r}; "
                    f"expected key=value"
                )
            kwargs[key] = _coerce_param(value)
    spec = ProbeSpec.of(name, **kwargs)
    try:
        spec.build()  # fail now with the registry's error, not mid-run
    except (ValueError, TypeError) as error:
        raise SystemExit(f"invalid probe {token!r}: {error}")
    return spec


def _parse_metrics(tokens) -> tuple[ProbeSpec, ...]:
    specs = tuple(_parse_probe_token(token) for token in tokens or ())
    seen = set()
    for spec in specs:
        if spec.name in DEFAULT_PROBE_LABELS:
            raise SystemExit(
                f"probe {spec.name!r} is an always-on default collector; "
                f"do not pass it to --metrics"
            )
        if spec.label in seen:
            raise SystemExit(f"duplicate probe {spec.label!r} in --metrics")
        seen.add(spec.label)
    return specs


def _parse_system_token(token: str, profile: str, rate_seed: int) -> SystemSpec:
    """``"100x10"`` -> SystemSpec(num_servers=100, num_dispatchers=10)."""
    try:
        n_text, m_text = token.lower().split("x")
        return SystemSpec(int(n_text), int(m_text), profile, rate_seed)
    except (ValueError, TypeError):
        raise SystemExit(
            f"invalid --systems token {token!r}; expected SERVERSxDISPATCHERS "
            f"like 100x10"
        )


def _parse_job_sizes(params: str):
    """``[geom[:MEAN]]`` | ``det:SIZE`` | ``bimodal:SMALL:LARGE[:PROB]``."""
    parts = params.split(":") if params else []
    family = (parts[0] if parts else "geom").lower()
    try:
        if family == "geom":
            mean = float(parts[1]) if len(parts) > 1 else 2.0
            return GeometricSize(mean), f"sized-geom{mean:g}"
        if family == "det":
            size = int(parts[1]) if len(parts) > 1 else 2
            return DeterministicSize(size), f"sized-det{size}"
        if family == "bimodal":
            small = int(parts[1]) if len(parts) > 1 else 1
            large = int(parts[2]) if len(parts) > 2 else 20
            prob = float(parts[3]) if len(parts) > 3 else 0.05
            return BimodalSize(small, large, prob), f"sized-bimodal{small}-{large}-{prob:g}"
    except (ValueError, IndexError) as error:
        raise SystemExit(f"invalid sized workload parameters {params!r}: {error}")
    raise SystemExit(
        f"unknown job-size family {family!r}; expected geom, det or bimodal"
    )


def cmd_probes(args: argparse.Namespace) -> int:
    descriptions = probe_descriptions()
    width = max(len(name) for name in descriptions)
    print("observability probes (pass extras via --metrics):")
    for name, description in descriptions.items():
        marker = "*" if name in DEFAULT_PROBE_LABELS else " "
        print(f" {marker} {name:<{width}}  {description}")
    print("\n(* = always-on default collector)")
    return 0


def _parse_workload(token: str) -> WorkloadSpec:
    """``paper`` | ``skew:F`` | ``bursty:F[:P]`` | ``sized[:FAMILY[:PARAMS]]``."""
    kind, _, params = token.partition(":")
    kind = kind.lower()
    if kind == "paper":
        return WorkloadSpec.paper()
    if kind == "skew":
        return WorkloadSpec.skewed(float(params or 2.0))
    if kind == "bursty":
        parts = params.split(":") if params else []
        surge = float(parts[0]) if parts else 3.0
        switch = float(parts[1]) if len(parts) > 1 else 0.05
        return WorkloadSpec.bursty(surge, switch)
    if kind == "sized":
        distribution, name = _parse_job_sizes(params)
        return WorkloadSpec.sized(distribution, name=name)
    raise SystemExit(
        f"unknown workload {token!r}; expected paper, skew:F, bursty:F[:P] "
        f"or sized[:geom:MEAN|det:SIZE|bimodal:SMALL:LARGE[:PROB]]"
    )


def _workload_from(args: argparse.Namespace) -> WorkloadSpec:
    """The --workload spec with any --scenario applied (validated now)."""
    workload = _parse_workload(args.workload)
    scenario = getattr(args, "scenario", None)
    if scenario:
        try:
            workload = dataclasses.replace(workload, scenario=scenario)
        except ValueError as error:
            raise SystemExit(f"invalid scenario {scenario!r}: {error}")
    return workload


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import scenario_descriptions

    descriptions = scenario_descriptions()
    width = max(len(name) for name in descriptions)
    print("workload scenarios (pass one via --scenario NAME[:key=value,...]):")
    for name, description in descriptions.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    systems = tuple(
        _parse_system_token(token, args.profile, args.rate_seed)
        for token in args.systems
    )
    try:
        experiment = Experiment(
            policies=tuple(args.policies),
            systems=systems,
            loads=tuple(args.loads),
            replications=args.replications,
            workloads=(_workload_from(args),),
            rounds=args.rounds,
            warmup=args.warmup,
            base_seed=args.seed,
            backend=args.backend,
            metrics=_parse_metrics(args.metrics),
        )
    except ValueError as error:
        raise SystemExit(f"invalid experiment: {error}")
    workload = experiment.workloads[0]
    scenario_note = (
        f", scenario: {workload.scenario}" if workload.scenario else ""
    )
    print(
        f"Running {experiment.size} cells "
        f"({len(experiment.policies)} policies x {len(systems)} systems x "
        f"{len(experiment.loads)} loads x {experiment.replications} reps, "
        f"workload: {workload.name}{scenario_note}, "
        f"rounds/cell: {experiment.rounds}, "
        f"workers: {args.workers}, backend: {experiment.backend})"
    )
    result = experiment.run(workers=args.workers, keep_results=bool(args.save))
    aggregated = result.aggregate("mean")
    rows = []
    for (policy, system, rho, _workload), stats in sorted(
        aggregated.items(), key=lambda item: (item[0][1], item[0][2], item[1]["mean"])
    ):
        rows.append(
            [system, rho, policy, stats["mean"], stats["stderr"], int(stats["n"])]
        )
    print(
        format_table(
            ["system", "rho", "policy", "mean", "stderr", "reps"],
            rows,
            title="Mean response time (replication-averaged; lowest first)",
        )
    )
    for system in systems:
        for rho in experiment.loads:
            best = result.best_policy_at(rho, system=system.name)
            print(f"  best on {system.name} at rho={rho}: {best}")
    extra_keys = sorted(
        {key for record in result.records for key in record.metrics if "." in key}
    )
    if extra_keys:
        aggregated_extras = {key: result.aggregate(key) for key in extra_keys}
        groups = sorted(
            aggregated_extras[extra_keys[0]],
            key=lambda g: (g[1], g[2], g[0]),  # system, rho, policy
        )
        print(
            format_table(
                ["system", "rho", "policy"] + extra_keys,
                [
                    [group[1], group[2], group[0]]
                    + [aggregated_extras[key][group]["mean"] for key in extra_keys]
                    for group in groups
                ],
                title="Probe metrics (replication-averaged)",
            )
        )
    if args.save:
        path = save_experiment(result, args.save)
        print(f"experiment written to {path}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    system = _system_from(args)
    try:
        # Fail now with the registry's own error (unknown names, bad
        # shard parameters), not mid-run.
        make_backend(args.backend)
    except ValueError as error:
        raise SystemExit(f"invalid backend: {error}")
    result = run_simulation(args.policy, system, args.rho, _config_from(args))
    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in summary.items()],
            title=f"{args.policy} on {system.name} at rho={args.rho} "
            f"({args.rounds} rounds)",
        )
    )
    print(
        f"\njobs: arrived={result.total_arrived} "
        f"departed={result.total_departed} queued={result.final_queued}"
    )
    for label, probe in result.probes.items():
        if label in DEFAULT_PROBE_LABELS:
            continue
        print(
            format_table(
                ["metric", "value"],
                [[key, value] for key, value in probe.summary().items()],
                title=f"probe {label}",
            )
        )
    if args.save:
        path = save_result(result, args.save)
        print(f"result written to {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    system = _system_from(args)
    sweep = mean_response_sweep(
        args.policies, system, tuple(args.loads), _config_from(args)
    )
    print(
        format_series_table(
            "rho",
            list(args.loads),
            {policy: sweep.row(policy) for policy in args.policies},
            title=f"Mean response time on {system.name} ({args.rounds} rounds/cell)",
        )
    )
    for rho in args.loads:
        print(f"  best at rho={rho}: {sweep.best_policy_at(rho)}")
    if args.save:
        path = save_sweep(sweep, args.save)
        print(f"sweep written to {path}")
    return 0


def cmd_tails(args: argparse.Namespace) -> int:
    system = _system_from(args)
    config = _config_from(args)
    levels = (1e-1, 1e-2, 1e-3, 1e-4)
    rows = []
    for policy in args.policies:
        result = run_simulation(policy, system, args.rho, config)
        quantiles = tail_quantiles(result.histogram, levels)
        rows.append(
            [policy, result.mean_response_time]
            + [quantiles[level] for level in levels]
        )
    print(
        format_table(
            ["policy", "mean", "p90", "p99", "p99.9", "p99.99"],
            rows,
            title=f"Tails on {system.name} at rho={args.rho}",
        )
    )
    return 0


def cmd_runtime(args: argparse.Namespace) -> int:
    for n in args.servers:
        system = SystemSpec(n, args.dispatchers, args.profile)
        snapshots = collect_snapshots(
            system, rho=0.99, rounds=args.sim_rounds, seed=args.seed,
            max_snapshots=args.snapshots,
        )
        rates = system.rates()
        rows = []
        for technique in sorted(RUNTIME_TECHNIQUES):
            times = measure_decision_times(
                technique, snapshots, rates, args.dispatchers
            )
            s = runtime_cdf_summary(times)
            rows.append([technique, s["p50_us"], s["p90_us"], s["p99_us"]])
        print(
            format_table(
                ["technique", "p50_us", "p90_us", "p99_us"],
                rows,
                title=f"\nDecision run-times, n={n} (rho=0.99, {args.profile})",
                float_format="{:.1f}",
            )
        )
    return 0


def cmd_stability(args: argparse.Namespace) -> int:
    system = _system_from(args)
    rates = system.rates()
    result = run_simulation(args.policy, system, args.rho, _config_from(args))
    verdict = assess_stability(result, float(rates.sum()))
    print(f"{args.policy} on {system.name} at rho={args.rho}: {verdict}")
    if args.rho < 1.0:
        bound = strong_stability_bound(system.lambdas(args.rho), rates)
        print(f"Appendix D guarantee (any admissible policy need not meet it;")
        print(f"SCD provably does): time-averaged total queue <= {bound.bound:.1f}")
        measured = result.queue_series.mean()
        print(f"measured time-averaged total queue: {measured:.1f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    backends = [
        token for raw in args.backends for token in raw.split(",") if token
    ]
    if len(backends) < 2:
        raise SystemExit(
            "pass at least two backends to compare, "
            "e.g. --backends fast meanfield"
        )
    system = _system_from(args)
    workload = _workload_from(args)
    resolved = []
    reference = None
    for backend in backends:
        try:
            caps = backend_capabilities(backend)
        except ValueError as error:
            raise SystemExit(f"invalid backend {backend!r}: {error}")
        # Analytic backends are deterministic: one evaluation is exact,
        # so replications would only repeat the same number.
        reps = 1 if caps.analytic else args.replications
        resolved.append((backend, caps, reps))
        if caps.analytic and reference is None:
            reference = backend
    if reference is None:
        reference = backends[0]
    records = []
    for backend, caps, reps in resolved:
        try:
            experiment = Experiment(
                policies=(args.policy,),
                systems=(system,),
                loads=(args.rho,),
                replications=reps,
                workloads=(workload,),
                rounds=args.rounds,
                warmup=args.warmup,
                base_seed=args.seed,
                backend=backend,
            )
        except ValueError as error:
            raise SystemExit(f"backend {backend!r} cannot run this cell: {error}")
        started = time.perf_counter()
        try:
            result = experiment.run(keep_results=False)
        except (RuntimeError, ValueError) as error:
            raise SystemExit(f"backend {backend!r} failed: {error}")
        elapsed = time.perf_counter() - started
        stats = next(iter(result.aggregate("mean").values()))
        records.append(
            {
                "backend": backend,
                "kind": "analytic" if caps.analytic else "stochastic",
                "replications": int(stats["n"]),
                "mean_response_time": stats["mean"],
                "stderr": stats["stderr"],
                "wall_seconds": elapsed,
            }
        )
    by_backend = {record["backend"]: record for record in records}
    baseline = by_backend[reference]["mean_response_time"]
    for record in records:
        record["relative_error"] = (
            abs(record["mean_response_time"] - baseline) / baseline
            if baseline
            else 0.0
        )
    rows = [
        [
            record["backend"],
            record["kind"],
            record["replications"],
            record["mean_response_time"],
            record["stderr"],
            record["relative_error"],
            record["wall_seconds"],
        ]
        for record in records
    ]
    scenario_note = f", scenario {workload.scenario}" if workload.scenario else ""
    print(
        format_table(
            ["backend", "kind", "reps", "mean", "stderr", "rel_err", "wall_s"],
            rows,
            title=f"{args.policy} on {system.name} at rho={args.rho} "
            f"({args.rounds} rounds, workload {workload.name}{scenario_note}; "
            f"rel_err vs {reference})",
        )
    )
    if args.save:
        payload = {
            "policy": args.policy,
            "system": {
                "num_servers": system.num_servers,
                "num_dispatchers": system.num_dispatchers,
                "profile": system.profile,
                "rate_seed": system.rate_seed,
            },
            "rho": args.rho,
            "rounds": args.rounds,
            "warmup": args.warmup,
            "seed": args.seed,
            "workload": workload.describe(),
            "reference": reference,
            "backends": records,
        }
        path = Path(args.save)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"comparison written to {path}")
    return 0


def _print_run_result(result) -> None:
    rows = [["mean_response_time", result.mean_response_time]]
    print(format_table(["metric", "value"], rows, title="run result"))
    for label, summary in result.probe_summaries().items():
        if label in DEFAULT_PROBE_LABELS:
            continue
        print(
            format_table(
                ["metric", "value"],
                [[key, value] for key, value in summary.items()],
                title=f"probe {label}",
            )
        )


def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.executor import build_cell_simulation
    from repro.runs import Run

    directory = Path(args.checkpoint_dir)
    if (directory / "run.json").exists():
        raise SystemExit(
            f"{directory / 'run.json'} already exists; "
            f"continue it with `repro resume {directory}`"
        )
    sim = build_cell_simulation(
        args.policy,
        _system_from(args),
        args.rho,
        _workload_from(args),
        args.seed,
        args.rounds,
        args.warmup,
        args.backend,
        _parse_metrics(args.metrics),
    )
    try:
        run = Run.create(
            sim,
            directory,
            checkpoint_every=args.checkpoint_every,
            telemetry=args.telemetry,
            keep=args.keep,
        )
    except (FileExistsError, ValueError) as error:
        raise SystemExit(str(error))
    print(f"run directory: {run.directory}")
    print(f"telemetry: {run.telemetry_path} (watch with `repro tail {directory}`)")
    result = run.execute(max_legs=args.max_legs)
    if result is None:
        print(
            f"paused after {args.max_legs} checkpoint leg(s) at rounds "
            f"{run.store.rounds()}; continue with `repro resume {directory}`"
        )
        return 0
    _print_run_result(result)
    print(f"result written to {run.result_path}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.runs import ExperimentRun, Run

    directory = Path(args.directory)
    manifest_path = directory / "run.json"
    if not manifest_path.exists():
        raise SystemExit(f"no run manifest at {manifest_path}")
    kind = json.loads(manifest_path.read_text()).get("kind")
    if kind == "experiment_run":
        result = ExperimentRun.open(directory).execute(max_legs=args.max_legs)
        if result is None:
            print(f"paused; continue with `repro resume {directory}`")
            return 0
        print(f"experiment finished: {len(result.records)} cells")
        return 0
    if kind != "simulation_run":
        raise SystemExit(f"unrecognized run kind {kind!r} in {manifest_path}")
    run = Run.open(directory)
    resumable = run.store.rounds()
    if resumable and not run.result_path.exists():
        print(f"resuming from round {max(resumable)}")
    result = run.execute(max_legs=args.max_legs)
    if result is None:
        print(
            f"paused at rounds {run.store.rounds()}; "
            f"continue with `repro resume {directory}`"
        )
        return 0
    _print_run_result(result)
    print(f"result written to {run.result_path}")
    return 0


def _format_event(record: dict) -> str:
    stamp = time.strftime("%H:%M:%S", time.localtime(record.get("time", 0)))
    extras = {
        key: value
        for key, value in record.items()
        if key not in ("seq", "time", "event")
    }
    body = " ".join(f"{key}={json.dumps(value)}" for key, value in extras.items())
    return f"[{record.get('seq', '?'):>4}] {stamp} {record.get('event', '?'):<19} {body}"


def cmd_tail(args: argparse.Namespace) -> int:
    from repro.runs import follow_events, iter_events

    target = Path(args.directory)
    stop = None
    if target.is_dir():
        manifest_path = target / "run.json"
        if not manifest_path.exists():
            raise SystemExit(f"no run manifest at {manifest_path}")
        telemetry = json.loads(manifest_path.read_text()).get(
            "telemetry", "telemetry.jsonl"
        )
        path = Path(telemetry)
        if not path.is_absolute():
            path = target / path
        # Following a run directory ends when the run does -- the same
        # follow_events stop-predicate loop the HTTP metrics streamer
        # runs, so both tails drain the final events and exit cleanly.
        result_path = target / "result.json"
        stop = result_path.exists
    else:
        path = target  # a telemetry file directly: follow forever
    events = follow_events(path, stop=stop) if args.follow else iter_events(path)
    try:
        for record in events:
            print(
                json.dumps(record) if args.raw else _format_event(record),
                flush=True,
            )
    except KeyboardInterrupt:
        return 0
    return 0


def cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.runs import scan_runs

    rows = scan_runs(args.directory)
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    if not rows:
        raise SystemExit(f"no run directories under {args.directory}")

    def dash(value):
        return "-" if value is None else value

    table = []
    for row in rows:
        if row["kind"] == "experiment_run":
            progress = f"{dash(row.get('cells_done'))}/{dash(row.get('cells'))} cells"
        elif row["kind"] == "simulation_run":
            progress = f"{dash(row.get('rounds_done'))}/{dash(row.get('rounds'))} rounds"
        else:
            progress = "-"
        table.append(
            [
                Path(row["directory"]).name,
                row["kind"],
                row["status"],
                progress,
                dash(row.get("checkpoints")),
                dash(row.get("last_checkpoint")),
                dash(row.get("telemetry_seq")),
            ]
        )
    print(
        format_table(
            ["run", "kind", "status", "progress", "ckpts", "last_ckpt", "seq"],
            table,
            title=f"Runs under {args.directory}",
        )
    )
    return 0


def _service_url(args: argparse.Namespace) -> str:
    """The API base URL from --url or a data dir's service.json."""
    if getattr(args, "url", None):
        return args.url.rstrip("/")
    data_dir = getattr(args, "data_dir", None)
    if data_dir:
        path = Path(data_dir) / "service.json"
        if not path.exists():
            raise SystemExit(
                f"no service manifest at {path}; is `repro serve` running?"
            )
        return str(json.loads(path.read_text())["api"]).rstrip("/")
    raise SystemExit("pass --url or --data-dir to locate the service")


def _coordinator_address(args: argparse.Namespace) -> tuple[str, int]:
    """The worker socket address from --connect or service.json."""
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        try:
            return (host or "127.0.0.1", int(port))
        except ValueError:
            raise SystemExit(
                f"invalid --connect {args.connect!r}; expected HOST:PORT"
            )
    if args.data_dir:
        path = Path(args.data_dir) / "service.json"
        if not path.exists():
            raise SystemExit(
                f"no service manifest at {path}; is `repro serve` running?"
            )
        host, port = json.loads(path.read_text())["coordinator"]
        return (str(host), int(port))
    raise SystemExit("pass --connect or --data-dir to locate the coordinator")


def cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from repro.service import FederationCoordinator, JobManager, ServiceAPI

    data_dir = Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    manager = JobManager(data_dir)
    coordinator = FederationCoordinator(
        manager,
        host=args.host,
        port=args.coordinator_port,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_misses=args.heartbeat_misses,
        token=args.token,
    )
    coordinator.start()
    api = ServiceAPI(manager, coordinator, host=args.host, port=args.port)
    api.start()
    manifest_path = data_dir / "service.json"
    manifest_path.write_text(
        json.dumps(
            {
                "api": api.url,
                "coordinator": list(coordinator.address),
                "pid": os.getpid(),
            },
            indent=2,
        )
        + "\n"
    )
    host, port = coordinator.address
    print(f"job API:     {api.url}")
    print(f"coordinator: {host}:{port} (workers: `repro worker --connect {host}:{port}`)")
    print(f"manifest:    {manifest_path}")
    stopping = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stopping.set())
    try:
        stopping.wait()
    finally:
        api.stop()
        coordinator.stop()
        manager.close()
        manifest_path.unlink(missing_ok=True)
    print("service stopped")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.service import run_worker

    address = _coordinator_address(args)
    print(f"worker connecting to {address[0]}:{address[1]}")
    try:
        done = run_worker(
            address,
            name=args.name,
            workdir=args.workdir,
            max_cells=args.max_cells,
            exit_when_idle=args.exit_when_idle,
            poll_interval=args.poll_interval,
            token=args.token,
        )
    except RuntimeError as error:
        raise SystemExit(str(error))
    except (ConnectionError, OSError) as error:
        raise SystemExit(f"cannot reach the coordinator: {error}")
    print(f"worker exiting after {done} cell(s)")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, iter_job_events, submit_job

    if args.descriptor:
        body = json.loads(Path(args.descriptor).read_text())
        descriptor = body.get("experiment", body)
    else:
        systems = tuple(
            _parse_system_token(token, args.profile, args.rate_seed)
            for token in args.systems
        )
        try:
            experiment = Experiment(
                policies=tuple(args.policies),
                systems=systems,
                loads=tuple(args.loads),
                replications=args.replications,
                workloads=(_workload_from(args),),
                rounds=args.rounds,
                warmup=args.warmup,
                base_seed=args.seed,
                backend=args.backend,
                metrics=_parse_metrics(args.metrics),
            )
        except ValueError as error:
            raise SystemExit(f"invalid experiment: {error}")
        descriptor = experiment.describe()
    url = _service_url(args)
    try:
        status = submit_job(
            url,
            descriptor,
            checkpoint_every=args.checkpoint_every,
            priority=args.priority,
        )
    except ServiceError as error:
        raise SystemExit(f"submission rejected: {error}")
    job = status["job"]
    priority_note = (
        f" at priority {status['priority']}" if status.get("priority") else ""
    )
    print(f"submitted {job}: {status['cells']} cell(s){priority_note}")
    if not args.follow:
        print(f"watch with `repro status --url {url} {job}`")
        return 0
    try:
        for event in iter_job_events(url, job, follow=True):
            print(_format_event(event), flush=True)
    except KeyboardInterrupt:
        return 0
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, job_status, service_status

    url = _service_url(args)
    try:
        if args.job:
            payload = job_status(url, args.job)
        else:
            payload = service_status(url)
    except ServiceError as error:
        raise SystemExit(str(error))
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    if args.job:
        print(
            f"{payload['id']}: {payload['state']} "
            f"({payload['cells_done']}/{payload['cells']} cells)"
        )
        for lease in payload.get("leases", ()):
            print(
                f"  cell {lease['cell']} leased to {lease['worker']} "
                f"(pid {lease['pid']}, checkpoint round "
                f"{lease['checkpoint_round']})"
            )
        if payload.get("error"):
            print(f"  error: {payload['error']}")
        return 0
    host, port = payload["address"]
    print(f"coordinator {host}:{port}: {len(payload['workers'])} worker(s), "
          f"{len(payload['leases'])} lease(s), "
          f"{payload['pending_cells']} pending cell(s)")
    for worker in payload["workers"]:
        state = "alive" if worker["alive"] else "gone"
        print(
            f"  {worker['name']} (pid {worker['pid']}, {state}): "
            f"{worker['cells_done']} cell(s) done, "
            f"last seen {worker['last_seen_age']:.1f}s ago"
        )
    for lease in payload["leases"]:
        print(
            f"  lease: {lease['job']} cell {lease['cell']} -> "
            f"{lease['worker']} (checkpoint round {lease['checkpoint_round']})"
        )
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, cancel_job

    url = _service_url(args)
    try:
        status = cancel_job(url, args.job)
    except ServiceError as error:
        raise SystemExit(str(error))
    print(
        f"{status['id']}: {status['state']} "
        f"({status['cells_done']}/{status['cells']} cells done)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Stochastic Coordination in Heterogeneous "
        "Load Balancing Systems' (PODC 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("policies", help="list registered policies")
    p.set_defaults(func=cmd_policies)

    p = sub.add_parser(
        "backends", help="list registered engine backends (round kernels)"
    )
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser(
        "probes", help="list registered observability probes (--metrics)"
    )
    p.set_defaults(func=cmd_probes)

    p = sub.add_parser(
        "scenarios", help="list registered workload scenarios (--scenario)"
    )
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser(
        "experiment",
        help="declarative grid: policies x systems x loads x replications",
    )
    p.add_argument("--policies", nargs="+", default=["scd", "jsq", "sed"])
    p.add_argument(
        "--systems",
        nargs="+",
        default=["100x10"],
        metavar="NxM",
        help="systems as SERVERSxDISPATCHERS tokens, e.g. 100x10 200x20",
    )
    p.add_argument("--loads", type=float, nargs="+", default=[0.7, 0.9, 0.99])
    p.add_argument("--replications", "-r", type=int, default=1)
    p.add_argument(
        "--workload",
        default="paper",
        help="paper (default), skew:FACTOR, bursty:SURGE[:SWITCH_PROB], or "
        "sized[:geom:MEAN|det:SIZE|bimodal:SMALL:LARGE[:PROB]] (jobs carry "
        "work-unit sizes and cells run the sized engine)",
    )
    p.add_argument(
        "--scenario",
        metavar="NAME[:k=v,...]",
        help="nonstationary workload scenario applied to every cell: "
        "rate curves (diurnal, flash, regime) and/or server churn "
        "(churn, elastic); see `repro scenarios`",
    )
    p.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="process-pool workers (1 = serial; results are identical)",
    )
    p.add_argument(
        "--backend",
        default="reference",
        metavar="BACKEND",
        help="engine round kernel: 'reference' (bit-exact default), "
        "'fast' (vectorized; bit-identical for deterministic policies, "
        "statistically equivalent for stochastic ones), or "
        "'sharded[:N[:serial|process]]' (server-partitioned fast kernel); "
        "sized workloads resolve the name in the sized-engine registry; "
        "see `repro backends`",
    )
    p.add_argument(
        "--metrics",
        nargs="*",
        default=[],
        metavar="PROBE",
        help="extra observability probes per cell, as NAME or "
        "NAME:key=value[,key=value]; summaries land in each record's "
        "metrics as NAME.key columns; see `repro probes`",
    )
    p.add_argument(
        "--profile",
        default="u1_10",
        choices=["u1_10", "u1_100", "bimodal", "homogeneous"],
    )
    p.add_argument("--rate-seed", type=int, default=7)
    p.add_argument("--save", help="write the full result grid as JSON")
    _add_run_args(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("simulate", help="run one policy at one load")
    p.add_argument("--policy", default="scd")
    p.add_argument("--rho", type=float, default=0.9)
    p.add_argument("--save", help="write the result as JSON")
    p.add_argument(
        "--backend",
        default="reference",
        metavar="BACKEND",
        help="engine round kernel, e.g. reference, fast or sharded:4 "
        "(see `repro backends`)",
    )
    p.add_argument(
        "--metrics",
        nargs="*",
        default=[],
        metavar="PROBE",
        help="extra observability probes (see `repro probes`); summaries "
        "print after the run and persist with --save",
    )
    _add_system_args(p)
    _add_run_args(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("sweep", help="mean response over a load grid")
    p.add_argument("--policies", nargs="+", default=["scd", "jsq", "sed"])
    p.add_argument("--loads", type=float, nargs="+", default=[0.7, 0.9, 0.99])
    p.add_argument("--save", help="write the sweep as JSON")
    _add_system_args(p)
    _add_run_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("tails", help="tail quantiles at one load")
    p.add_argument("--policies", nargs="+", default=["scd", "sed", "hlsq"])
    p.add_argument("--rho", type=float, default=0.99)
    _add_system_args(p)
    _add_run_args(p)
    p.set_defaults(func=cmd_tails)

    p = sub.add_parser("runtime", help="decision-time CDFs (Figures 5/8)")
    p.add_argument("--servers", type=int, nargs="+", default=[100, 200, 300, 400])
    p.add_argument("--dispatchers", "-m", type=int, default=10)
    p.add_argument(
        "--profile", default="u1_10", choices=["u1_10", "u1_100", "bimodal"]
    )
    p.add_argument("--snapshots", type=int, default=200)
    p.add_argument("--sim-rounds", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_runtime)

    p = sub.add_parser(
        "run",
        help="checkpointed simulation run: crash-safe, resumable, telemetered",
    )
    p.add_argument("--policy", default="scd")
    p.add_argument("--rho", type=float, default=0.9)
    p.add_argument(
        "--workload",
        default="paper",
        help="paper (default), skew:F, bursty:F[:P] or "
        "sized[:geom:MEAN|det:SIZE|bimodal:SMALL:LARGE[:PROB]]",
    )
    p.add_argument(
        "--scenario",
        metavar="NAME[:k=v,...]",
        help="nonstationary workload scenario (see `repro scenarios`); "
        "checkpoints carry the scenario state, so resume is bit-identical",
    )
    p.add_argument(
        "--backend",
        default="reference",
        metavar="BACKEND",
        help="engine round kernel, e.g. reference, fast or sharded:4 "
        "(see `repro backends`)",
    )
    p.add_argument(
        "--metrics",
        nargs="*",
        default=[],
        metavar="PROBE",
        help="extra observability probes (see `repro probes`)",
    )
    p.add_argument(
        "--checkpoint-dir",
        required=True,
        metavar="DIR",
        help="run directory: manifest, checkpoints, telemetry, result",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="BLOCKS",
        help="snapshot every N 256-round blocks (default 1)",
    )
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        help="event-log location override (default telemetry.jsonl in the "
        "run directory; relative paths resolve against it)",
    )
    p.add_argument(
        "--keep",
        type=int,
        metavar="K",
        help="checkpoint retention: keep the newest K snapshots plus "
        "power-of-two anchors back to round 0 (default: keep everything)",
    )
    p.add_argument(
        "--max-legs",
        type=int,
        metavar="N",
        help="pause after N checkpoints (resume with `repro resume`)",
    )
    _add_system_args(p)
    _add_run_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "resume", help="continue a checkpointed run from its newest snapshot"
    )
    p.add_argument("directory", help="run directory (simulation or experiment)")
    p.add_argument(
        "--max-legs",
        type=int,
        metavar="N",
        help="pause again after N further checkpoints",
    )
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser("tail", help="print (or follow) a run's telemetry events")
    p.add_argument("directory", help="run directory or telemetry file")
    p.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep polling for new events (like tail -f)",
    )
    p.add_argument(
        "--raw", action="store_true", help="print raw JSONL instead of formatting"
    )
    p.set_defaults(func=cmd_tail)

    p = sub.add_parser("runs", help="inspect run directories on disk")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    p = runs_sub.add_parser(
        "list", help="inventory a directory of runs: status, progress, checkpoints"
    )
    p.add_argument("directory", help="a run directory or a directory of runs")
    p.add_argument("--json", action="store_true", help="print raw JSON rows")
    p.set_defaults(func=cmd_runs_list)

    p = sub.add_parser(
        "serve",
        help="start the coordination service: HTTP job API + worker coordinator",
    )
    p.add_argument(
        "--data-dir",
        required=True,
        metavar="DIR",
        help="service state root: jobs/, telemetry, the service.json manifest",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, help="job API port (0 = ephemeral)"
    )
    p.add_argument(
        "--coordinator-port",
        type=int,
        default=0,
        help="worker socket port (0 = ephemeral)",
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="expected worker heartbeat period",
    )
    p.add_argument(
        "--heartbeat-misses",
        type=int,
        default=3,
        metavar="N",
        help="missed heartbeats before a worker is declared lost and its "
        "cells are reassigned",
    )
    p.add_argument(
        "--token",
        metavar="SECRET",
        help="shared-secret worker auth: registrations without this exact "
        "token are rejected (never written to service.json)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker", help="serve cells for a coordinator until drained/stopped"
    )
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="coordinator worker-socket address",
    )
    p.add_argument(
        "--data-dir",
        metavar="DIR",
        help="discover the coordinator from DIR/service.json instead",
    )
    p.add_argument("--name", help="worker identity (default hostname-pid)")
    p.add_argument(
        "--workdir",
        metavar="DIR",
        help="scratch directory for cell runs (default: a temp dir)",
    )
    p.add_argument(
        "--max-cells", type=int, metavar="N", help="exit after N cells"
    )
    p.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="exit once the coordinator reports no work left anywhere",
    )
    p.add_argument("--poll-interval", type=float, default=0.5, metavar="SECONDS")
    p.add_argument(
        "--token",
        metavar="SECRET",
        help="auth token quoted at registration (required when the "
        "coordinator was started with --token)",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "submit", help="submit an experiment grid to a running service"
    )
    p.add_argument("--url", metavar="URL", help="job API base URL")
    p.add_argument(
        "--data-dir",
        metavar="DIR",
        help="discover the API from DIR/service.json instead",
    )
    p.add_argument(
        "--descriptor",
        metavar="FILE",
        help="submit a saved experiment descriptor JSON instead of grid flags",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="BLOCKS",
        help="per-cell checkpoint cadence in 256-round blocks (the "
        "failover/adoption grain)",
    )
    p.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="stream the job's telemetry until it finishes",
    )
    p.add_argument("--policies", nargs="+", default=["scd", "jsq", "sed"])
    p.add_argument("--systems", nargs="+", default=["100x10"], metavar="NxM")
    p.add_argument("--loads", type=float, nargs="+", default=[0.7, 0.9, 0.99])
    p.add_argument("--replications", "-r", type=int, default=1)
    p.add_argument(
        "--workload",
        default="paper",
        help="paper (default), skew:FACTOR or bursty:SURGE[:SWITCH_PROB] "
        "(bursty travels as a registered factory descriptor); sized "
        "workloads cannot travel as descriptors -- submit those in-process",
    )
    p.add_argument(
        "--scenario",
        metavar="NAME[:k=v,...]",
        help="nonstationary workload scenario applied to every cell "
        "(see `repro scenarios`); travels in the descriptor",
    )
    p.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="P",
        help="scheduling priority: higher-priority jobs' cells are leased "
        "first (default 0; ties run in submission order)",
    )
    p.add_argument("--backend", default="reference", metavar="BACKEND")
    p.add_argument("--metrics", nargs="*", default=[], metavar="PROBE")
    p.add_argument(
        "--profile",
        default="u1_10",
        choices=["u1_10", "u1_100", "bimodal", "homogeneous"],
    )
    p.add_argument("--rate-seed", type=int, default=7)
    _add_run_args(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "status", help="show a running service's workers, leases and jobs"
    )
    p.add_argument("job", nargs="?", help="a job id for per-job status")
    p.add_argument("--url", metavar="URL", help="job API base URL")
    p.add_argument(
        "--data-dir",
        metavar="DIR",
        help="discover the API from DIR/service.json instead",
    )
    p.add_argument("--json", action="store_true", help="print raw JSON")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("cancel", help="stop a running job on a service")
    p.add_argument("job", help="the job id to cancel")
    p.add_argument("--url", metavar="URL", help="job API base URL")
    p.add_argument(
        "--data-dir",
        metavar="DIR",
        help="discover the API from DIR/service.json instead",
    )
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser("stability", help="empirical verdict + Appendix D bound")
    p.add_argument("--policy", default="scd")
    p.add_argument("--rho", type=float, default=0.95)
    _add_system_args(p)
    _add_run_args(p)
    p.set_defaults(func=cmd_stability)

    p = sub.add_parser(
        "compare",
        help="run one cell on several backends side by side "
        "(finite-n simulation vs the mean-field limit)",
    )
    p.add_argument(
        "--backends",
        nargs="+",
        default=["fast", "meanfield"],
        metavar="BACKEND",
        help="two or more engine backends (space- or comma-separated); "
        "analytic backends run once, stochastic ones --replications times; "
        "see `repro backends` for the capability column",
    )
    p.add_argument("--policy", default="jsq(2)")
    p.add_argument("--rho", type=float, default=0.9)
    p.add_argument(
        "--replications",
        "-r",
        type=int,
        default=3,
        help="replications per stochastic backend (analytic backends are "
        "deterministic and always run once)",
    )
    p.add_argument(
        "--workload",
        default="paper",
        help="paper (default), skew:FACTOR or bursty:SURGE[:SWITCH_PROB]",
    )
    p.add_argument(
        "--scenario",
        metavar="NAME[:k=v,...]",
        help="nonstationary workload scenario applied to every backend "
        "(see `repro scenarios`); the mean-field backend follows rate "
        "curves analytically",
    )
    p.add_argument("--save", help="write the comparison table as JSON")
    _add_system_args(p)
    _add_run_args(p)
    p.set_defaults(func=cmd_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # output piped into head/less that closed early
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
