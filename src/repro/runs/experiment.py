"""Checkpointed experiment execution: one resumable run per grid cell.

An :class:`ExperimentRun` materializes a declarative
:class:`~repro.experiments.grid.Experiment` as a directory of per-cell
:class:`~repro.runs.orchestrator.Run` directories::

    <dir>/run.json            manifest ({"kind": "experiment_run", ...})
    <dir>/experiment.pkl      the pickled grid (cells are rebuilt from it)
    <dir>/experiment.json     human-readable grid descriptor
    <dir>/telemetry.jsonl     cell-level event stream
    <dir>/cells/cell-0000/    one Run directory per grid cell
    <dir>/result.json         the assembled ExperimentResult, on completion

``execute()`` walks the grid in order; cells whose run already finished
are skipped (their records are reconstructed from disk), the in-flight
cell resumes from its newest checkpoint, and untouched cells start
fresh.  Kill the process anywhere and ``execute()`` again: completed
work is never redone and every record is bit-identical to an
uninterrupted serial execution.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

from repro.analysis.persistence import save_experiment
from repro.experiments.executor import build_cell_simulation
from repro.experiments.grid import Experiment
from repro.experiments.results import CellRecord, ExperimentResult, metrics_from_result

from .orchestrator import _RUN_FORMAT_VERSION, Run
from .telemetry import TelemetryWriter

__all__ = ["ExperimentRun"]


class ExperimentRun:
    """A declarative experiment bound to a resumable run directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / "run.json"
        self.experiment_path = self.directory / "experiment.pkl"
        self.telemetry_path = self.directory / "telemetry.jsonl"
        self.result_path = self.directory / "result.json"
        self.cells_dir = self.directory / "cells"

    @classmethod
    def create(
        cls,
        experiment: Experiment,
        directory: str | Path,
        checkpoint_every: int = 1,
    ) -> "ExperimentRun":
        """Initialize an experiment run directory; refuses an existing one."""
        run = cls(directory)
        if run.manifest_path.exists():
            raise FileExistsError(
                f"{run.manifest_path} already exists; "
                f"resume it instead of creating over it"
            )
        run.directory.mkdir(parents=True, exist_ok=True)
        run.experiment_path.write_bytes(
            pickle.dumps(experiment, protocol=pickle.HIGHEST_PROTOCOL)
        )
        (run.directory / "experiment.json").write_text(
            json.dumps(experiment.describe(), indent=2) + "\n"
        )
        manifest = {
            "format_version": _RUN_FORMAT_VERSION,
            "kind": "experiment_run",
            "cells": experiment.size,
            "checkpoint_every": int(checkpoint_every),
            "telemetry": run.telemetry_path.name,
        }
        run.manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        return run

    @classmethod
    def open(cls, directory: str | Path) -> "ExperimentRun":
        run = cls(directory)
        if run.manifest().get("kind") != "experiment_run":
            raise ValueError(
                f"{run.manifest_path} is not an experiment run manifest"
            )
        return run

    def manifest(self) -> dict:
        if not self.manifest_path.exists():
            raise FileNotFoundError(
                f"no run manifest at {self.manifest_path}; "
                f"create the run first"
            )
        return json.loads(self.manifest_path.read_text())

    def experiment(self) -> Experiment:
        return pickle.loads(self.experiment_path.read_bytes())

    def cell_directory(self, index: int) -> Path:
        return self.cells_dir / f"cell-{index:04d}"

    def execute(self, max_legs: int | None = None) -> ExperimentResult | None:
        """Run (or resume) every cell serially, in grid order.

        ``max_legs`` is forwarded to each cell's ``Run.execute``: a
        cell that hits the budget pauses at its freshest checkpoint and
        the whole experiment returns ``None`` (call again to continue).
        On completion the assembled result is saved to ``result.json``
        and returned.
        """
        manifest = self.manifest()
        experiment = self.experiment()
        checkpoint_every = int(manifest.get("checkpoint_every", 1))
        records: list[CellRecord] = []
        with TelemetryWriter(self.telemetry_path) as telemetry:
            for cell in experiment.cells():
                cell_dir = self.cell_directory(cell.index)
                if (cell_dir / "run.json").exists():
                    cell_run = Run.open(cell_dir)
                else:
                    sim = build_cell_simulation(
                        cell.policy,
                        cell.system,
                        cell.rho,
                        cell.workload,
                        cell.seed,
                        cell.rounds,
                        cell.warmup,
                        cell.backend,
                        cell.metrics,
                    )
                    cell_run = Run.create(
                        sim, cell_dir, checkpoint_every=checkpoint_every
                    )
                already_done = cell_run.result_path.exists()
                if already_done:
                    result = cell_run.result()
                    telemetry.emit(
                        "cell-skipped", cell=cell.index, policy=cell.policy.label
                    )
                else:
                    telemetry.emit(
                        "cell-started", cell=cell.index, policy=cell.policy.label
                    )
                    result = cell_run.execute(max_legs=max_legs)
                    if result is None:
                        telemetry.emit("experiment-paused", cell=cell.index)
                        return None
                    telemetry.emit(
                        "cell-finished",
                        cell=cell.index,
                        policy=cell.policy.label,
                        mean=result.histogram.mean(),
                    )
                records.append(
                    CellRecord(
                        policy=cell.policy.label,
                        system=cell.system.name,
                        rho=cell.rho,
                        replication=cell.replication,
                        workload=cell.workload.name,
                        seed=cell.seed,
                        metrics=metrics_from_result(result),
                        result=result,
                    )
                )
            final = ExperimentResult(experiment=experiment, records=tuple(records))
            save_experiment(final, self.result_path)
            telemetry.emit("experiment-finished", cells=len(records))
        return final
