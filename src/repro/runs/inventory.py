"""Run-directory inventory: what is on disk, how far did it get.

``repro runs list <dir>`` (and the service's job listing) need a cheap,
read-only answer to "what runs live here and in what state?" without
unpickling a single checkpoint.  :func:`inspect_run` reads only the
JSON surfaces of one run directory -- ``run.json``, checkpoint
manifests, ``result.json`` presence, the telemetry log -- and
:func:`scan_runs` applies it across a directory of run directories
(the target itself when it is a run, otherwise its immediate
children, sorted by name).

Works on both run kinds: ``simulation_run`` directories report rounds
completed against the total, ``experiment_run`` directories report
cells completed against the grid size (their per-cell ``Run``
directories can be listed separately by pointing at ``<dir>/cells``).
"""

from __future__ import annotations

import json
from pathlib import Path

from .telemetry import iter_events

__all__ = ["inspect_run", "scan_runs"]


def _read_manifest(directory: Path) -> dict | None:
    path = directory / "run.json"
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError):
        return {"kind": "damaged"}
    return manifest if isinstance(manifest, dict) else {"kind": "damaged"}


def _checkpoint_rounds(directory: Path) -> list[int]:
    """Committed checkpoint rounds, ascending, from manifests alone."""
    rounds = []
    for path in sorted((directory / "checkpoints").glob("ckpt-*.json")):
        try:
            rounds.append(int(json.loads(path.read_text())["round"]))
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return sorted(rounds)


def _telemetry_stats(directory: Path, manifest: dict) -> tuple[int, int | None]:
    """``(event_count, last_seq)`` of the run's telemetry file."""
    name = manifest.get("telemetry", "telemetry.jsonl")
    path = Path(name)
    if not path.is_absolute():
        path = directory / path
    count = 0
    last_seq = None
    for record in iter_events(path):
        count += 1
        if isinstance(record.get("seq"), int):
            last_seq = record["seq"]
    return count, last_seq


def inspect_run(directory: str | Path) -> dict | None:
    """One inventory row for a run directory, or ``None`` if it is not one.

    Keys: ``directory``, ``kind``, ``status`` (``finished`` when
    ``result.json`` exists, ``in-flight`` once any checkpoint or
    telemetry event landed, else ``fresh``), ``engine``/``backend``/
    ``policy`` (simulation runs), ``rounds_done``/``rounds`` (total
    rounds for finished runs, the newest checkpoint round otherwise),
    ``cells``/``cells_done`` (experiment runs), ``checkpoints``,
    ``last_checkpoint`` and ``telemetry_seq`` (highest event sequence
    number, ``None`` when the log is empty or absent).
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    if manifest is None:
        return None
    kind = manifest.get("kind", "damaged")
    row: dict = {"directory": str(directory), "kind": kind}
    if kind == "damaged":
        row["status"] = "damaged"
        return row
    finished = (directory / "result.json").exists()
    events, last_seq = _telemetry_stats(directory, manifest)
    row["telemetry_seq"] = last_seq

    if kind == "experiment_run":
        cells_dir = directory / "cells"
        done = 0
        total_cells = manifest.get("cells")
        if cells_dir.is_dir():
            done = sum(
                1 for cell in cells_dir.iterdir() if (cell / "result.json").exists()
            )
        row.update(
            cells=total_cells,
            cells_done=total_cells if finished else done,
            status="finished"
            if finished
            else ("in-flight" if done or events else "fresh"),
        )
        return row

    rounds = _checkpoint_rounds(directory)
    total = manifest.get("rounds")
    row.update(
        engine=manifest.get("engine"),
        backend=manifest.get("backend"),
        policy=manifest.get("policy"),
        rounds=total,
        rounds_done=total if finished else (rounds[-1] if rounds else 0),
        checkpoints=len(rounds),
        last_checkpoint=rounds[-1] if rounds else None,
        status="finished"
        if finished
        else ("in-flight" if rounds or events else "fresh"),
    )
    return row


def scan_runs(root: str | Path) -> list[dict]:
    """Inventory rows for ``root`` (itself a run) or its child run dirs."""
    root = Path(root)
    own = inspect_run(root)
    if own is not None:
        return [own]
    rows = []
    if root.is_dir():
        for child in sorted(root.iterdir()):
            if not child.is_dir():
                continue
            row = inspect_run(child)
            if row is not None:
                rows.append(row)
    return rows
