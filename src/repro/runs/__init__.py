"""Run lifecycle subsystem: checkpointed, telemetered, resumable runs.

Long simulations become crash-safe *runs*: block-aligned checkpoints
(:mod:`~repro.runs.checkpoint`), streaming JSONL telemetry
(:mod:`~repro.runs.telemetry`), and orchestrators that drive either
engine's kernels through the lifecycle seam of
:mod:`repro.sim.lifecycle` -- :class:`Run` for one simulation,
:class:`ExperimentRun` for a whole declarative grid with per-cell
resume.  The CLI front ends are ``repro run``, ``repro resume`` and
``repro tail``.
"""

from .checkpoint import CheckpointError, CheckpointStore, retained_rounds
from .experiment import ExperimentRun
from .inventory import inspect_run, scan_runs
from .orchestrator import (
    BLOCK_ROUNDS,
    CheckpointController,
    LegLimitReached,
    Run,
    probe_summaries_from_state,
)
from .telemetry import TelemetryWriter, follow_events, iter_events

__all__ = [
    "BLOCK_ROUNDS",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointController",
    "ExperimentRun",
    "LegLimitReached",
    "Run",
    "TelemetryWriter",
    "follow_events",
    "inspect_run",
    "iter_events",
    "probe_summaries_from_state",
    "retained_rounds",
    "scan_runs",
]
