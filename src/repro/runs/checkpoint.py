"""Block-aligned checkpoint store: atomic, content-hashed, self-healing.

One checkpoint is two files in the store directory:

``ckpt-<round>.pkl``
    The pickled payload -- the complete resume state of a simulation at
    a 256-round block boundary (the whole engine object plus the round
    kernel's exported state, pickled *together* so every internal alias,
    most importantly the policy's RNG stream, survives the round trip).
``ckpt-<round>.json``
    The manifest: round index, payload filename, its SHA-256 and size,
    plus run metadata.  The manifest is written *after* the payload and
    is the commit point -- a payload without a manifest is an aborted
    write and is ignored.

Both files are written via write-to-temp + ``fsync`` + atomic rename,
so a crash (or SIGKILL) at any instant leaves either the previous
checkpoint set or a complete new one, never a torn file under a final
name.  :meth:`CheckpointStore.load_latest` walks manifests newest
first, verifies the content hash, and falls back to the previous
snapshot on any corruption (with a warning); only when *every*
checkpoint is damaged does it raise :class:`CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path

__all__ = ["CheckpointError", "CheckpointStore", "retained_rounds"]

_FORMAT_VERSION = 1


def retained_rounds(
    rounds, keep_last: int, stride: int | None = None
) -> list[int]:
    """Which checkpoint rounds a retention policy preserves, ascending.

    The policy keeps the newest ``keep_last`` checkpoints plus every
    power-of-two checkpoint ordinal (rounds ``stride``, ``2*stride``,
    ``4*stride``, ...), so a long run retains a dense recent window for
    cheap resume and exponentially thinning anchors back to the start
    for deep-history adoption, at O(keep_last + log(run length)) stored
    snapshots.  ``stride`` is the round distance between consecutive
    checkpoints; when omitted it is inferred from the smallest round
    present (the ordinal-1 checkpoint is itself always retained, so the
    inference is stable across repeated prunes).  Rounds that are not a
    multiple of the stride are defensively kept.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")
    rounds = sorted(int(r) for r in rounds)
    if not rounds:
        return []
    if stride is None:
        stride = rounds[0]
    stride = int(stride)
    if stride < 1:
        raise ValueError("stride must be >= 1")
    keep = set(rounds[-keep_last:])
    for r in rounds:
        if r % stride:
            keep.add(r)  # off-grid snapshot: not ours to judge, keep it
            continue
        ordinal = r // stride
        if ordinal > 0 and ordinal & (ordinal - 1) == 0:
            keep.add(r)  # power-of-two anchor
    return sorted(keep)


class CheckpointError(RuntimeError):
    """No usable checkpoint: every manifest present failed validation."""


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + rename."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class CheckpointStore:
    """The checkpoints of one run, newest-first addressable."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _payload_name(self, round_index: int) -> str:
        return f"ckpt-{round_index:010d}.pkl"

    def _manifest_name(self, round_index: int) -> str:
        return f"ckpt-{round_index:010d}.json"

    def write(self, round_index: int, blob: bytes, meta: dict | None = None) -> dict:
        """Commit one checkpoint; returns its manifest.

        ``blob`` is the already-pickled payload.  The payload lands
        first, the manifest second (the commit point), both atomically.
        """
        round_index = int(round_index)
        payload_name = self._payload_name(round_index)
        _atomic_write_bytes(self.directory / payload_name, blob)
        manifest = {
            "format_version": _FORMAT_VERSION,
            "round": round_index,
            "payload": payload_name,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
            **(meta or {}),
        }
        _atomic_write_bytes(
            self.directory / self._manifest_name(round_index),
            json.dumps(manifest).encode("utf-8"),
        )
        return manifest

    def manifest_paths(self) -> list[Path]:
        """Manifest files, newest (highest round) first.

        Zero-padded round numbers in the filenames make the name sort
        the round sort.
        """
        return sorted(self.directory.glob("ckpt-*.json"), reverse=True)

    def rounds(self) -> list[int]:
        """Rounds with a committed (manifested) checkpoint, ascending."""
        rounds = []
        for path in self.manifest_paths():
            try:
                rounds.append(int(json.loads(path.read_text())["round"]))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return sorted(rounds)

    def _newest_valid(
        self, failures: list[str], skip: frozenset[str] = frozenset()
    ) -> tuple[dict, bytes] | None:
        """``(manifest, raw_blob)`` of the newest hash-valid checkpoint.

        Walks manifests newest first, ignoring names in ``skip``; every
        rejected snapshot appends to ``failures`` and warns.  Returns
        ``None`` when no manifest survives (callers decide whether that
        is a fresh store or an error, via ``failures``).
        """

        def reject(path: Path, reason: str) -> None:
            failures.append(f"{path.name}: {reason}")
            warnings.warn(
                f"checkpoint {path.name} rejected ({reason}); "
                f"falling back to the previous snapshot",
                RuntimeWarning,
                stacklevel=4,
            )

        for path in self.manifest_paths():
            if path.name in skip:
                continue
            try:
                manifest = json.loads(path.read_text())
            except (OSError, ValueError) as error:
                reject(path, f"unreadable manifest: {error}")
                continue
            if not isinstance(manifest, dict) or "payload" not in manifest:
                reject(path, "malformed manifest")
                continue
            if manifest.get("format_version") != _FORMAT_VERSION:
                reject(
                    path,
                    f"unsupported format version "
                    f"{manifest.get('format_version')!r}",
                )
                continue
            payload_path = self.directory / str(manifest["payload"])
            try:
                blob = payload_path.read_bytes()
            except OSError as error:
                reject(path, f"missing payload: {error}")
                continue
            digest = hashlib.sha256(blob).hexdigest()
            if digest != manifest.get("sha256"):
                reject(path, "payload hash mismatch (truncated or corrupted)")
                continue
            return manifest, blob
        return None

    def latest_blob(self) -> tuple[dict, bytes] | None:
        """``(manifest, raw_payload_bytes)`` of the newest valid checkpoint.

        The transport-facing twin of :meth:`load_latest`: the blob is
        hash-verified but **not** unpickled, so a coordinator can adopt
        and re-ship a snapshot without trusting or paying for its
        contents.  Returns ``None`` when nothing valid is stored (a
        fresh directory, or every snapshot damaged -- shipping callers
        treat both as "start from round 0").
        """
        failures: list[str] = []
        return self._newest_valid(failures)

    def load_latest(self) -> tuple[dict, object] | None:
        """``(manifest, payload_object)`` of the newest valid checkpoint.

        Returns ``None`` when the store holds no committed checkpoint
        (fresh run).  Corrupted or truncated checkpoints -- unreadable
        manifest, missing payload, hash mismatch, unpicklable blob --
        are rejected with a warning and the walk falls back to the
        previous snapshot; if manifests exist but none validates,
        raises :class:`CheckpointError` naming every failure.
        """
        if not self.manifest_paths():
            return None
        failures: list[str] = []
        skip: set[str] = set()
        while True:
            found = self._newest_valid(failures, skip=frozenset(skip))
            if found is None:
                raise CheckpointError(
                    "no usable checkpoint: every snapshot failed validation -- "
                    + "; ".join(failures)
                )
            manifest, blob = found
            try:
                return manifest, pickle.loads(blob)
            except Exception as error:  # torn pickle despite matching hash
                name = self._manifest_name(int(manifest["round"]))
                failures.append(f"{name}: unpicklable payload: {error}")
                warnings.warn(
                    f"checkpoint {name} rejected (unpicklable payload: "
                    f"{error}); falling back to the previous snapshot",
                    RuntimeWarning,
                    stacklevel=2,
                )
                skip.add(name)

    def _discard(self, round_index: int) -> None:
        """Remove one checkpoint, manifest (the commit point) first."""
        for path in (
            self.directory / self._manifest_name(round_index),
            self.directory / self._payload_name(round_index),
        ):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    def prune(self, keep_last: int, stride: int | None = None) -> list[int]:
        """Apply the retention policy; returns the rounds removed.

        Keeps the newest ``keep_last`` checkpoints plus the power-of-two
        ordinal anchors (see :func:`retained_rounds`).  Each removal
        deletes the manifest before the payload, so a crash mid-prune
        leaves at worst an orphaned payload that loaders already ignore.
        """
        rounds = self.rounds()
        keep = set(retained_rounds(rounds, keep_last, stride))
        removed = [r for r in rounds if r not in keep]
        for round_index in removed:
            self._discard(round_index)
        return removed
