"""The run orchestrator: checkpointed, telemetered simulation legs.

A :class:`Run` wraps one simulation (either engine, any registered
backend) in an on-disk run directory::

    <dir>/run.json            run manifest (engine, policy, geometry)
    <dir>/spec.pkl            the pristine simulation, streams at round 0
    <dir>/telemetry.jsonl     streaming event log (repro tail / tail -f)
    <dir>/checkpoints/        block-aligned snapshots (CheckpointStore)
    <dir>/result.json         final result, written once on completion

``execute()`` drives the simulation under a :class:`CheckpointController`
riding the kernel lifecycle seam (:mod:`repro.sim.lifecycle`): every
``checkpoint_every`` 256-round blocks the *whole* simulation object and
the kernel's exported state are pickled together into one blob --
pickling them as a unit preserves every internal alias, most importantly
that the policy's RNG *is* the simulation's policy stream -- and
committed atomically.  Killing the process at any instant and calling
``execute()`` again resumes from the newest valid checkpoint and
produces bit-identical results to an uninterrupted run.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

from repro.analysis.persistence import (
    result_from_dict,
    result_to_dict,
    sized_result_from_dict,
    sized_result_to_dict,
)
from repro.sim.backends import _CHUNK_ROUNDS
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.lifecycle import RunController
from repro.sim.sized import SizedSimulation, SizedSimulationResult

from .checkpoint import CheckpointStore
from .telemetry import TelemetryWriter

__all__ = [
    "BLOCK_ROUNDS",
    "LegLimitReached",
    "Run",
    "CheckpointController",
    "probe_summaries_from_state",
]

#: Rounds per kernel block == the checkpoint alignment grain.
BLOCK_ROUNDS = _CHUNK_ROUNDS

_RUN_FORMAT_VERSION = 1


class LegLimitReached(Exception):
    """Internal control flow: the controller hit its ``max_legs`` budget.

    Raised out of ``after_block`` right after a checkpoint commits, so
    the kernel unwinds (sharded strategies close their workers via
    ``finally``) and ``Run.execute`` returns ``None`` with the run
    paused on disk.
    """


def _backend_capabilities(engine: str, backend: str):
    """Capability flags from the registry matching the sim's engine."""
    if engine == "sized":
        from repro.sim.sizedbackends import sized_backend_capabilities

        return sized_backend_capabilities(backend)
    from repro.sim.backends import backend_capabilities

    return backend_capabilities(backend)


def _describe_sim(sim) -> dict:
    """Manifest-facing description of either engine's simulation."""
    if isinstance(sim, SizedSimulation):
        return {
            "engine": "sized",
            "backend": sim.backend,
            "policy": sim.policy.name,
            "rounds": sim.rounds,
            "warmup": sim.warmup,
            "seed": sim.seed,
        }
    config = sim.config
    return {
        "engine": "unsized",
        "backend": config.backend,
        "policy": sim.policy.name,
        "rounds": config.rounds,
        "warmup": config.warmup,
        "seed": config.seed,
    }


def probe_summaries_from_state(kernel_state: dict) -> dict[str, dict]:
    """Live probe summaries from an exported kernel state dict.

    Works on *throwaway* copies only (unpickle the checkpoint blob
    first): folding sharded probe maps mutates the shard-0 probes in
    place.  Single-kernel states carry a ``probes`` ProbeSet directly;
    sharded states are folded across their shard snapshots exactly as
    the kernel does at end of run, then overlaid with the
    coordinator-side probes.
    """
    if "probes" in kernel_state:
        probe_map = kernel_state["probes"].as_dict()
    else:
        from repro.sim.sharding import _fold_shards

        probe_map = _fold_shards(
            [shard["probes"].as_dict() for shard in kernel_state["shards"]]
        )
        probe_map = {**probe_map, **kernel_state["coordinator_probes"].as_dict()}
    return {label: probe.summary() for label, probe in probe_map.items()}


class CheckpointController(RunController):
    """Lifecycle controller that checkpoints every N blocks and narrates.

    Emits ``leg-completed`` at each checkpoint boundary, then
    ``probe-snapshot`` (summaries computed from a throwaway unpickled
    copy of the blob, never the live kernel state) and
    ``checkpoint-written`` once the snapshot is committed.  With
    ``max_legs`` set, raises :class:`LegLimitReached` after that many
    checkpoints.  ``keep`` applies the retention policy of
    :func:`repro.runs.checkpoint.retained_rounds` after every commit
    (newest ``keep`` plus power-of-two anchors; emits
    ``checkpoints-pruned`` when snapshots are collected), and
    ``on_checkpoint(manifest, blob)`` is called after each commit --
    the federation worker's seam for shipping snapshots to its
    coordinator.
    """

    def __init__(
        self,
        sim,
        store: CheckpointStore,
        telemetry: TelemetryWriter,
        checkpoint_every: int = 1,
        start_round: int = 0,
        state: dict | None = None,
        max_legs: int | None = None,
        keep: int | None = None,
        on_checkpoint: "callable | None" = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if keep is not None and keep < 1:
            raise ValueError("keep must be >= 1")
        self._sim = sim
        self._store = store
        self._telemetry = telemetry
        self._engine = _describe_sim(sim)["engine"]
        self._rounds = _describe_sim(sim)["rounds"]
        self._stride = int(checkpoint_every) * BLOCK_ROUNDS
        self.start_round = int(start_round)
        self._state = state
        self._max_legs = max_legs
        self._keep = keep
        self._on_checkpoint = on_checkpoint
        self._legs = 0

    def initial_state(self) -> dict | None:
        return self._state

    def after_block(self, next_round: int, export) -> None:
        if next_round >= self._rounds:
            return  # final block: the kernel's own result is the artifact
        if next_round % self._stride:
            return
        blob = pickle.dumps(
            {
                "round": next_round,
                "engine": self._engine,
                "sim": self._sim,
                "kernel": export(),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._telemetry.emit(
            "leg-completed", round=next_round, rounds=self._rounds
        )
        self._telemetry.emit(
            "probe-snapshot",
            round=next_round,
            summaries=probe_summaries_from_state(pickle.loads(blob)["kernel"]),
        )
        manifest = self._store.write(
            next_round, blob, meta={"engine": self._engine}
        )
        self._telemetry.emit(
            "checkpoint-written",
            round=next_round,
            payload=manifest["payload"],
            bytes=manifest["bytes"],
            sha256=manifest["sha256"],
        )
        if self._keep is not None:
            removed = self._store.prune(self._keep, stride=self._stride)
            if removed:
                self._telemetry.emit(
                    "checkpoints-pruned", round=next_round, removed=removed
                )
        if self._on_checkpoint is not None:
            self._on_checkpoint(manifest, blob)
        self._legs += 1
        if self._max_legs is not None and self._legs >= self._max_legs:
            raise LegLimitReached


class Run:
    """One checkpointed simulation bound to a run directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / "run.json"
        self.spec_path = self.directory / "spec.pkl"
        self.result_path = self.directory / "result.json"
        self.store = CheckpointStore(self.directory / "checkpoints")

    @property
    def telemetry_path(self) -> Path:
        """The event log file (manifest override, relative to the dir)."""
        name = "telemetry.jsonl"
        if self.manifest_path.exists():
            name = self.manifest().get("telemetry", name)
        path = Path(name)
        return path if path.is_absolute() else self.directory / path

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        sim: "Simulation | SizedSimulation",
        directory: str | Path,
        checkpoint_every: int = 1,
        telemetry: str | Path | None = None,
        keep: int | None = None,
    ) -> "Run":
        """Initialize a run directory around a freshly built simulation.

        ``sim`` must not have been run: its pickled copy (``spec.pkl``)
        is the round-0 starting point every fresh ``execute()`` uses.
        ``telemetry`` overrides the event-log location (relative paths
        resolve against the run directory).  ``keep`` enables checkpoint
        garbage collection: after every snapshot commit the store
        retains only the newest ``keep`` checkpoints plus the
        power-of-two ordinal anchors (``None`` keeps everything).
        Refuses a directory that already holds a run.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if keep is not None and int(keep) < 1:
            raise ValueError("keep must be >= 1")
        described = _describe_sim(sim)
        caps = _backend_capabilities(described["engine"], described["backend"])
        if not caps.supports_checkpoint:
            raise ValueError(
                f"backend {described['backend']!r} does not support "
                f"checkpoint/resume (capabilities: {caps.describe()}); "
                f"run it directly instead of through a run directory"
            )
        run = cls(directory)
        if run.manifest_path.exists():
            raise FileExistsError(
                f"{run.manifest_path} already exists; "
                f"resume it instead of creating over it"
            )
        run.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": _RUN_FORMAT_VERSION,
            "kind": "simulation_run",
            **_describe_sim(sim),
            "checkpoint_every": int(checkpoint_every),
            "block_rounds": BLOCK_ROUNDS,
            "telemetry": str(telemetry) if telemetry else "telemetry.jsonl",
        }
        if keep is not None:
            manifest["keep"] = int(keep)
        run.spec_path.write_bytes(
            pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
        )
        run.manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        return run

    @classmethod
    def open(cls, directory: str | Path) -> "Run":
        """Bind to an existing run directory (validates the manifest)."""
        run = cls(directory)
        manifest = run.manifest()
        if manifest.get("kind") != "simulation_run":
            raise ValueError(
                f"{run.manifest_path} is not a simulation run manifest"
            )
        return run

    def manifest(self) -> dict:
        if not self.manifest_path.exists():
            raise FileNotFoundError(
                f"no run manifest at {self.manifest_path}; "
                f"create the run first"
            )
        return json.loads(self.manifest_path.read_text())

    # -- results ----------------------------------------------------------

    def result(self) -> "SimulationResult | SizedSimulationResult | None":
        """The finished result, or ``None`` while the run is in flight."""
        if not self.result_path.exists():
            return None
        payload = json.loads(self.result_path.read_text())
        if payload.get("kind") == "sized_result":
            return sized_result_from_dict(payload)
        return result_from_dict(payload)

    # -- execution --------------------------------------------------------

    def execute(
        self,
        max_legs: int | None = None,
        on_checkpoint: "callable | None" = None,
    ) -> "SimulationResult | SizedSimulationResult | None":
        """Run to completion (or ``max_legs`` checkpoints), resumably.

        Picks up from the newest valid checkpoint when one exists,
        otherwise starts fresh from ``spec.pkl``.  Returns the final
        result -- loaded from ``result.json`` if the run already
        finished (idempotent) -- or ``None`` when paused by
        ``max_legs``.  ``on_checkpoint(manifest, blob)`` fires after
        every committed snapshot (the federation worker ships each blob
        to its coordinator through this hook).
        """
        finished = self.result()
        if finished is not None:
            return finished
        manifest = self.manifest()

        latest = self.store.load_latest()
        if latest is not None:
            ckpt_manifest, payload = latest
            sim = payload["sim"]
            start_round = int(payload["round"])
            state = payload["kernel"]
            resumed = True
        else:
            sim = pickle.loads(self.spec_path.read_bytes())
            start_round = 0
            state = None
            resumed = False

        with TelemetryWriter(self.telemetry_path) as telemetry:
            telemetry.emit(
                "run-started",
                round=start_round,
                rounds=manifest["rounds"],
                resumed=resumed,
                engine=manifest["engine"],
                backend=manifest["backend"],
                policy=manifest["policy"],
            )
            keep = manifest.get("keep")
            controller = CheckpointController(
                sim,
                self.store,
                telemetry,
                checkpoint_every=int(manifest.get("checkpoint_every", 1)),
                start_round=start_round,
                state=state,
                max_legs=max_legs,
                keep=int(keep) if keep is not None else None,
                on_checkpoint=on_checkpoint,
            )
            try:
                result = sim.run(controller=controller)
            except LegLimitReached:
                telemetry.emit(
                    "run-paused",
                    legs=max_legs,
                    checkpoints=self.store.rounds(),
                )
                return None
            if isinstance(result, SizedSimulationResult):
                payload = sized_result_to_dict(result)
            else:
                payload = result_to_dict(result)
            self.result_path.write_text(json.dumps(payload) + "\n")
            telemetry.emit(
                "run-finished",
                rounds=manifest["rounds"],
                summaries={
                    label: probe.summary()
                    for label, probe in result.probes.items()
                },
            )
        return result
