"""Streaming JSONL run telemetry.

One event per line, appended and flushed immediately, so a live run can
be watched with ``tail -f`` (or ``repro tail``) while it executes.  Each
event carries a monotonically increasing ``seq`` (continued across
resumes), a wall-clock ``time``, and the ``event`` name; everything else
is event-specific.  The run orchestrator (:mod:`repro.runs.orchestrator`)
emits ``run-started``, ``leg-completed``, ``probe-snapshot``,
``checkpoint-written``, ``run-paused`` and ``run-finished``.

Readers are tolerant by construction: a process killed mid-write leaves
at most one torn trailing line, which :func:`iter_events` skips.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterator

__all__ = ["TelemetryWriter", "iter_events", "follow_events"]


class TelemetryWriter:
    """Append-only JSONL event writer (one flush per event)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Continue the sequence across resumes: events already on disk
        # keep their numbers, new ones follow.
        self._seq = sum(1 for _ in iter_events(self.path))
        self._file = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, **fields) -> dict:
        """Append one event and flush it to disk; returns the record."""
        record = {
            "seq": self._seq,
            "time": time.time(),
            "event": str(event),
            **fields,
        }
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_events(path: str | Path) -> Iterator[dict]:
    """Yield the events of a telemetry file, skipping torn lines."""
    path = Path(path)
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write (killed mid-line)
            if isinstance(record, dict):
                yield record


def follow_events(
    path: str | Path,
    poll_interval: float = 0.2,
    stop: "callable | None" = None,
) -> Iterator[dict]:
    """Yield events as they appear (the ``tail -f`` loop).

    Replays everything already in the file, then polls for appended
    lines every ``poll_interval`` seconds.  ``stop`` (when given) is
    checked between polls; once it returns true the file is drained one
    final time and the generator ends, so a reader that flips its stop
    flag *after* the writer's last event still sees every event.  Safe
    for any number of concurrent readers (each call keeps its own file
    position and never locks the writer): the HTTP metrics streamer and
    ``repro tail --follow`` run this exact loop against live files.
    """
    if poll_interval <= 0:
        raise ValueError("poll_interval must be > 0")
    path = Path(path)
    position = 0
    buffer = ""

    def drain() -> Iterator[dict]:
        nonlocal position, buffer
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as handle:
            handle.seek(position)
            chunk = handle.read()
            position = handle.tell()
        buffer += chunk
        while "\n" in buffer:
            line, buffer = buffer.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record

    while True:
        yield from drain()
        if stop is not None and stop():
            # The stop condition (job finished, result written) may have
            # flipped after the read above but events emitted just before
            # it are already on disk: drain once more so none are lost.
            yield from drain()
            return
        time.sleep(poll_interval)
