"""The federation coordinator: leases, heartbeats, failover.

Workers dial in over the framed-pickle transport
(:mod:`repro.service.wire`), register, and then *pull*: each asks for a
cell when it has nothing to do, runs it to completion under the
checkpointed run orchestrator, and ships the record back.  The
coordinator owns nothing but bookkeeping -- which worker holds which
lease, when each was last heard from -- and delegates all job state to
the :class:`~repro.service.jobs.JobManager`.

Protocol (worker -> coordinator; replies only where noted)::

    ("register", {"name", "pid", "token"?}) -> ("registered", {...})
                                            | ("error", reason), closes
    ("heartbeat",)                          no reply
    ("request-cell",)                    -> ("lease", {...}) | ("idle", {...})
    ("checkpoint", token, manifest, blob)   no reply
    ("cell-done", token, record)         -> ("ack", {"accepted": bool})
    ("cell-failed", token, error)        -> ("ack", {"accepted": bool})
    ("goodbye",)                            no reply, closes

Every lease carries an unguessable token; messages quoting a revoked
or unknown token are acknowledged-and-ignored, which is the whole
failover story: a worker presumed dead may deliver late (duplicate
lease) or mid-upload (torn lease) and neither can corrupt the job --
cells are deterministic and first-accepted-wins.

Failure detection is two-tier: a closed socket revokes the worker's
leases immediately, and a worker whose socket is open but silent for
``heartbeat_misses`` intervals (wedged process, dead VM behind a live
NAT entry) is declared lost by the monitor thread.  Revoked cells
requeue at the *front* of the queue together with the newest
checkpoint the dead worker uploaded, so the next worker adopts the
partial run instead of restarting it -- and because cells are
seed-stable either way, the final records are bit-identical to an
undisturbed serial execution.
"""

from __future__ import annotations

import secrets
import socket
import threading
import time

from .jobs import JobManager
from .wire import ChannelClosed, MessageChannel

__all__ = ["FederationCoordinator"]


class _Worker:
    """Coordinator-side view of one connected worker."""

    def __init__(self, name: str, pid: int | None, channel: MessageChannel) -> None:
        self.name = name
        self.pid = pid
        self.channel = channel
        self.connected = time.monotonic()
        self.last_seen = time.monotonic()
        self.cells_done = 0
        self.alive = True
        self.departed = False  # clean goodbye vs. presumed dead


class _Lease:
    """One cell granted to one worker, addressed by its token."""

    def __init__(self, token: str, job_id: str, cell_index: int, worker: _Worker) -> None:
        self.token = token
        self.job_id = job_id
        self.cell_index = cell_index
        self.worker = worker
        self.granted = time.monotonic()
        self.checkpoint_round: int | None = None


class FederationCoordinator:
    """Socket endpoint handing grid cells to registered workers."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 2.0,
        heartbeat_misses: int = 3,
        retry_after: float = 0.5,
        token: str | None = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if token is not None and not token:
            raise ValueError("auth token must be non-empty or None")
        self.manager = manager
        #: Shared-secret worker auth: when set, a registration whose
        #: payload does not quote the same token is rejected and its
        #: channel closed.  The token never appears in the service
        #: manifest -- it travels out of band (the operator hands it to
        #: worker launchers).
        self.token = token
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_misses = int(heartbeat_misses)
        self.retry_after = float(retry_after)
        self._host = host
        self._port = port
        self._lock = threading.RLock()
        self._workers: dict[str, _Worker] = {}
        self._leases: dict[str, _Lease] = {}
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._running = True
        for target, name in (
            (self._accept_loop, "federation-accept"),
            (self._monitor_loop, "federation-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self._port)

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            worker.channel.close()
        for thread in list(self._threads):
            thread.join(timeout=5)

    # -- accept / per-connection service ----------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(MessageChannel(sock),),
                name="federation-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, channel: MessageChannel) -> None:
        worker: _Worker | None = None
        try:
            while True:
                message = channel.recv()
                kind = message[0]
                if kind == "register":
                    worker = self._register(channel, message[1])
                    if worker is None:
                        return  # auth rejected; finally closes the channel
                elif worker is None:
                    channel.send(("error", "register first"))
                    return
                elif kind == "heartbeat":
                    worker.last_seen = time.monotonic()
                elif kind == "request-cell":
                    worker.last_seen = time.monotonic()
                    channel.send(self._grant(worker))
                elif kind == "checkpoint":
                    worker.last_seen = time.monotonic()
                    self._checkpoint(worker, *message[1:])
                elif kind == "cell-done":
                    worker.last_seen = time.monotonic()
                    channel.send(("ack", self._cell_done(worker, *message[1:])))
                elif kind == "cell-failed":
                    worker.last_seen = time.monotonic()
                    channel.send(("ack", self._cell_failed(worker, *message[1:])))
                elif kind == "goodbye":
                    worker.departed = True
                    return
                else:
                    channel.send(("error", f"unknown message {kind!r}"))
        except (ChannelClosed, EOFError, BrokenPipeError, OSError):
            pass
        finally:
            if worker is not None:
                self._worker_lost(worker)
            channel.close()

    # -- message handlers --------------------------------------------------

    def _register(self, channel: MessageChannel, info: dict) -> _Worker | None:
        base = str(info.get("name") or "worker")
        pid = info.get("pid")
        if self.token is not None and not secrets.compare_digest(
            str(info.get("token") or ""), self.token
        ):
            self.manager.telemetry.emit(
                "worker-rejected", worker=base, pid=pid, reason="invalid-token"
            )
            channel.send(("error", "invalid auth token"))
            return None
        with self._lock:
            name = base
            suffix = 1
            while name in self._workers and self._workers[name].alive:
                suffix += 1
                name = f"{base}#{suffix}"
            worker = _Worker(name, pid, channel)
            self._workers[name] = worker
        self.manager.telemetry.emit("worker-registered", worker=name, pid=pid)
        channel.send(
            (
                "registered",
                {
                    "name": name,
                    "heartbeat_interval": self.heartbeat_interval,
                    "heartbeat_misses": self.heartbeat_misses,
                },
            )
        )
        return worker

    def _grant(self, worker: _Worker) -> tuple:
        pulled = self.manager.next_cell()
        if pulled is None:
            return (
                "idle",
                {"retry_after": self.retry_after, "drained": self.drained()},
            )
        job_id, cell, checkpoint_every, adoption = pulled
        lease = _Lease(secrets.token_hex(16), job_id, cell.index, worker)
        if adoption is not None:
            lease.checkpoint_round = int(adoption[0]["round"])
        with self._lock:
            self._leases[lease.token] = lease
        self.manager.emit(
            job_id,
            "cell-leased",
            cell=cell.index,
            worker=worker.name,
            adopted_round=lease.checkpoint_round,
        )
        return (
            "lease",
            {
                "token": lease.token,
                "job": job_id,
                "cell": cell,
                "checkpoint_every": checkpoint_every,
                "checkpoint": adoption,
            },
        )

    def _active(self, worker: _Worker, token: str) -> _Lease | None:
        """The lease for ``token`` iff it is still this worker's to use."""
        with self._lock:
            lease = self._leases.get(token)
            if lease is None or lease.worker is not worker:
                return None
            return lease

    def _checkpoint(self, worker: _Worker, token: str, manifest: dict, blob: bytes) -> None:
        lease = self._active(worker, token)
        if lease is None:
            return  # torn lease: upload from a revoked holder, drop it
        self.manager.store_checkpoint(lease.job_id, lease.cell_index, manifest, blob)
        lease.checkpoint_round = int(manifest["round"])
        self.manager.emit(
            lease.job_id,
            "checkpoint-received",
            cell=lease.cell_index,
            round=lease.checkpoint_round,
            worker=worker.name,
        )

    def _cell_done(self, worker: _Worker, token: str, record) -> dict:
        lease = self._active(worker, token)
        if lease is None:
            return {"accepted": False}  # duplicate lease: already reassigned
        with self._lock:
            del self._leases[token]
        accepted = self.manager.record_result(lease.job_id, lease.cell_index, record)
        if accepted:
            worker.cells_done += 1
        return {"accepted": accepted}

    def _cell_failed(self, worker: _Worker, token: str, error: str) -> dict:
        lease = self._active(worker, token)
        if lease is None:
            return {"accepted": False}
        with self._lock:
            del self._leases[token]
        self.manager.emit(
            lease.job_id,
            "cell-failed",
            cell=lease.cell_index,
            worker=worker.name,
            error=error,
        )
        self.manager.requeue_cell(lease.job_id, lease.cell_index, failed=True)
        return {"accepted": True}

    # -- failure detection -------------------------------------------------

    def _monitor_loop(self) -> None:
        deadline = self.heartbeat_interval * self.heartbeat_misses
        while self._running:
            time.sleep(self.heartbeat_interval / 2)
            now = time.monotonic()
            with self._lock:
                silent = [
                    worker
                    for worker in self._workers.values()
                    if worker.alive and now - worker.last_seen > deadline
                ]
            for worker in silent:
                self._worker_lost(worker, reason="missed-heartbeats")
                worker.channel.close()  # unblocks its handler thread

    def _worker_lost(self, worker: _Worker, reason: str = "disconnected") -> None:
        """Revoke and requeue everything a gone worker held (idempotent)."""
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            revoked = [
                lease for lease in self._leases.values() if lease.worker is worker
            ]
            for lease in revoked:
                del self._leases[lease.token]
        if worker.departed:
            self.manager.telemetry.emit("worker-departed", worker=worker.name)
        else:
            self.manager.telemetry.emit(
                "worker-lost", worker=worker.name, reason=reason, leases=len(revoked)
            )
        for lease in revoked:
            self.manager.emit(
                lease.job_id,
                "cell-reassigned",
                cell=lease.cell_index,
                worker=worker.name,
                checkpoint_round=lease.checkpoint_round,
            )
            self.manager.requeue_cell(lease.job_id, lease.cell_index)

    # -- introspection -----------------------------------------------------

    def drained(self) -> bool:
        """No queued cells *and* no outstanding leases: idle workers may exit."""
        with self._lock:
            leased = bool(self._leases)
        return not leased and self.manager.drained()

    def status(self) -> dict:
        """JSON-able snapshot of workers and leases (the CLI/API view)."""
        now = time.monotonic()
        with self._lock:
            workers = [
                {
                    "name": worker.name,
                    "pid": worker.pid,
                    "alive": worker.alive,
                    "cells_done": worker.cells_done,
                    "last_seen_age": round(now - worker.last_seen, 3),
                }
                for worker in self._workers.values()
            ]
            leases = [
                {
                    "job": lease.job_id,
                    "cell": lease.cell_index,
                    "worker": lease.worker.name,
                    "pid": lease.worker.pid,
                    "checkpoint_round": lease.checkpoint_round,
                    "age": round(now - lease.granted, 3),
                }
                for lease in self._leases.values()
            ]
        return {
            "address": list(self.address),
            "workers": workers,
            "leases": leases,
            "pending_cells": self.manager.pending_count(),
            "drained": self.drained(),
        }
