"""Coordination service: job API, federated workers, socket shards.

This package turns the single-process reproduction into a small
distributed system while preserving the repo's bit-identity guarantees:

:mod:`~repro.service.wire`
    Length-prefixed pickle framing over sockets -- the one message
    transport every other module here builds on.
:mod:`~repro.service.jobs`
    The :class:`JobManager`: experiment descriptors in, grid cells
    out, records and checkpoints back, assembled
    :class:`~repro.experiments.results.ExperimentResult` on completion.
:mod:`~repro.service.coordinator`
    The :class:`FederationCoordinator`: socket endpoint workers
    register with, lease cells from, and stream heartbeats to; revokes
    and reassigns the leases of lost workers.
:mod:`~repro.service.worker`
    The pull-based :class:`FederationWorker` loop (``repro worker``).
:mod:`~repro.service.api`
    The HTTP job API (``repro serve``): submit descriptors, poll
    status, stream per-job telemetry as NDJSON.
:mod:`~repro.service.client`
    Stdlib-only HTTP client helpers (``repro submit`` / ``repro
    status`` use these).
:mod:`~repro.service.shardsocket`
    ``sharded:N:socket`` -- the shard-kernel transport strategy over
    TCP, registered lazily into :mod:`repro.sim.sharding`.

Everything is standard library only (sockets, ``http.server``,
``urllib``); results produced through any of these paths are
bit-identical to :class:`~repro.experiments.executor.SerialExecutor`.
"""

from .api import ServiceAPI
from .coordinator import FederationCoordinator
from .jobs import JobManager, validate_submittable
from .wire import ChannelClosed, MessageChannel
from .worker import FederationWorker, run_worker

__all__ = [
    "ChannelClosed",
    "FederationCoordinator",
    "FederationWorker",
    "JobManager",
    "MessageChannel",
    "ServiceAPI",
    "run_worker",
    "validate_submittable",
]
