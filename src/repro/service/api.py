"""The HTTP job API: submit descriptors, poll status, stream telemetry.

A thin, JSON-only front door over the :class:`~repro.service.jobs.JobManager`
and :class:`~repro.service.coordinator.FederationCoordinator` --
deliberately the *lossy* boundary: bodies are the same experiment
descriptors :func:`repro.analysis.persistence.experiment_from_descriptor`
round-trips, so anything a descriptor cannot carry (custom workload
factories) is rejected at submission with a 400 instead of failing
mid-grid on a worker.  Trusted pickle stays on the worker socket.

Routes::

    GET  /healthz              liveness probe
    GET  /status               coordinator snapshot (workers, leases)
    GET  /workers              just the worker list
    GET  /jobs                 job summaries
    POST /jobs                 submit {"experiment": <descriptor>,
                               "checkpoint_every": n, "priority": p}
                               (or a bare descriptor); 201 -> {"job": id}
    POST /jobs/<id>/cancel     stop a running job; 200 -> its status
                               (cancelling twice is a no-op 200)
    GET  /jobs/<id>            one job's status + its active leases
    GET  /jobs/<id>/result     the assembled result JSON (404 in flight)
    GET  /jobs/<id>/events     the job's telemetry as NDJSON; with
                               ?follow=1 the response stays open
                               (chunked) and streams events live until
                               the job leaves the running state

The events endpoint is :func:`repro.runs.telemetry.follow_events`
re-exposed over chunked HTTP: same drain loop, same tail guarantees,
one reader position per request, any number of concurrent followers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.analysis.persistence import experiment_from_descriptor
from repro.runs.telemetry import follow_events, iter_events

from .coordinator import FederationCoordinator
from .jobs import JobManager

__all__ = ["ServiceAPI"]

#: Seconds between telemetry polls while a follower is attached.
_FOLLOW_POLL = 0.2


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 so chunked transfer encoding (the streaming endpoint's
    # framing) is legal; every non-streamed reply sends Content-Length.
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    @property
    def coordinator(self) -> FederationCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def log_message(self, format, *args) -> None:  # noqa: A002 - stdlib name
        pass  # the service narrates through telemetry, not stderr

    # -- plumbing ---------------------------------------------------------

    def _reply(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _not_found(self, what: str) -> None:
        self._reply(404, {"error": what})

    # -- GET --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._reply(200, {"ok": True})
            elif parts == ["status"]:
                self._reply(200, self.coordinator.status())
            elif parts == ["workers"]:
                self._reply(200, {"workers": self.coordinator.status()["workers"]})
            elif parts == ["jobs"]:
                self._reply(200, {"jobs": self.manager.list_jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._job_status(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                self._job_result(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                query = parse_qs(url.query)
                follow = query.get("follow", ["0"])[0] not in ("", "0", "false")
                self._job_events(parts[1], follow)
            else:
                self._not_found(f"no route {url.path!r}")
        except KeyError as error:
            self._not_found(str(error.args[0]) if error.args else "unknown job")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-reply

    def _job_status(self, job_id: str) -> None:
        status = self.manager.job_status(job_id)
        status["leases"] = [
            lease
            for lease in self.coordinator.status()["leases"]
            if lease["job"] == job_id
        ]
        self._reply(200, status)

    def _job_result(self, job_id: str) -> None:
        path = self.manager.result_path(job_id)
        if not path.exists():
            self._reply(
                404,
                {
                    "error": f"{job_id} has no result yet",
                    "state": self.manager.job_state(job_id),
                },
            )
            return
        body = path.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _job_events(self, job_id: str, follow: bool) -> None:
        path = self.manager.telemetry_path(job_id)  # KeyError -> 404
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        if follow:
            # The final drain inside follow_events guarantees events
            # written just before the state flipped still stream out.
            events = follow_events(
                path,
                poll_interval=_FOLLOW_POLL,
                stop=lambda: self.manager.job_state(job_id) != "running",
            )
        else:
            events = iter_events(path)
        for event in events:
            data = (json.dumps(event) + "\n").encode("utf-8")
            self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            self.wfile.flush()
        self.wfile.write(b"0\r\n\r\n")

    # -- POST -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            try:
                self.manager.cancel(parts[1])
            except KeyError as error:
                self._not_found(str(error.args[0]) if error.args else "unknown job")
                return
            self._reply(200, self.manager.job_status(parts[1]))
            return
        if parts != ["jobs"]:
            self._not_found(f"no route {url.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
            descriptor = body.get("experiment", body)
            checkpoint_every = int(body.get("checkpoint_every", 1))
            priority = int(body.get("priority", 0))
            experiment = experiment_from_descriptor(descriptor)
            job_id = self.manager.submit(
                experiment, checkpoint_every=checkpoint_every, priority=priority
            )
        except (ValueError, KeyError, TypeError) as error:
            self._reply(400, {"error": f"bad experiment descriptor: {error}"})
            return
        self._reply(201, {"job": job_id, **self.manager.job_status(job_id)})


class ServiceAPI:
    """The threaded HTTP server wrapping one manager + coordinator pair."""

    def __init__(
        self,
        manager: JobManager,
        coordinator: FederationCoordinator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = ThreadingHTTPServer((host, port), _Handler)
        self.server.daemon_threads = True
        self.server.manager = manager  # type: ignore[attr-defined]
        self.server.coordinator = coordinator  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server.server_address[:2]
        return (str(host), int(port))

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="service-api", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
