"""The federation worker: pull a cell, run it checkpointed, report back.

One :class:`FederationWorker` is one OS process's worth of capacity.
It registers with a coordinator (:mod:`repro.service.coordinator`),
keeps a heartbeat thread alive, and loops: request a cell, execute it
under the ordinary run orchestrator (:class:`repro.runs.orchestrator.Run`
in a scratch directory -- the same code path as ``repro run``), ship
every committed checkpoint to the coordinator through the
``on_checkpoint`` seam, and deliver the finished
:class:`~repro.experiments.results.CellRecord`.

Adoption: a lease may arrive with the newest checkpoint a previous
(dead) worker uploaded for the cell.  The blob is written into the
fresh local store before ``execute()``, whose resume path then treats
it exactly like a checkpoint this process wrote itself -- the cell
continues from the dead worker's last committed round, bit-identically
(and when no checkpoint exists, restarting from round 0 is *also*
bit-identical, because cell seeds live in the cell).

Scratch directories are token-suffixed, so a reassigned cell never
collides with a half-written directory from a previous attempt on the
same machine, and are removed once the coordinator acknowledges the
record.
"""

from __future__ import annotations

import os
import shutil
import socket as socketlib
import tempfile
import threading
import time
from pathlib import Path

from repro.experiments.executor import build_cell_simulation
from repro.experiments.results import CellRecord, metrics_from_result
from repro.runs.orchestrator import Run

from .wire import ChannelClosed, MessageChannel, connect_channel

__all__ = ["FederationWorker", "run_worker"]


class FederationWorker:
    """One registered worker process's pull-execute-report loop."""

    def __init__(
        self,
        address: tuple[str, int],
        name: str | None = None,
        workdir: str | Path | None = None,
        max_cells: int | None = None,
        exit_when_idle: bool = False,
        poll_interval: float = 0.5,
        token: str | None = None,
    ) -> None:
        if max_cells is not None and max_cells < 1:
            raise ValueError("max_cells must be >= 1")
        self.address = (str(address[0]), int(address[1]))
        self.name = name or f"{socketlib.gethostname()}-{os.getpid()}"
        self.token = token
        self._explicit_workdir = workdir
        self.max_cells = max_cells
        self.exit_when_idle = exit_when_idle
        self.poll_interval = float(poll_interval)
        self.cells_done = 0
        self._stop = threading.Event()

    # -- lifecycle --------------------------------------------------------

    def run(self) -> int:
        """Serve until drained/stopped; returns the number of cells run."""
        if self._explicit_workdir is not None:
            workdir = Path(self._explicit_workdir)
            workdir.mkdir(parents=True, exist_ok=True)
            cleanup_workdir = False
        else:
            workdir = Path(tempfile.mkdtemp(prefix="repro-worker-"))
            cleanup_workdir = True
        channel = connect_channel(self.address)
        try:
            payload = {"name": self.name, "pid": os.getpid()}
            if self.token is not None:
                payload["token"] = self.token
            channel.send(("register", payload))
            kind, info = channel.recv()
            if kind != "registered":
                detail = f": {info}" if kind == "error" else ""
                raise RuntimeError(f"registration rejected ({kind!r}){detail}")
            self.name = info["name"]
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(channel, float(info["heartbeat_interval"])),
                name=f"heartbeat-{self.name}",
                daemon=True,
            )
            heartbeat.start()
            self._serve(channel, workdir)
            try:
                channel.send(("goodbye",))
            except BrokenPipeError:
                pass
        except (ChannelClosed, BrokenPipeError):
            pass  # coordinator went away; nothing left to serve
        finally:
            self._stop.set()
            channel.close()
            if cleanup_workdir:
                shutil.rmtree(workdir, ignore_errors=True)
        return self.cells_done

    def stop(self) -> None:
        """Ask the serve loop to exit after the cell in flight (thread-safe)."""
        self._stop.set()

    def _heartbeat_loop(self, channel: MessageChannel, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                channel.send(("heartbeat",))
            except BrokenPipeError:
                return

    # -- the pull loop ----------------------------------------------------

    def _serve(self, channel: MessageChannel, workdir: Path) -> None:
        while not self._stop.is_set():
            if self.max_cells is not None and self.cells_done >= self.max_cells:
                return
            channel.send(("request-cell",))
            kind, payload = channel.recv()
            if kind == "lease":
                self._run_cell(channel, workdir, payload)
                self.cells_done += 1
            elif kind == "idle":
                if self.exit_when_idle and payload.get("drained"):
                    return
                time.sleep(payload.get("retry_after", self.poll_interval))
            else:
                raise RuntimeError(f"unexpected coordinator reply {kind!r}")

    def _run_cell(self, channel: MessageChannel, workdir: Path, payload: dict) -> None:
        cell = payload["cell"]
        token = payload["token"]
        cell_dir = workdir / f"{payload['job']}-cell-{cell.index:04d}-{token[:8]}"

        def ship_checkpoint(manifest: dict, blob: bytes) -> None:
            channel.send(("checkpoint", token, manifest, blob))

        try:
            sim = build_cell_simulation(
                cell.policy,
                cell.system,
                cell.rho,
                cell.workload,
                cell.seed,
                cell.rounds,
                cell.warmup,
                cell.backend,
                cell.metrics,
            )
            run = Run.create(
                sim, cell_dir, checkpoint_every=payload["checkpoint_every"]
            )
            adoption = payload.get("checkpoint")
            if adoption is not None:
                manifest, blob = adoption
                run.store.write(
                    int(manifest["round"]),
                    blob,
                    meta={"engine": manifest.get("engine")},
                )
            result = run.execute(on_checkpoint=ship_checkpoint)
            record = CellRecord(
                policy=cell.policy.label,
                system=cell.system.name,
                rho=cell.rho,
                replication=cell.replication,
                workload=cell.workload.name,
                seed=cell.seed,
                metrics=metrics_from_result(result),
                result=result,
            )
            channel.send(("cell-done", token, record))
            channel.recv()  # ack; accepted either way, nothing to do locally
        except (ChannelClosed, BrokenPipeError):
            raise  # the coordinator is gone; unwind the serve loop
        except Exception as error:
            channel.send(
                ("cell-failed", token, f"{type(error).__name__}: {error}")
            )
            channel.recv()
        finally:
            shutil.rmtree(cell_dir, ignore_errors=True)


def run_worker(
    address: tuple[str, int],
    name: str | None = None,
    workdir: str | Path | None = None,
    max_cells: int | None = None,
    exit_when_idle: bool = False,
    poll_interval: float = 0.5,
    token: str | None = None,
) -> int:
    """Build and run one :class:`FederationWorker` (CLI / spawn target)."""
    return FederationWorker(
        address,
        name=name,
        workdir=workdir,
        max_cells=max_cells,
        exit_when_idle=exit_when_idle,
        poll_interval=poll_interval,
        token=token,
    ).run()
