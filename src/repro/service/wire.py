"""Length-prefixed pickle framing over stream sockets.

The service layer speaks exactly one wire format: each message is an
8-byte big-endian payload length followed by that many bytes of pickle.
:class:`MessageChannel` wraps a connected stream socket in the same
``send`` / ``recv`` / ``poll`` / ``close`` surface as
:class:`multiprocessing.connection.Connection`, which is what lets the
sharded kernel's process strategy (:mod:`repro.sim.sharding`) run
unchanged over TCP (:mod:`repro.service.shardsocket`) and the
federation worker protocol reuse the orchestrator's pipe idioms.

A closed peer surfaces as :class:`ChannelClosed`, a subclass of
:exc:`EOFError`, so every existing ``except (EOFError, BrokenPipeError,
OSError)`` clause written for pipes handles sockets too.

Pickle over a socket executes arbitrary code on unpickling: this
transport is for coordinator/worker fleets under one administrative
domain (localhost, a trusted cluster network), never for untrusted
peers.  The HTTP job API is the JSON-only boundary for those.
"""

from __future__ import annotations

import pickle
import select
import socket
import struct
import threading

__all__ = ["ChannelClosed", "MessageChannel", "connect_channel"]

#: Frame header: one unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct(">Q")

#: Refuse frames beyond this size -- a desynchronized or hostile peer
#: would otherwise make us allocate whatever 8 bytes of garbage decode
#: to.  1 GiB comfortably clears the largest checkpoint blobs.
MAX_MESSAGE_BYTES = 1 << 30


class ChannelClosed(EOFError):
    """The peer closed the connection (clean shutdown or death)."""


class MessageChannel:
    """One framed pickle stream over a connected socket.

    ``send`` is serialized by an internal lock so any number of threads
    may write (the worker's heartbeat thread shares the channel with
    its main loop); ``recv`` is likewise locked, but the protocol keeps
    a single reader per channel so replies pair with requests.
    """

    def __init__(self, sock: socket.socket) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (e.g. a socketpair); framing works regardless
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    # -- sending ----------------------------------------------------------

    def send(self, obj) -> None:
        """Pickle ``obj`` and write it as one frame (thread-safe)."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _HEADER.pack(len(payload)) + payload
        with self._send_lock:
            if self._closed:
                raise BrokenPipeError("channel is closed")
            try:
                self._sock.sendall(frame)
            except OSError:
                raise BrokenPipeError("peer went away mid-send") from None

    # -- receiving --------------------------------------------------------

    def _recv_exact(self, count: int) -> bytes:
        buffer = bytearray(count)
        view = memoryview(buffer)
        received = 0
        while received < count:
            try:
                chunk = self._sock.recv_into(view[received:])
            except OSError:
                raise ChannelClosed("connection reset") from None
            if chunk == 0:
                raise ChannelClosed("peer closed the connection")
            received += chunk
        return bytes(buffer)

    def recv(self):
        """Read one frame and unpickle it; :class:`ChannelClosed` on EOF."""
        with self._recv_lock:
            if self._closed:
                raise ChannelClosed("channel is closed")
            (length,) = _HEADER.unpack(self._recv_exact(_HEADER.size))
            if length > MAX_MESSAGE_BYTES:
                raise ChannelClosed(
                    f"oversized frame ({length} bytes): desynchronized peer"
                )
            return pickle.loads(self._recv_exact(length))

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame header is readable within ``timeout`` seconds.

        Exact-read framing never buffers ahead, so socket readability is
        message availability -- the property that makes ``select`` a
        correct ``poll`` here.
        """
        if self._closed:
            return False
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except OSError:
            return False
        return bool(ready)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def __enter__(self) -> "MessageChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect_channel(
    address: tuple[str, int], timeout: float | None = 10.0
) -> MessageChannel:
    """Connect to ``(host, port)`` and wrap the socket in a channel.

    The connect itself honors ``timeout``; the established channel is
    switched back to blocking mode (the protocol's reads are meant to
    park until the peer speaks).
    """
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(None)
    return MessageChannel(sock)
