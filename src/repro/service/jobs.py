"""Job bookkeeping for the coordination service.

A *job* is one submitted :class:`~repro.experiments.grid.Experiment`:
the :class:`JobManager` explodes it into its grid cells, hands cells
out to whoever asks (the federation coordinator), collects finished
:class:`~repro.experiments.results.CellRecord` objects, and -- once
every cell is in -- assembles and persists the exact
:class:`~repro.experiments.results.ExperimentResult` a
:class:`~repro.experiments.executor.SerialExecutor` would have built
(records in grid order; cells are seed-stable, so *which* worker ran
them and in what order cannot matter).

On-disk layout, under the manager's root::

    jobs/job-0001/experiment.json     the submitted grid descriptor
    jobs/job-0001/job.json            job manifest
    jobs/job-0001/telemetry.jsonl     job event stream (the HTTP
                                      metrics endpoint follows this)
    jobs/job-0001/cells/cell-0007/checkpoints/
                                      adoption cache: the newest
                                      checkpoint each worker uploaded
                                      for the cell (CheckpointStore)
    jobs/job-0001/result.json         assembled result, on completion

Job numbering continues from whatever ``jobs/`` already holds, so a
restarted service never reuses an id.  All mutating entry points are
serialized by one internal lock; the manager itself never blocks on
the network (the coordinator does the talking).
"""

from __future__ import annotations

import heapq
import json
import threading
import time
from pathlib import Path

from repro.experiments.grid import Cell, Experiment
from repro.experiments.results import CellRecord, ExperimentResult
from repro.experiments.workload import UnreconstructedFactory
from repro.analysis.persistence import save_experiment
from repro.runs.checkpoint import CheckpointStore
from repro.runs.telemetry import TelemetryWriter

__all__ = ["JobManager", "validate_submittable"]

#: Times a cell may *fail* (raise in a worker) before its job is failed.
#: Worker deaths do not count -- a lost worker is the coordinator's
#: problem, not the cell's.
MAX_CELL_FAILURES = 3


def validate_submittable(experiment: Experiment) -> None:
    """Reject grids that cannot be faithfully executed from a descriptor.

    Workloads rebuilt from JSON carry
    :class:`~repro.experiments.workload.UnreconstructedFactory`
    placeholders for custom arrival/service factories and job-size
    distributions; executing one would raise mid-grid on a worker.
    Fail the submission instead, at the API boundary.
    """
    for workload in experiment.workloads:
        for component in (workload.arrivals, workload.service, workload.job_sizes):
            if isinstance(component, UnreconstructedFactory):
                raise ValueError(
                    f"workload {workload.name!r} carries components that did "
                    f"not survive the JSON round-trip; submit experiments "
                    f"with custom factories in-process, not by descriptor"
                )
    # Federated cells execute under checkpointing runs (leases hand work
    # between workers mid-cell), so a backend outside the checkpoint
    # path cannot be scheduled by the service at all.  Resolve against
    # the registry the experiment's workloads actually use.
    from repro.sim.backends import backend_capabilities
    from repro.sim.sizedbackends import sized_backend_capabilities

    if any(w.job_sizes is None for w in experiment.workloads):
        caps = backend_capabilities(experiment.backend)
    else:
        caps = sized_backend_capabilities(experiment.backend)
    if not caps.supports_checkpoint:
        raise ValueError(
            f"backend {experiment.backend!r} does not support "
            f"checkpoint/resume (capabilities: {caps.describe()}) and "
            f"cannot run under the federated service; execute it "
            f"locally (it is cheap by construction)"
        )


class _Job:
    """One submitted experiment's live state (manager-internal)."""

    def __init__(
        self,
        job_id: str,
        directory: Path,
        experiment: Experiment,
        checkpoint_every: int,
        priority: int = 0,
    ) -> None:
        self.id = job_id
        self.directory = directory
        self.experiment = experiment
        self.checkpoint_every = checkpoint_every
        self.priority = priority
        self.cells: dict[int, Cell] = {c.index: c for c in experiment.cells()}
        self.records: dict[int, CellRecord] = {}
        self.failures: dict[int, int] = {}
        self.state = "running"
        self.error: str | None = None
        self.submitted = time.time()
        self.telemetry = TelemetryWriter(directory / "telemetry.jsonl")

    def cell_store(self, index: int) -> CheckpointStore:
        return CheckpointStore(
            self.directory / "cells" / f"cell-{index:04d}" / "checkpoints"
        )


class JobManager:
    """Experiment descriptors in, cells out, assembled results back."""

    def __init__(self, root: str | Path, keep_checkpoints: int = 1) -> None:
        if keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.keep_checkpoints = keep_checkpoints
        self._lock = threading.RLock()
        self._jobs: dict[str, _Job] = {}
        # Priority queue of (-priority, order, job_id, index): higher
        # priorities first, FIFO submission order within a priority.
        # Requeued cells get decreasing negative orders, which puts them
        # at the front of their priority band (the old deque-appendleft
        # semantics, now per band).
        self._pending: list[tuple[int, int, str, int]] = []
        self._order = 0
        self._front_order = -1
        self._next_number = self._first_free_number()
        self.telemetry = TelemetryWriter(self.root / "service-telemetry.jsonl")

    def _first_free_number(self) -> int:
        taken = 0
        for path in self.jobs_dir.glob("job-*"):
            try:
                taken = max(taken, int(path.name.split("-", 1)[1]))
            except ValueError:
                continue
        return taken + 1

    # -- submission -------------------------------------------------------

    def submit(
        self,
        experiment: Experiment,
        checkpoint_every: int = 1,
        priority: int = 0,
    ) -> str:
        """Register a grid for execution; returns its job id.

        ``checkpoint_every`` is forwarded to every cell's worker-side
        :class:`~repro.runs.orchestrator.Run` (checkpoints every that
        many 256-round blocks -- the failover/adoption grain).
        ``priority`` orders the cell queue: all cells of
        higher-priority jobs are handed out before any lower-priority
        cell; ties dispatch in submission order (the default 0 keeps
        the old pure-FIFO behaviour).
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        validate_submittable(experiment)
        with self._lock:
            job_id = f"job-{self._next_number:04d}"
            self._next_number += 1
            directory = self.jobs_dir / job_id
            directory.mkdir(parents=True)
            (directory / "experiment.json").write_text(
                json.dumps(experiment.describe(), indent=2) + "\n"
            )
            job = _Job(
                job_id,
                directory,
                experiment,
                int(checkpoint_every),
                priority=int(priority),
            )
            (directory / "job.json").write_text(
                json.dumps(
                    {
                        "kind": "service_job",
                        "id": job_id,
                        "cells": len(job.cells),
                        "checkpoint_every": job.checkpoint_every,
                        "priority": job.priority,
                        "submitted": job.submitted,
                    },
                    indent=2,
                )
                + "\n"
            )
            self._jobs[job_id] = job
            for index in sorted(job.cells):
                heapq.heappush(
                    self._pending, (-job.priority, self._order, job_id, index)
                )
                self._order += 1
            job.telemetry.emit(
                "job-submitted",
                job=job_id,
                cells=len(job.cells),
                priority=job.priority,
            )
            self.telemetry.emit(
                "job-submitted",
                job=job_id,
                cells=len(job.cells),
                priority=job.priority,
            )
            return job_id

    # -- the cell queue ---------------------------------------------------

    def next_cell(self) -> tuple[str, Cell, int, tuple[dict, bytes] | None] | None:
        """Pop the next runnable cell: highest priority, then FIFO.

        Returns ``(job_id, cell, checkpoint_every, adoption)`` where
        ``adoption`` is the newest uploaded ``(manifest, blob)``
        checkpoint for the cell (``None`` when it must start from round
        0), or ``None`` when nothing is pending.
        """
        with self._lock:
            while self._pending:
                _, _, job_id, index = heapq.heappop(self._pending)
                job = self._jobs[job_id]
                if job.state != "running" or index in job.records:
                    continue
                adoption = job.cell_store(index).latest_blob()
                return job_id, job.cells[index], job.checkpoint_every, adoption
            return None

    def requeue_cell(self, job_id: str, index: int, failed: bool = False) -> None:
        """Put a revoked or failed cell back at the *front* of the queue.

        Front of its job's priority band, not of the whole queue: a
        reassigned cell is the oldest work at its priority and its
        adoption checkpoint is freshest right now, but it must not
        preempt higher-priority jobs.  ``failed`` marks a genuine
        worker-side exception; after :data:`MAX_CELL_FAILURES` of those
        the whole job fails (a cell that crashes every worker would
        otherwise bounce forever).
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.state != "running" or index in job.records:
                return
            if failed:
                job.failures[index] = job.failures.get(index, 0) + 1
                if job.failures[index] >= MAX_CELL_FAILURES:
                    job.state = "failed"
                    job.error = (
                        f"cell {index} failed {MAX_CELL_FAILURES} times"
                    )
                    job.telemetry.emit(
                        "job-failed", job=job_id, cell=index, error=job.error
                    )
                    self.telemetry.emit("job-failed", job=job_id, error=job.error)
                    return
            heapq.heappush(
                self._pending, (-job.priority, self._front_order, job_id, index)
            )
            self._front_order -= 1

    def cancel(self, job_id: str) -> bool:
        """Stop a running job; returns False when it already left that state.

        Queued cells stay in the heap but :meth:`next_cell` skips
        non-running jobs, so nothing further is leased.  In-flight
        leases drain harmlessly: their results and requeues hit the
        same state guard and are acknowledged-and-dropped.  Unknown
        ids raise ``KeyError`` (the API's 404).
        """
        with self._lock:
            job = self.job(job_id)
            if job.state != "running":
                return False
            job.state = "cancelled"
            job.telemetry.emit("job-cancelled", job=job_id)
            self.telemetry.emit("job-cancelled", job=job_id)
            return True

    def pending_count(self) -> int:
        with self._lock:
            return sum(
                1
                for _, _, job_id, index in self._pending
                if self._jobs[job_id].state == "running"
                and index not in self._jobs[job_id].records
            )

    # -- worker uploads ---------------------------------------------------

    def store_checkpoint(
        self, job_id: str, index: int, manifest: dict, blob: bytes
    ) -> None:
        """Cache a worker-uploaded checkpoint for possible adoption.

        The blob is re-verified by the store's own write path (hash in
        the new manifest); old snapshots are pruned down to the
        retention policy immediately -- the cache exists to hand the
        newest snapshot to the *next* worker, not to archive history.
        """
        with self._lock:
            job = self._jobs[job_id]
            store = job.cell_store(index)
            store.write(
                int(manifest["round"]),
                blob,
                meta={"engine": manifest.get("engine")},
            )
            store.prune(self.keep_checkpoints)

    def record_result(self, job_id: str, index: int, record: CellRecord) -> bool:
        """Accept one finished cell; returns False for duplicates.

        Duplicates are normal under failover: a worker presumed dead
        may still deliver after its cell was reassigned and completed
        elsewhere.  Cells are deterministic, so either copy is correct
        -- first writer wins, later copies are acknowledged-and-dropped.
        On the last record the full :class:`ExperimentResult` is
        assembled in grid order and saved to ``result.json``.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.state != "running" or index in job.records:
                return False
            job.records[index] = record
            job.telemetry.emit(
                "cell-finished",
                job=job_id,
                cell=index,
                policy=record.policy,
                mean=record.metrics.get("mean"),
            )
            if len(job.records) == len(job.cells):
                result = ExperimentResult(
                    experiment=job.experiment,
                    records=tuple(
                        job.records[i] for i in sorted(job.records)
                    ),
                )
                save_experiment(result, job.directory / "result.json")
                job.state = "finished"
                job.telemetry.emit("job-finished", job=job_id, cells=len(job.cells))
                self.telemetry.emit("job-finished", job=job_id)
            return True

    # -- introspection ----------------------------------------------------

    def emit(self, job_id: str, event: str, **fields) -> None:
        """Append an event to a job's telemetry stream (coordinator seam)."""
        with self._lock:
            self._jobs[job_id].telemetry.emit(event, job=job_id, **fields)

    def job(self, job_id: str) -> _Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def telemetry_path(self, job_id: str) -> Path:
        return self.job(job_id).telemetry.path

    def result_path(self, job_id: str) -> Path:
        return self.job(job_id).directory / "result.json"

    def job_state(self, job_id: str) -> str:
        with self._lock:
            return self.job(job_id).state

    def job_status(self, job_id: str) -> dict:
        """JSON-able status snapshot of one job."""
        with self._lock:
            job = self.job(job_id)
            return {
                "id": job.id,
                "state": job.state,
                "cells": len(job.cells),
                "cells_done": len(job.records),
                "checkpoint_every": job.checkpoint_every,
                "priority": job.priority,
                "submitted": job.submitted,
                "directory": str(job.directory),
                "error": job.error,
            }

    def list_jobs(self) -> list[dict]:
        with self._lock:
            return [self.job_status(job_id) for job_id in sorted(self._jobs)]

    def drained(self) -> bool:
        """True when no runnable cell remains queued.

        Leased cells are not the manager's to count -- the coordinator
        combines this with its own outstanding-lease view to decide
        whether idle workers may exit.
        """
        return self.pending_count() == 0

    def close(self) -> None:
        with self._lock:
            for job in self._jobs.values():
                job.telemetry.close()
            self.telemetry.close()
