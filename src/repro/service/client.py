"""Stdlib HTTP client for the job API (``repro submit`` / ``repro status``).

Everything here is :mod:`urllib.request` over the JSON routes of
:mod:`repro.service.api`; nothing imports the service's server side, so
these helpers work from any machine that can reach the API port.
HTTP errors carrying a JSON ``{"error": ...}`` body resurface as
:class:`ServiceError` with that message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Iterator

from repro.analysis.persistence import experiment_result_from_dict
from repro.experiments.results import ExperimentResult

__all__ = [
    "ServiceError",
    "submit_job",
    "cancel_job",
    "job_status",
    "job_result",
    "list_jobs",
    "service_status",
    "iter_job_events",
]


class ServiceError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code


def _request(url: str, body: dict | None = None) -> dict:
    request = urllib.request.Request(url)
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, data=data, timeout=60) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            message = json.loads(error.read()).get("error", error.reason)
        except ValueError:
            message = str(error.reason)
        raise ServiceError(error.code, message) from None


def submit_job(
    url: str, descriptor: dict, checkpoint_every: int = 1, priority: int = 0
) -> dict:
    """POST an experiment descriptor; returns the created job's status."""
    return _request(
        f"{url}/jobs",
        body={
            "experiment": descriptor,
            "checkpoint_every": checkpoint_every,
            "priority": priority,
        },
    )


def cancel_job(url: str, job_id: str) -> dict:
    """Stop a running job; returns its (now cancelled) status."""
    return _request(f"{url}/jobs/{job_id}/cancel", body={})


def job_status(url: str, job_id: str) -> dict:
    return _request(f"{url}/jobs/{job_id}")


def list_jobs(url: str) -> list[dict]:
    return _request(f"{url}/jobs")["jobs"]


def service_status(url: str) -> dict:
    return _request(f"{url}/status")


def job_result(url: str, job_id: str) -> ExperimentResult:
    """Fetch and rebuild a finished job's :class:`ExperimentResult`."""
    return experiment_result_from_dict(_request(f"{url}/jobs/{job_id}/result"))


def iter_job_events(
    url: str, job_id: str, follow: bool = False
) -> Iterator[dict]:
    """Yield a job's telemetry events from the NDJSON endpoint.

    With ``follow=True`` the connection stays open and events stream
    live until the job finishes or fails (:mod:`http.client` de-chunks
    the response transparently, so iteration is just line reading).
    """
    events_url = f"{url}/jobs/{job_id}/events"
    if follow:
        events_url += "?follow=1"
    try:
        with urllib.request.urlopen(events_url, timeout=None if follow else 60) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
    except urllib.error.HTTPError as error:
        try:
            message = json.loads(error.read()).get("error", error.reason)
        except ValueError:
            message = str(error.reason)
        raise ServiceError(error.code, message) from None
