"""``sharded:N:socket`` -- the shard-kernel transport strategy over TCP.

Same execution model as the ``process`` strategy (one worker process
per shard, coordinator feeds 256-round blocks through an async
pipeline, exact snapshot/restore), but the pipes are replaced by
framed-pickle TCP channels (:mod:`repro.service.wire`).  The strategy
subclasses :class:`~repro.sim.sharding.MultiprocessShardStrategy` at
its transport seam: :meth:`start` stands up a loopback listener, spawns
the workers, performs a token handshake, and hands the accepted
channels to the inherited ``_start_pipeline`` -- feeders, snapshot
protocol, failure surfacing and teardown all run unchanged because
:class:`~repro.service.wire.MessageChannel` mirrors the ``Connection``
surface and :class:`~repro.service.wire.ChannelClosed` is an
:exc:`EOFError`.

Worker processes here still spawn locally (the registry grammar cannot
describe a remote fleet); what the strategy proves -- and what the
tests pin -- is that the *shard protocol itself* survives a real
network transport bit-identically.  Remote distribution happens one
level up, at grid-cell granularity, via the federation worker protocol
(:mod:`repro.service.coordinator`).

Registered lazily: :func:`repro.sim.sharding.resolve_shard_strategy`
imports this module the first time ``socket`` is named, so
``repro.sim`` never depends on ``repro.service``.
"""

from __future__ import annotations

import multiprocessing
import secrets
import socket
from typing import Sequence

from repro.sim.sharding import (
    MultiprocessShardStrategy,
    ShardInit,
    _shard_worker_main,
    register_shard_strategy,
)

from .wire import MessageChannel, connect_channel

__all__ = ["SocketShardStrategy"]

#: Seconds a strategy waits for its own just-spawned workers to call
#: back before declaring the start failed.
_HANDSHAKE_TIMEOUT = 30.0


def _socket_shard_main(
    address: tuple[str, int], token: str, init: ShardInit
) -> None:
    """Worker entry point: dial home, authenticate, run the shard loop."""
    channel = connect_channel(address)
    channel.send(("hello", token, init.index))
    _shard_worker_main(channel, init)


@register_shard_strategy
class SocketShardStrategy(MultiprocessShardStrategy):
    """One worker process per shard, fed blocks over framed TCP channels."""

    name = "socket"

    def start(
        self,
        inits: Sequence[ShardInit],
        states: Sequence[dict] | None = None,
    ) -> None:
        context = multiprocessing.get_context()
        self._inits = list(inits)
        self._processes = []
        conns: list[MessageChannel | None] = [None] * len(self._inits)
        token = secrets.token_hex(16)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(len(self._inits))
            listener.settimeout(_HANDSHAKE_TIMEOUT)
            address = listener.getsockname()
            for init in inits:
                process = context.Process(
                    target=_socket_shard_main,
                    args=(address, token, init),
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
            # Accept order is scheduling-dependent; the hello carries the
            # shard index, so channels land in shard order regardless.
            for _ in self._inits:
                try:
                    sock, _peer = listener.accept()
                except socket.timeout:
                    raise RuntimeError(
                        "socket shard worker failed to connect back "
                        f"within {_HANDSHAKE_TIMEOUT:.0f}s"
                    ) from None
                channel = MessageChannel(sock)
                kind, peer_token, shard = channel.recv()
                if kind != "hello" or peer_token != token:
                    channel.close()
                    raise RuntimeError(
                        "unexpected peer on the shard listener "
                        "(bad handshake token)"
                    )
                if not 0 <= shard < len(conns) or conns[shard] is not None:
                    channel.close()
                    raise RuntimeError(f"invalid shard handshake index {shard}")
                conns[shard] = channel
        except BaseException:
            self._conns = [c for c in conns if c is not None]
            self.close()
            raise
        finally:
            listener.close()
        self._conns = conns
        self._start_pipeline(states)
