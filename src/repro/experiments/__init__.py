"""Declarative experiment API: grids, pluggable workloads, parallel execution.

The paper's evaluation protocol is a grid -- policies x systems x
offered loads x replications (x workloads) -- and this package exposes
it as exactly that:

>>> from repro.experiments import Experiment, WorkloadSpec
>>> from repro.workloads.scenarios import SystemSpec
>>> exp = Experiment(
...     policies=["scd", "jsq", "sed"],
...     systems=SystemSpec(num_servers=20, num_dispatchers=4),
...     loads=[0.7, 0.9],
...     replications=2,
...     rounds=500,
... )
>>> result = exp.run(workers=1)        # workers>1 uses a process pool
>>> result.metric("mean", policy="scd", rho=0.9, replication=0) > 0
True

The default :class:`WorkloadSpec` is the paper's Poisson+geometric
workload and reproduces the legacy runner bit-for-bit; alternative
workloads (skewed dispatcher traffic, correlated bursts, sized jobs,
arbitrary arrival/service factories) plug into the same grid.
"""

from .executor import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    execute_cell,
    resolve_executor,
    simulate_cell,
)
from .grid import Cell, Experiment, PolicySpec, REPLICATION_SEED_STRIDE
from .results import CellRecord, ExperimentResult, metrics_from_result
from .workload import (
    PAPER_WORKLOAD_NAME,
    BurstyArrivalFactory,
    TraceArrivalFactory,
    TraceServiceFactory,
    WorkloadSpec,
)

__all__ = [
    "Experiment",
    "PolicySpec",
    "Cell",
    "WorkloadSpec",
    "PAPER_WORKLOAD_NAME",
    "BurstyArrivalFactory",
    "TraceArrivalFactory",
    "TraceServiceFactory",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "resolve_executor",
    "simulate_cell",
    "execute_cell",
    "CellRecord",
    "ExperimentResult",
    "metrics_from_result",
    "REPLICATION_SEED_STRIDE",
]
