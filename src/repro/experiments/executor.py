"""Execution backends for experiment grids.

Two backends behind one tiny interface: :class:`SerialExecutor` runs
cells in-process in grid order; :class:`ProcessPoolExecutor` fans cells
out over worker processes for near-linear wall-clock speedups on
multi-cell sweeps.  Because every cell carries its own
workload-coordinate seed (see :mod:`repro.experiments.grid`), scheduling
is seed-stable: the two backends produce *identical* records regardless
of worker count or completion order, and records always come back sorted
in grid order.

The cell-execution function itself (:func:`execute_cell`) is module-level
and takes only picklable arguments, which is what lets the process pool
ship work with the standard :mod:`concurrent.futures` machinery.
"""

from __future__ import annotations

import concurrent.futures
import os
from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.policies.base import Policy
from repro.sim.engine import Simulation, SimulationConfig, SimulationResult
from repro.sim.sized import SizedSimulation, SizedSimulationResult
from repro.workloads.scenarios import SystemSpec

from .grid import Cell, Experiment, PolicySpec
from .results import CellRecord, metrics_from_result
from .workload import WorkloadSpec

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "resolve_executor",
    "build_cell_simulation",
    "simulate_cell",
    "execute_cell",
]

ProgressCallback = Callable[[int, int], None]


def build_cell_simulation(
    policy: "str | PolicySpec | Policy",
    system: SystemSpec,
    rho: float,
    workload: WorkloadSpec,
    seed: int,
    rounds: int,
    warmup: int = 0,
    backend: str = "reference",
    probes: tuple = (),
) -> Simulation | SizedSimulation:
    """Build (but do not run) the simulation at resolved coordinates.

    The construction half of :func:`simulate_cell`: builds the
    workload's processes, binds a fresh policy, and returns the
    appropriate engine object (sized when the workload carries a
    job-size distribution) ready for ``.run()``.  The run-lifecycle
    orchestrator (:mod:`repro.runs`) uses this seam to drive the
    simulation under a checkpointing controller instead of a plain run.
    """
    rates = system.rates()
    policy_obj = policy if isinstance(policy, Policy) else PolicySpec.of(policy).build()
    arrivals = workload.build_arrivals(system, rho)
    service = workload.build_service(system)
    if workload.job_sizes is not None:
        return SizedSimulation(
            rates=rates,
            policy=policy_obj,
            arrivals=arrivals,
            service=service,
            sizes=workload.job_sizes,
            rounds=rounds,
            seed=seed,
            backend=backend,
            warmup=warmup,
            probes=probes,
            scenario=workload.scenario,
        )
    return Simulation(
        rates=rates,
        policy=policy_obj,
        arrivals=arrivals,
        service=service,
        config=SimulationConfig(
            rounds=rounds,
            warmup=warmup,
            seed=seed,
            backend=backend,
            probes=probes,
            scenario=workload.scenario,
        ),
    )


def simulate_cell(
    policy: "str | PolicySpec | Policy",
    system: SystemSpec,
    rho: float,
    workload: WorkloadSpec,
    seed: int,
    rounds: int,
    warmup: int = 0,
    backend: str = "reference",
    probes: tuple = (),
) -> SimulationResult | SizedSimulationResult:
    """Run one simulation at fully resolved coordinates.

    The shared low-level path of both executors and the legacy
    ``run_simulation`` wrapper: :func:`build_cell_simulation` plus the
    run.  ``backend`` names the round kernel in the engine's own
    registry -- :mod:`repro.sim.backends` for unsized workloads,
    :mod:`repro.sim.sizedbackends` for sized ones; unknown names fail
    with that registry's error message.  ``probes`` are extra
    observability probes (names or ``ProbeSpec``) appended to the
    default collectors in either engine.
    """
    return build_cell_simulation(
        policy, system, rho, workload, seed, rounds, warmup, backend, probes
    ).run()


def execute_cell(cell: Cell, keep_results: bool = True) -> CellRecord:
    """Run one grid cell and package it as a record (worker entry point)."""
    result = simulate_cell(
        cell.policy,
        cell.system,
        cell.rho,
        cell.workload,
        cell.seed,
        cell.rounds,
        cell.warmup,
        cell.backend,
        cell.metrics,
    )
    return CellRecord(
        policy=cell.policy.label,
        system=cell.system.name,
        rho=cell.rho,
        replication=cell.replication,
        workload=cell.workload.name,
        seed=cell.seed,
        metrics=metrics_from_result(result),
        result=result if keep_results else None,
    )


class Executor(ABC):
    """Strategy for running all cells of an experiment."""

    @abstractmethod
    def run(
        self,
        experiment: Experiment,
        keep_results: bool = True,
        progress: ProgressCallback | None = None,
    ) -> Sequence[CellRecord]:
        """Execute every cell; records are returned in grid order."""


class SerialExecutor(Executor):
    """In-process execution in grid order (the reference backend)."""

    def run(
        self,
        experiment: Experiment,
        keep_results: bool = True,
        progress: ProgressCallback | None = None,
    ) -> list[CellRecord]:
        total = experiment.size
        records = []
        for cell in experiment.cells():
            records.append(execute_cell(cell, keep_results=keep_results))
            if progress is not None:
                progress(len(records), total)
        return records


class ProcessPoolExecutor(Executor):
    """Fan cells out over worker processes.

    Seed-stable by construction: seeds live in the cells, so neither the
    number of workers nor completion order affects any simulation, and
    results are re-sorted into grid order before returning.  Worker
    count defaults to the machine's CPU count.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or os.cpu_count() or 1

    def run(
        self,
        experiment: Experiment,
        keep_results: bool = True,
        progress: ProgressCallback | None = None,
    ) -> list[CellRecord]:
        cells = list(experiment.cells())
        total = len(cells)
        by_index: dict[int, CellRecord] = {}
        with concurrent.futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(execute_cell, cell, keep_results): cell.index
                for cell in cells
            }
            for future in concurrent.futures.as_completed(futures):
                by_index[futures[future]] = future.result()
                if progress is not None:
                    progress(len(by_index), total)
        return [by_index[i] for i in range(total)]


def resolve_executor(
    executor: "Executor | str | None" = None, workers: int | None = None
) -> Executor:
    """Pick a backend from an instance, a name, or a worker count.

    ``None`` means serial unless ``workers`` asks for more than one
    process; strings accept ``"serial"`` and ``"process"``.
    """
    if isinstance(executor, Executor):
        if workers is not None:
            raise ValueError("pass workers to the executor constructor instead")
        return executor
    if executor is None:
        if workers is not None and workers > 1:
            return ProcessPoolExecutor(workers=workers)
        return SerialExecutor()
    name = executor.lower()
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessPoolExecutor(workers=workers)
    raise ValueError(f"unknown executor {executor!r}; use 'serial' or 'process'")
