"""Pluggable workload specifications for declarative experiments.

A :class:`WorkloadSpec` bundles everything about an experiment cell that
is *workload* rather than *policy or system*: the arrival process, the
service process, how traffic splits over dispatchers, and (optionally) a
job-size distribution.  The default spec is exactly the paper's
evaluation workload -- symmetric Poisson arrivals and geometric service
-- and experiments run with it reproduce the legacy
:func:`repro.analysis.runner.run_simulation` results bit-for-bit: the
workload seed components it contributes are empty, so the derived seed
matches the historical ``derive_seed(base, system.name, round(rho*1e4))``
scheme.

Custom workloads contribute their ``name`` to the seed derivation, which
keeps realizations (a) reproducible, (b) common across policies at the
same coordinates, and (c) distinct between workloads.

Everything here must be picklable so the process-pool executor can ship
cells to workers: factories are small frozen dataclasses with
``__call__``, never lambdas.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.arrivals import (
    ArrivalProcess,
    ModulatedPoissonArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.sim.service import GeometricService, ServiceProcess, TraceService
from repro.sim.sized import JobSizeDistribution
from repro.workloads.scenarios import SystemSpec

__all__ = [
    "WorkloadSpec",
    "PAPER_WORKLOAD_NAME",
    "BurstyArrivalFactory",
    "TraceArrivalFactory",
    "TraceServiceFactory",
    "UnreconstructedFactory",
    "register_workload_factory",
    "registered_workload_factories",
    "workload_factory_from_descriptor",
]

#: Name of the paper's default workload; the only name that contributes
#: no seed components (legacy seed compatibility).
PAPER_WORKLOAD_NAME = "paper"

#: Builds an arrival process for a (system, offered load) coordinate.
ArrivalFactory = Callable[[SystemSpec, float], ArrivalProcess]
#: Builds a service process for a system.
ServiceFactory = Callable[[SystemSpec], ServiceProcess]


#: Wire-name -> factory class; populated by :func:`register_workload_factory`.
_WORKLOAD_FACTORIES: dict[str, type] = {}
#: Factory class -> wire name (the inverse map, used by ``describe``).
_FACTORY_NAMES: dict[type, str] = {}


def register_workload_factory(name: str):
    """Class decorator giving a workload component factory a wire name.

    Registered factories serialize in experiment descriptors as
    ``{"factory": NAME, "kwargs": {...}}`` (their dataclass fields are
    the kwargs) instead of a lossy ``repr``, and reconstruct exactly via
    :func:`workload_factory_from_descriptor` -- so custom workloads
    survive the JSON round-trip through ``--save`` files and the service
    job API (``repro submit --workload bursty:3``).
    """

    def decorate(cls: type) -> type:
        key = name.lower()
        if not dataclasses.is_dataclass(cls):
            raise TypeError(
                f"workload factory {cls.__name__} must be a dataclass "
                f"(its fields are the wire kwargs)"
            )
        if key in _WORKLOAD_FACTORIES:
            raise ValueError(f"duplicate workload factory name {name!r}")
        _WORKLOAD_FACTORIES[key] = cls
        _FACTORY_NAMES[cls] = key
        return cls

    return decorate


def registered_workload_factories() -> tuple[str, ...]:
    """Sorted wire names of every registered workload factory."""
    return tuple(sorted(_WORKLOAD_FACTORIES))


def _freeze(value):
    """JSON arrays -> tuples, recursively (frozen-dataclass fields)."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def workload_factory_from_descriptor(descriptor: dict):
    """Rebuild a registered factory from its wire descriptor.

    The inverse of the registry branch of :meth:`WorkloadSpec.describe`;
    raises ``ValueError`` for unknown names or mismatched kwargs.
    """
    name = str(descriptor.get("factory", "")).lower()
    cls = _WORKLOAD_FACTORIES.get(name)
    if cls is None:
        known = ", ".join(registered_workload_factories()) or "none"
        raise ValueError(
            f"unknown workload factory {descriptor.get('factory')!r} "
            f"(registered: {known})"
        )
    kwargs = {
        key: _freeze(value)
        for key, value in dict(descriptor.get("kwargs", {})).items()
    }
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise ValueError(
            f"bad parameters for workload factory {name!r}: {error}"
        )


def _describe_component(factory) -> "dict | str":
    """Wire form of an arrival/service factory.

    A registry descriptor when its class is registered (round-trips
    exactly), otherwise its ``repr`` (lossy; reloads as
    :class:`UnreconstructedFactory`).
    """
    name = _FACTORY_NAMES.get(type(factory))
    if name is None:
        return repr(factory)
    return {"factory": name, "kwargs": dataclasses.asdict(factory)}


@dataclass(frozen=True)
class UnreconstructedFactory:
    """Placeholder for a custom component lost in a JSON round-trip.

    Saved experiments record only a repr of custom arrival/service
    factories and job-size distributions; a loaded workload that had one
    gets this placeholder so re-*running* it fails loudly instead of
    silently simulating the paper-default workload under the old name.
    """

    workload: str

    def __call__(self, *args, **kwargs):
        raise ValueError(
            f"workload {self.workload!r} was loaded from JSON, which does "
            f"not preserve custom factories/job sizes; re-running it "
            f"requires the original WorkloadSpec object"
        )


@register_workload_factory("bursty")
@dataclass(frozen=True)
class BurstyArrivalFactory:
    """Markov-modulated Poisson arrivals at equal *average* load.

    The calm/surge rates are chosen so their 50/50 stationary mixture
    matches the symmetric Poisson rates at the cell's offered load:
    ``calm = 2 * lambda / (1 + surge_factor)``, ``surge = surge_factor *
    calm``.  The phase is shared by all dispatchers (correlated surges,
    the hard case for herding).
    """

    surge_factor: float = 3.0
    switch_prob: float = 0.05

    def __call__(self, system: SystemSpec, rho: float) -> ArrivalProcess:
        mean_lambdas = system.lambdas(rho)
        calm = 2.0 * mean_lambdas / (1.0 + self.surge_factor)
        return ModulatedPoissonArrivals(
            calm, self.surge_factor * calm, switch_prob=self.switch_prob
        )


@register_workload_factory("trace_arrivals")
@dataclass(frozen=True)
class TraceArrivalFactory:
    """Replays a fixed ``(rounds, dispatchers)`` batch trace."""

    trace: tuple[tuple[int, ...], ...]

    def __call__(self, system: SystemSpec, rho: float) -> ArrivalProcess:
        trace = np.asarray(self.trace, dtype=np.int64)
        if trace.shape[1] != system.num_dispatchers:
            raise ValueError(
                f"trace has {trace.shape[1]} dispatcher columns but the "
                f"system has {system.num_dispatchers} dispatchers"
            )
        return TraceArrivals(trace)


@register_workload_factory("trace_service")
@dataclass(frozen=True)
class TraceServiceFactory:
    """Replays a fixed ``(rounds, servers)`` capacity trace."""

    trace: tuple[tuple[int, ...], ...]

    def __call__(self, system: SystemSpec) -> ServiceProcess:
        trace = np.asarray(self.trace, dtype=np.int64)
        if trace.shape[1] != system.num_servers:
            raise ValueError(
                f"trace has {trace.shape[1]} server columns but the "
                f"system has {system.num_servers} servers"
            )
        return TraceService(trace)


@dataclass(frozen=True)
class WorkloadSpec:
    """One pluggable workload of an experiment grid.

    Attributes
    ----------
    name:
        Workload identity.  Enters the seed derivation for every name
        except :data:`PAPER_WORKLOAD_NAME`, so distinct workloads see
        distinct (but reproducible) realizations, while the default
        remains bit-compatible with the legacy runner.
    arrivals:
        Optional arrival-process factory ``(system, rho) -> process``;
        overrides the default symmetric Poisson arrivals.  Must be
        picklable for the process-pool executor (use a small class, not
        a lambda).
    service:
        Optional service-process factory ``(system) -> process``;
        overrides the default geometric service at the system's rates.
    skew:
        Geometric dispatcher-skew factor: dispatcher ``d`` receives
        traffic proportional to ``skew ** d`` (1.0 = the paper's
        symmetric split).  Applies to the default Poisson arrivals only.
    dispatcher_weights:
        Explicit traffic-split weights, one per dispatcher; mutually
        exclusive with ``skew`` and checked against each system.
    job_sizes:
        Optional job-size distribution.  When set, cells run the
        sized-job engine (:class:`repro.sim.sized.SizedSimulation`)
        with unit-denominated queues.
    scenario:
        Optional scenario spec string ``NAME[:k=v,...]`` (see
        :mod:`repro.scenarios`): nonstationary arrival modulation
        and/or server churn, applied by the engine at simulation
        construction.  Survives JSON round-trips verbatim, so scenario
        experiments can be re-run from saved descriptors.
    """

    name: str = PAPER_WORKLOAD_NAME
    arrivals: ArrivalFactory | None = None
    service: ServiceFactory | None = None
    skew: float | None = None
    dispatcher_weights: tuple[float, ...] | None = None
    job_sizes: JobSizeDistribution | None = None
    scenario: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if self.scenario is not None:
            # Fail at grid-definition time, not inside a worker process.
            from repro.scenarios import make_scenario

            make_scenario(self.scenario)
        if self.skew is not None and self.dispatcher_weights is not None:
            raise ValueError("skew and dispatcher_weights are mutually exclusive")
        if self.skew is not None and self.skew <= 0:
            raise ValueError("skew must be positive")
        if self.dispatcher_weights is not None:
            object.__setattr__(
                self, "dispatcher_weights", tuple(float(w) for w in self.dispatcher_weights)
            )
        # A renamed but otherwise-default spec is allowed: it requests a
        # fresh workload realization on purpose (the name seeds it).

    # -- identity ----------------------------------------------------------

    @property
    def is_paper_default(self) -> bool:
        """True when every component is the paper's evaluation default."""
        return (
            self.arrivals is None
            and self.service is None
            and (self.skew is None or self.skew == 1.0)
            and self.dispatcher_weights is None
            and self.job_sizes is None
            and self.scenario is None
        )

    def seed_components(self) -> tuple[str, ...]:
        """Extra coordinates this workload contributes to seed derivation.

        Empty for the paper default so legacy seeds are reproduced.
        """
        components: tuple[str, ...] = ()
        if self.name != PAPER_WORKLOAD_NAME:
            components += (self.name,)
        if self.scenario is not None:
            components += (self.scenario,)
        return components

    # -- constructors ------------------------------------------------------

    @classmethod
    def paper(cls) -> "WorkloadSpec":
        """The paper's workload: symmetric Poisson + geometric service."""
        return cls()

    @classmethod
    def skewed(cls, skew: float, name: str | None = None) -> "WorkloadSpec":
        """Geometrically skewed dispatcher traffic at equal total load."""
        return cls(name=name or f"skew{skew:g}", skew=float(skew))

    @classmethod
    def bursty(
        cls,
        surge_factor: float = 3.0,
        switch_prob: float = 0.05,
        name: str | None = None,
    ) -> "WorkloadSpec":
        """Correlated calm/surge arrivals at equal average load."""
        return cls(
            name=name or f"bursty{surge_factor:g}",
            arrivals=BurstyArrivalFactory(surge_factor, switch_prob),
        )

    @classmethod
    def sized(cls, job_sizes: JobSizeDistribution, name: str | None = None) -> "WorkloadSpec":
        """Jobs carry work-unit sizes; cells run the sized engine."""
        return cls(name=name or "sized", job_sizes=job_sizes)

    # -- builders ----------------------------------------------------------

    def weights_for(self, system: SystemSpec) -> np.ndarray | None:
        """Dispatcher traffic-split weights for ``system`` (None = even)."""
        if self.dispatcher_weights is not None:
            weights = np.asarray(self.dispatcher_weights, dtype=np.float64)
            if weights.shape != (system.num_dispatchers,):
                raise ValueError(
                    f"workload {self.name!r} has {weights.size} dispatcher "
                    f"weights but system {system.name} has "
                    f"{system.num_dispatchers} dispatchers"
                )
            return weights
        if self.skew is not None and self.skew != 1.0:
            return self.skew ** np.arange(system.num_dispatchers, dtype=np.float64)
        return None

    def build_arrivals(self, system: SystemSpec, rho: float) -> ArrivalProcess:
        """Instantiate this workload's arrival process for one cell."""
        if self.arrivals is not None:
            return self.arrivals(system, rho)
        return PoissonArrivals(system.lambdas(rho, self.weights_for(system)))

    def build_service(self, system: SystemSpec) -> ServiceProcess:
        """Instantiate this workload's service process for one cell."""
        if self.service is not None:
            return self.service(system)
        return GeometricService(system.rates())

    def describe(self) -> dict:
        """JSON-able descriptor.

        Registered arrival/service factories (see
        :func:`register_workload_factory`) serialize as exact
        ``{"factory": ..., "kwargs": ...}`` descriptors; unregistered
        ones and job-size distributions reduce to their (lossy) repr.
        """
        out: dict = {"name": self.name}
        if self.skew is not None:
            out["skew"] = self.skew
        if self.dispatcher_weights is not None:
            out["dispatcher_weights"] = list(self.dispatcher_weights)
        if self.arrivals is not None:
            out["arrivals"] = _describe_component(self.arrivals)
        if self.service is not None:
            out["service"] = _describe_component(self.service)
        if self.job_sizes is not None:
            out["job_sizes"] = repr(self.job_sizes)
        if self.scenario is not None:
            out["scenario"] = self.scenario
        return out
