"""Tidy experiment results: per-cell records with filtering and aggregation.

Each executed cell becomes a :class:`CellRecord` -- flat coordinates
(policy label, system name, load, replication, workload name, seed) plus
a metrics mapping, optionally carrying the full simulation result.
Records compare by coordinates and metrics only, which is what makes
"the process pool returns *identical* records to the serial executor" a
directly assertable property.

:class:`ExperimentResult` is the container: filter by any coordinate,
aggregate over replications, convert to legacy ``SweepResult`` panels,
or round-trip through JSON via :mod:`repro.analysis.persistence`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.sim.engine import SimulationResult
from repro.sim.probes import DEFAULT_PROBE_LABELS
from repro.sim.sized import SizedSimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

    from repro.analysis.runner import SweepResult

    from .grid import Experiment

__all__ = ["CellRecord", "ExperimentResult", "metrics_from_result"]

#: Tail levels reported in every record's metrics.
_PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


def metrics_from_result(
    result: SimulationResult | SizedSimulationResult,
) -> dict[str, float]:
    """Flat metrics mapping for either engine's result.

    The legacy keys (mean/percentiles/accounting) come from the default
    collectors exactly as they always did; every *extra* probe the run
    carried contributes its summary under namespaced ``<label>.<key>``
    keys, which is what makes record metrics an open dict.
    """
    hist = result.histogram
    metrics = {"mean": hist.mean()}
    metrics.update(
        {label: float(hist.percentile(q)) for label, q in _PERCENTILES}
    )
    metrics["max"] = float(hist.max_response_time)
    if isinstance(result, SimulationResult):
        metrics["arrived"] = float(result.total_arrived)
        metrics["departed"] = float(result.total_departed)
        metrics["queued"] = float(result.final_queued)
    else:
        metrics["jobs"] = float(result.total_jobs)
        metrics["arrived"] = float(result.total_units_arrived)
        metrics["departed"] = float(result.total_units_departed)
        metrics["queued"] = float(result.final_units_queued)
    for label, probe in result.probes.items():
        if label in DEFAULT_PROBE_LABELS:
            continue
        for key, value in probe.summary().items():
            metrics[f"{label}.{key}"] = float(value)
    return metrics


@dataclass(frozen=True)
class CellRecord:
    """One executed grid cell in tidy (long) form.

    ``result`` is excluded from equality: two records are equal when
    their coordinates and measured metrics agree, whichever executor
    produced them and whether or not the heavy payload was kept.
    """

    policy: str
    system: str
    rho: float
    replication: int
    workload: str
    seed: int
    metrics: Mapping[str, float]
    result: SimulationResult | SizedSimulationResult | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def mean_response_time(self) -> float:
        """Shorthand for the headline metric."""
        return self.metrics["mean"]

    def as_row(self) -> dict:
        """Flat dict row (coordinates + metrics) for tables/dataframes."""
        row = {
            "policy": self.policy,
            "system": self.system,
            "rho": self.rho,
            "replication": self.replication,
            "workload": self.workload,
            "seed": self.seed,
        }
        row.update(self.metrics)
        return row


def _matches(record: CellRecord, coords: dict) -> bool:
    for key, wanted in coords.items():
        if wanted is None:
            continue
        value = getattr(record, key)
        if isinstance(wanted, (set, frozenset, list, tuple)):
            if value not in wanted:
                return False
        elif key == "rho":
            if not math.isclose(value, wanted, rel_tol=0.0, abs_tol=1e-12):
                return False
        elif value != wanted:
            return False
    return True


@dataclass(frozen=True)
class ExperimentResult:
    """All records of one experiment run, in grid order."""

    experiment: "Experiment"
    records: tuple[CellRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CellRecord]:
        return iter(self.records)

    # -- selection ---------------------------------------------------------

    def filter(
        self,
        policy: str | Iterable[str] | None = None,
        system: str | Iterable[str] | None = None,
        rho: float | Iterable[float] | None = None,
        replication: int | Iterable[int] | None = None,
        workload: str | Iterable[str] | None = None,
    ) -> "ExperimentResult":
        """A view restricted to the matching coordinates.

        Each argument accepts a single value or a collection of allowed
        values; None leaves the axis unrestricted.
        """
        coords = {
            "policy": policy,
            "system": system,
            "rho": rho,
            "replication": replication,
            "workload": workload,
        }
        kept = tuple(r for r in self.records if _matches(r, coords))
        return replace(self, records=kept)

    def only(self, **coords) -> CellRecord:
        """The unique record at the given coordinates (error otherwise)."""
        matches = self.filter(**coords).records
        if len(matches) != 1:
            raise ValueError(
                f"expected exactly one record at {coords}, found {len(matches)}"
            )
        return matches[0]

    def metric(self, name: str = "mean", **coords) -> float:
        """One metric of the unique record at the given coordinates."""
        return float(self.only(**coords).metrics[name])

    # -- aggregation -------------------------------------------------------

    def aggregate(
        self, metric: str = "mean"
    ) -> dict[tuple[str, str, float, str], dict[str, float]]:
        """Collapse replications: per (policy, system, rho, workload) cell,
        the mean, sample std-dev, and standard error of ``metric``.
        """
        groups: dict[tuple[str, str, float, str], list[float]] = {}
        for record in self.records:
            key = (record.policy, record.system, record.rho, record.workload)
            groups.setdefault(key, []).append(float(record.metrics[metric]))
        out = {}
        for key, values in groups.items():
            n = len(values)
            mean = sum(values) / n
            if n > 1:
                var = sum((v - mean) ** 2 for v in values) / (n - 1)
                std = math.sqrt(var)
                stderr = std / math.sqrt(n)
            else:
                std = stderr = 0.0
            out[key] = {"mean": mean, "std": std, "stderr": stderr, "n": float(n)}
        return out

    def best_policy_at(
        self, rho: float, metric: str = "mean", **coords
    ) -> str:
        """Policy with the lowest replication-averaged metric at ``rho``."""
        cells = self.filter(rho=rho, **coords).aggregate(metric)
        if not cells:
            raise ValueError(f"no records at rho={rho} with {coords}")
        best = min(cells.items(), key=lambda item: item[1]["mean"])
        return best[0][0]

    def as_rows(self) -> list[dict]:
        """Tidy long-form rows (ready for csv/pandas)."""
        return [record.as_row() for record in self.records]

    # -- legacy bridges ----------------------------------------------------

    def to_sweep(
        self, system: str | None = None, workload: str | None = None
    ) -> "SweepResult":
        """One legacy :class:`SweepResult` panel (means over replications).

        ``system``/``workload`` select the panel when the grid has more
        than one; with a single system and workload they may be omitted.
        """
        from repro.analysis.runner import SweepResult

        systems = {s.name: s for s in self.experiment.systems}
        if system is None:
            if len(systems) != 1:
                raise ValueError("grid has several systems; pass system=...")
            system = next(iter(systems))
        if workload is None:
            names = [w.name for w in self.experiment.workloads]
            if len(names) != 1:
                raise ValueError("grid has several workloads; pass workload=...")
            workload = names[0]
        view = self.filter(system=system, workload=workload)
        aggregated = view.aggregate("mean")
        policies = tuple(p.label for p in self.experiment.policies)
        means: dict[str, dict[float, float]] = {p: {} for p in policies}
        for (policy, _system, rho, _workload), stats in aggregated.items():
            means[policy][rho] = stats["mean"]
        return SweepResult(
            system=systems[system],
            loads=self.experiment.loads,
            policies=policies,
            means=means,
        )

    # -- persistence -------------------------------------------------------

    def save(self, path: "str | Path") -> "Path":
        """Write this result as JSON (see ``analysis.persistence``)."""
        from repro.analysis.persistence import save_experiment

        return save_experiment(self, path)

    @classmethod
    def load(cls, path: "str | Path") -> "ExperimentResult":
        """Read a result written by :meth:`save`."""
        from repro.analysis.persistence import load_experiment

        return load_experiment(path)
