"""The declarative experiment grid: policies x systems x loads x reps x workloads.

An :class:`Experiment` is an immutable description of the paper's
evaluation protocol generalized along every axis: which policies, on
which systems, at which offered loads, replicated how many times, under
which workloads.  ``Experiment.cells()`` enumerates the grid in a fixed
deterministic order and assigns each cell a seed derived *only* from its
workload coordinates -- policies compared at the same coordinates see
identical arrival/departure realizations (the paper's common-seed
methodology), and the seed of a cell never depends on which executor
runs it or in what order (seed-stable scheduling).

Seed scheme (bit-compatible with the legacy runner):

    base   = base_seed + 1_000_003 * replication          # as replicated_runs
    seed   = derive_seed(base, *workload.seed_components(),
                         system.name, round(rho * 10_000))

The paper-default workload contributes no components, so replication 0
reproduces ``run_simulation``'s historical seeds exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.policies.base import Policy, make_policy
from repro.sim.probes import DEFAULT_PROBE_LABELS, Probe, ProbeSpec
from repro.sim.seeding import derive_seed
from repro.workloads.scenarios import SystemSpec

from .workload import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor imports grid)
    from .executor import Executor
    from .results import ExperimentResult

__all__ = ["PolicySpec", "Cell", "Experiment", "REPLICATION_SEED_STRIDE"]

#: Base-seed stride between replications (matches the legacy
#: ``replicated_runs`` so paired replication designs are preserved).
REPLICATION_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class PolicySpec:
    """A policy registry name plus frozen constructor kwargs.

    Hashable (kwargs are stored as a sorted tuple of pairs) so it can key
    result lookups; ``label`` is the human identity used in records.
    """

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.kwargs, dict):
            object.__setattr__(self, "kwargs", tuple(sorted(self.kwargs.items())))

    @classmethod
    def of(cls, spec: "str | PolicySpec", **kwargs) -> "PolicySpec":
        """Coerce a string (optionally with kwargs) into a spec."""
        if isinstance(spec, PolicySpec):
            if kwargs:
                raise ValueError("cannot add kwargs to an existing PolicySpec")
            return spec
        return cls(name=spec, kwargs=tuple(sorted(kwargs.items())))

    @property
    def label(self) -> str:
        """Identity used in records and tables."""
        if not self.kwargs:
            return self.name
        params = ",".join(f"{k}={v}" for k, v in self.kwargs)
        return f"{self.name}[{params}]"

    def build(self) -> Policy:
        """Instantiate a fresh (unbound) policy object."""
        return make_policy(self.name, **dict(self.kwargs))


@dataclass(frozen=True)
class Cell:
    """One fully resolved grid point, ready to execute anywhere.

    Self-contained and picklable: a worker process needs nothing beyond
    the cell itself to run the simulation.
    """

    index: int
    policy: PolicySpec
    system: SystemSpec
    rho: float
    replication: int
    workload: WorkloadSpec
    seed: int
    rounds: int
    warmup: int
    backend: str = "reference"
    metrics: tuple[ProbeSpec, ...] = ()


def _as_tuple(value, scalar_types) -> tuple:
    """Normalize a scalar-or-iterable grid axis into a tuple."""
    if isinstance(value, scalar_types):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class Experiment:
    """Immutable declarative description of a full evaluation grid.

    Scalar axis values are accepted and normalized to 1-tuples, so
    ``Experiment("scd", system, 0.9)`` describes a single cell.

    Examples
    --------
    >>> from repro.workloads.scenarios import SystemSpec
    >>> exp = Experiment(
    ...     policies=["scd", "jsq"],
    ...     systems=SystemSpec(12, 3),
    ...     loads=[0.7, 0.9],
    ...     rounds=500,
    ... )
    >>> exp.size
    4
    """

    policies: tuple[PolicySpec, ...]
    systems: tuple[SystemSpec, ...]
    loads: tuple[float, ...]
    replications: int = 1
    workloads: tuple[WorkloadSpec, ...] = field(default_factory=lambda: (WorkloadSpec(),))
    rounds: int = 10_000
    warmup: int = 0
    base_seed: int = 0
    #: Engine-backend registry name every cell runs on.  Unsized cells
    #: resolve it in :mod:`repro.sim.backends`, sized cells in
    #: :mod:`repro.sim.sizedbackends`; ``"reference"`` is the bit-exact
    #: default, ``"fast"`` the vectorized kernel and ``"sharded:N"``
    #: the server-partitioned kernel in both registries.
    backend: str = "reference"
    #: Extra observability probes run in every cell (registry names or
    #: :class:`~repro.sim.probes.ProbeSpec`); their summaries land in
    #: each record's metrics under ``<label>.<key>`` keys.  The default
    #: collectors are always present regardless.
    metrics: tuple[ProbeSpec, ...] = ()

    def __post_init__(self) -> None:
        policies = tuple(
            PolicySpec.of(p) for p in _as_tuple(self.policies, (str, PolicySpec))
        )
        systems = _as_tuple(self.systems, SystemSpec)
        loads = tuple(float(x) for x in _as_tuple(self.loads, (int, float)))
        workloads = _as_tuple(self.workloads, WorkloadSpec)
        metrics = tuple(
            ProbeSpec.of(p) for p in _as_tuple(self.metrics, (str, ProbeSpec, Probe))
        )
        object.__setattr__(self, "policies", policies)
        object.__setattr__(self, "systems", systems)
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "workloads", workloads)
        object.__setattr__(self, "metrics", metrics)
        if len({s.label for s in metrics}) != len(metrics):
            raise ValueError("probe labels must be unique")
        defaults = {s.name for s in metrics} & set(DEFAULT_PROBE_LABELS)
        if defaults:
            raise ValueError(
                f"probes {sorted(defaults)} are always-on default collectors; "
                f"do not list them in metrics"
            )
        # Fail fast on unknown probe names / bad kwargs (the registry's
        # own error) instead of mid-grid on a worker.
        for spec in metrics:
            spec.build()
        if not policies or not systems or not loads or not workloads:
            raise ValueError("every experiment axis needs at least one value")
        if len({p.label for p in policies}) != len(policies):
            raise ValueError("policy labels must be unique")
        if len({w.name for w in workloads}) != len(workloads):
            raise ValueError("workload names must be unique")
        if self.replications < 1:
            raise ValueError("need at least one replication")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0 <= self.warmup < self.rounds:
            raise ValueError("warmup must be in [0, rounds)")
        # Validate the backend against exactly the registries the grid
        # will use -- unsized cells resolve through the base engine
        # registry, sized cells through the sized engine registry -- so
        # unknown names fail at construction with the registry's own
        # error message instead of mid-grid on a worker.
        from repro.sim.backends import backend_capabilities, make_backend
        from repro.sim.sizedbackends import make_sized_backend

        if any(w.job_sizes is None for w in workloads):
            make_backend(self.backend)
            # Capability gate: a backend that cannot feed arbitrary
            # probes (the analytical mean-field engine) must reject
            # unsupported metrics here, not mid-grid on a worker.
            caps = backend_capabilities(self.backend)
            unsupported = [
                s.label for s in metrics if not caps.allows_probe(s.name)
            ]
            if unsupported:
                allowed = ", ".join(sorted(caps.probe_allowlist)) or "none"
                raise ValueError(
                    f"backend {self.backend!r} cannot feed probes "
                    f"{unsupported} (capabilities: {caps.describe()}; "
                    f"synthesizable probes: {allowed})"
                )
        if any(w.job_sizes is not None for w in workloads):
            make_sized_backend(self.backend)

    # -- grid enumeration --------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of cells in the grid."""
        return (
            len(self.policies)
            * len(self.systems)
            * len(self.loads)
            * self.replications
            * len(self.workloads)
        )

    def cell_seed(
        self, workload: WorkloadSpec, system: SystemSpec, rho: float, replication: int
    ) -> int:
        """Workload-coordinate seed (policy-independent, order-independent)."""
        base = self.base_seed + REPLICATION_SEED_STRIDE * replication
        return derive_seed(
            base, *workload.seed_components(), system.name, round(rho * 10_000)
        )

    def cells(self) -> Iterator[Cell]:
        """Enumerate the grid in deterministic order (policy innermost)."""
        coords = itertools.product(
            self.workloads, self.systems, self.loads, range(self.replications)
        )
        index = 0
        for workload, system, rho, rep in coords:
            seed = self.cell_seed(workload, system, rho, rep)
            for policy in self.policies:
                yield Cell(
                    index=index,
                    policy=policy,
                    system=system,
                    rho=rho,
                    replication=rep,
                    workload=workload,
                    seed=seed,
                    rounds=self.rounds,
                    warmup=self.warmup,
                    backend=self.backend,
                    metrics=self.metrics,
                )
                index += 1

    # -- execution ---------------------------------------------------------

    def run(
        self,
        executor: "Executor | str | None" = None,
        workers: int | None = None,
        keep_results: bool = True,
        progress: "callable | None" = None,
    ) -> "ExperimentResult":
        """Execute every cell and return the tidy result container.

        Parameters
        ----------
        executor:
            An :class:`Executor` instance, ``"serial"``, ``"process"``,
            or None (serial unless ``workers`` asks for a pool).
        workers:
            Shorthand: ``workers > 1`` selects the process-pool backend
            with that many workers.
        keep_results:
            Attach each cell's full simulation result to its record
            (memory-heavy for large grids; metrics are always kept).
        progress:
            Optional callback ``(done, total) -> None`` invoked as cells
            complete.
        """
        from .executor import resolve_executor
        from .results import ExperimentResult

        backend = resolve_executor(executor, workers)
        records = backend.run(self, keep_results=keep_results, progress=progress)
        return ExperimentResult(experiment=self, records=tuple(records))

    # -- convenience constructors -----------------------------------------

    @classmethod
    def single(
        cls,
        policy: "str | PolicySpec",
        system: SystemSpec,
        rho: float,
        rounds: int = 10_000,
        warmup: int = 0,
        base_seed: int = 0,
        workload: WorkloadSpec | None = None,
    ) -> "Experiment":
        """A one-cell experiment (the legacy ``run_simulation`` shape)."""
        return cls(
            policies=(PolicySpec.of(policy),),
            systems=(system,),
            loads=(rho,),
            rounds=rounds,
            warmup=warmup,
            base_seed=base_seed,
            workloads=(workload or WorkloadSpec(),),
        )

    def describe(self) -> dict:
        """JSON-able descriptor of the grid (used by persistence).

        The ``metrics`` key is emitted only when extra probes were
        requested, so files written by probe-free experiments are
        byte-identical to the pre-probe format.
        """
        descriptor = {
            "policies": [
                {"name": p.name, "kwargs": dict(p.kwargs)} for p in self.policies
            ],
            "systems": [
                {
                    "num_servers": s.num_servers,
                    "num_dispatchers": s.num_dispatchers,
                    "profile": s.profile,
                    "rate_seed": s.rate_seed,
                }
                for s in self.systems
            ],
            "loads": list(self.loads),
            "replications": self.replications,
            "workloads": [w.describe() for w in self.workloads],
            "rounds": self.rounds,
            "warmup": self.warmup,
            "base_seed": self.base_seed,
            "backend": self.backend,
        }
        if self.metrics:
            descriptor["metrics"] = [
                {"name": s.name, "kwargs": dict(s.kwargs)} for s in self.metrics
            ]
        return descriptor
