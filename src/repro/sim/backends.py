"""Pluggable round-kernel backends for the simulation engine.

The three-phase round model (arrivals, dispatching, departures) admits
more than one execution strategy, and this module is the seam between
the model and its implementations:

``reference``
    The original per-object loop -- one ``policy.dispatch`` call per
    dispatcher, one :class:`~repro.sim.server.ServerQueue` per server.
    Simple, obviously correct, and the bit-exact default.

``fast``
    The vectorized kernel: a whole round's dispatching goes through the
    batch protocol :meth:`repro.policies.base.Policy.dispatch_round`,
    arrivals land in an array-backed
    :class:`~repro.sim.batchstore.BatchQueueStore`, and the departure
    phase drains *all* busy servers in lock-step with
    :meth:`~repro.sim.metrics.ResponseTimeHistogram.record_many` bulk
    recording.  Bit-identical to ``reference`` for deterministic
    policies and for any policy using the base-class ``dispatch_round``
    fallback; statistically equivalent for policies with native batched
    sampling (they consume their RNG stream in different-sized gulps).

``sharded``
    The server-partitioned kernel (:mod:`repro.sim.sharding`): the fast
    round loop with departures resolved by per-shard batch stores and
    partitionable probes folded at end of run.  Parameterized through
    the name (``sharded:4``, ``sharded:4:process``); bit-identical to
    ``fast`` for deterministic policies at every shard count.

Backends are registered by name (mirroring the policy registry) so
experiments and the CLI can select them as plain strings; future scaling
work (async round pipelines, compiled kernels) plugs in as additional
registrations without touching the engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from ._registry import BackendCapabilities, BackendRegistry
from .batchstore import BatchQueueStore
from .blockdriver import (
    BLOCK_ROUNDS,
    UnsizedBlock,
    UnsizedRunState,
    drive_unsized,
)
from .lifecycle import RunController, validate_start_round
from .probes import (
    BlockRecorder,
    ProbeContext,
    ProbeSet,
    ResponseTee,
    build_probe_set,
)
from .server import ServerQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine resolves us)
    from .engine import Simulation, SimulationResult

__all__ = [
    "BackendCapabilities",
    "EngineBackend",
    "ReferenceBackend",
    "FastBackend",
    "register_backend",
    "make_backend",
    "available_backends",
    "backend_descriptions",
    "backend_capabilities",
]


class EngineBackend(ABC):
    """One way of executing all rounds of a bound :class:`Simulation`."""

    #: Registry name, e.g. ``"reference"`` or ``"fast"``.
    name: str = "abstract"
    #: One-line description shown by ``repro backends``.
    description: str = ""

    @abstractmethod
    def run(
        self, sim: "Simulation", controller: RunController | None = None
    ) -> "SimulationResult":
        """Execute ``sim.config.rounds`` rounds and collect the metrics.

        ``controller`` is the optional run-lifecycle seam
        (:mod:`repro.sim.lifecycle`): kernels honor its ``start_round``
        / ``initial_state()`` to resume mid-run and call its
        ``after_block`` at every 256-round block boundary with their
        exportable state.
        """

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """Capability flags (checkpointing, probes) this backend honors.

        The simulation kernels inherit the all-True defaults; analytical
        backends override this to declare what they genuinely support so
        experiments and runs can fail fast at construction.
        """
        return BackendCapabilities()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: BackendRegistry[EngineBackend] = BackendRegistry(
    "engine backend", "backends", EngineBackend
)

#: Class decorator registering an engine backend under a name.
register_backend = _REGISTRY.register
#: Instantiate a backend from its registry name (or pass one through).
make_backend = _REGISTRY.make
#: Names accepted by :func:`make_backend`, sorted.
available_backends = _REGISTRY.available
#: Name -> one-line description, for CLI listings.
backend_descriptions = _REGISTRY.descriptions
#: Capability flags for a backend name (or instance), without building it.
backend_capabilities = _REGISTRY.capabilities


def _make_result(sim: "Simulation", **kwargs) -> "SimulationResult":
    """Assemble a SimulationResult from a finished backend's state."""
    from .engine import SimulationResult

    return SimulationResult(policy_name=sim.policy.name, config=sim.config, **kwargs)


def _probe_set_for(sim: "Simulation") -> ProbeSet:
    """Default collectors plus the config's extra probes, bound to the run."""
    config = sim.config
    return build_probe_set(
        ProbeContext(
            num_servers=sim.rates.size,
            num_dispatchers=sim.arrivals.num_dispatchers,
            rates=sim.rates,
            rounds=config.rounds,
            warmup=config.warmup,
            sized=False,
        ),
        config.probes,
        track_queue_series=config.track_queue_series,
    )


@register_backend("reference")
class ReferenceBackend(EngineBackend):
    """The original per-dispatcher / per-server Python loop (bit-exact default)."""

    name = "reference"
    description = (
        "per-dispatcher dispatch calls and per-server queue objects; "
        "the simple, bit-exact default"
    )

    def run(
        self, sim: "Simulation", controller: RunController | None = None
    ) -> "SimulationResult":
        config = sim.config
        policy = sim.policy
        arrivals = sim.arrivals
        service = sim.service
        arrival_rng = sim._streams.arrivals
        departure_rng = sim._streams.departures

        n = sim.rates.size
        m = arrivals.num_dispatchers
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, config.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            servers = state["servers"]
            queues = state["queues"]
            probes = state["probes"]
            total_arrived = state["total_arrived"]
            total_departed = state["total_departed"]
            server_received = state["server_received"]
            server_departed = state["server_departed"]
        else:
            servers = [ServerQueue() for _ in range(n)]
            queues = np.zeros(n, dtype=np.int64)
            probes = _probe_set_for(sim)
            total_arrived = 0
            total_departed = 0
            server_received = np.zeros(n, dtype=np.int64)
            server_departed = np.zeros(n, dtype=np.int64)
        histogram = probes.histogram
        series = probes.queue_series
        # A fresh recorder is correct on resume: its buffer is empty at
        # every block boundary (it auto-flushes exactly there).
        recorder = BlockRecorder(probes, _CHUNK_ROUNDS)
        tee = ResponseTee(probes, histogram) if probes.wants_responses else None

        for t in range(start_round, config.rounds):
            # Phase 1: arrivals.
            batch = arrivals.sample(arrival_rng, t)
            round_total = int(batch.sum())
            total_arrived += round_total

            # Phase 2: dispatching (independent decisions, shared snapshot).
            policy.begin_round(t, queues)
            received = None
            if round_total:
                policy.observe_total_arrivals(round_total)
                received = np.zeros(n, dtype=np.int64)
                for d in range(m):
                    k = int(batch[d])
                    if k == 0:
                        continue
                    counts = policy.dispatch(d, k)
                    received += counts
                for s in np.flatnonzero(received):
                    servers[s].admit(t, int(received[s]))
                queues += received
                server_received += received

            # Phase 3: departures.
            capacities = service.sample(departure_rng, t)
            sink = histogram if t >= config.warmup else None
            if tee is not None and sink is not None:
                sink = tee
            done_row = (
                np.zeros(n, dtype=np.int64) if recorder.needs_done else None
            )
            busy = np.flatnonzero((queues > 0) & (capacities > 0))
            for s in busy:
                if tee is not None and sink is tee:
                    tee.server = int(s)
                done = servers[s].complete(int(capacities[s]), t, sink)
                queues[s] -= done
                total_departed += done
                server_departed[s] += done
                if done_row is not None:
                    done_row[s] = done

            policy.end_round(t, queues)
            if series is not None:
                series.record(int(queues.sum()))
            recorder.record(t, batch, received, done_row, queues)
            if tee is not None and sink is tee:
                tee.flush(t)
            if controller is not None and (t + 1) % _CHUNK_ROUNDS == 0:
                controller.after_block(
                    t + 1,
                    lambda: {
                        "servers": servers,
                        "queues": queues,
                        "probes": probes,
                        "total_arrived": total_arrived,
                        "total_departed": total_departed,
                        "server_received": server_received,
                        "server_departed": server_departed,
                    },
                )
        recorder.flush()

        return _make_result(
            sim,
            histogram=histogram,
            queue_series=probes.queue_series,
            total_arrived=total_arrived,
            total_departed=total_departed,
            final_queued=int(queues.sum()),
            final_queues=queues,
            server_received=server_received,
            server_departed=server_departed,
            probes=probes.as_dict(),
        )


#: Rounds pre-sampled per block by the block-structured backends.  The
#: loop itself lives in :mod:`repro.sim.blockdriver`; this alias is the
#: name the rest of the codebase (orchestrator, tests) imports.
_CHUNK_ROUNDS = BLOCK_ROUNDS


@register_backend("fast")
class FastBackend(EngineBackend):
    """Vectorized round kernel: batch dispatching, block-resolved departures.

    Workload randomness is pre-sampled in blocks of :data:`_CHUNK_ROUNDS`
    rounds (numpy block draws consume the RNG streams exactly like
    per-round draws, so the realization is the one the reference backend
    sees).  Within a block, each round makes one ``dispatch_round`` call
    -- which native policies answer with a single numpy operation -- and
    updates only the per-server queue totals; the FIFO bookkeeping
    (which job departed when) is deferred and resolved for the whole
    block at once by :meth:`BatchQueueStore.process_block`, including
    bulk histogram recording.  Policies that do not override the batch
    protocol are driven through the same per-dispatcher loop as the
    reference backend (and still gain the block-resolved departures).
    """

    name = "fast"
    description = (
        "vectorized kernel: batch dispatch protocol, array-backed queues, "
        "block-resolved departures (bit-exact for deterministic policies)"
    )

    def _make_store(self, num_servers: int) -> BatchQueueStore:
        """Subclass seam: which departure resolver backs a fresh run."""
        return BatchQueueStore(num_servers)

    def _round_kernel(self, sim: "Simulation"):
        """Subclass seam: an optional whole-block native round loop."""
        return None

    def run(
        self, sim: "Simulation", controller: RunController | None = None
    ) -> "SimulationResult":
        config = sim.config
        n = sim.rates.size
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, config.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            store = state["store"]
            probes = state["probes"]
            run_state = UnsizedRunState(
                queues=state["queues"],
                total_arrived=state["total_arrived"],
                server_received=state["server_received"],
                server_departed=state["server_departed"],
            )
        else:
            store = self._make_store(n)
            probes = _probe_set_for(sim)
            run_state = UnsizedRunState(
                queues=np.zeros(n, dtype=np.int64),
                total_arrived=0,
                server_received=np.zeros(n, dtype=np.int64),
                server_departed=np.zeros(n, dtype=np.int64),
            )
        histogram = probes.histogram
        response_sink = (
            probes.observe_responses if probes.wants_responses else None
        )
        # Churn scenarios wrap the policy in an adapter exposing the
        # block's capacity mask; stamping it onto the store arms the
        # no-admissions-while-masked corruption guard (and checkpoints
        # then carry the mask with the store).
        mask_source = getattr(sim.policy, "capacity_mask", None)

        def consume(block: UnsizedBlock) -> None:
            if mask_source is not None:
                store.set_capacity_mask(mask_source())
            store.process_block(
                block.start_round,
                block.received,
                block.done,
                histogram,
                config.warmup,
                response_sink=response_sink,
            )

        def export_state() -> dict:
            return {
                "store": store,
                "queues": run_state.queues,
                "probes": probes,
                "total_arrived": run_state.total_arrived,
                "server_received": run_state.server_received,
                "server_departed": run_state.server_departed,
            }

        drive_unsized(
            policy=sim.policy,
            arrivals=sim.arrivals,
            service=sim.service,
            arrival_rng=sim._streams.arrivals,
            departure_rng=sim._streams.departures,
            rounds=config.rounds,
            warmup=config.warmup,
            start_round=start_round,
            state=run_state,
            block_probes=probes,
            series=probes.queue_series,
            consume=consume,
            controller=controller,
            export_state=export_state,
            round_kernel=self._round_kernel(sim),
        )

        return _make_result(
            sim,
            histogram=histogram,
            queue_series=probes.queue_series,
            total_arrived=run_state.total_arrived,
            total_departed=int(run_state.server_departed.sum()),
            final_queued=int(run_state.queues.sum()),
            final_queues=run_state.queues,
            server_received=run_state.server_received,
            server_departed=run_state.server_departed,
            probes=probes.as_dict(),
        )


# The sharded kernel registers itself in this registry (and the sized
# one) on import; keep this at the bottom so the registry machinery
# above exists when it does.
from . import sharding  # noqa: E402,F401  (registration side effect)
from . import compiled  # noqa: E402,F401  (registration side effect)
from ..meanfield import backend as _meanfield  # noqa: E402,F401  (registration side effect)
