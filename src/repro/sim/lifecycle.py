"""Run-lifecycle seam: block-aligned pause/export for checkpointing.

Every kernel in both backend registries advances the simulation in
blocks of :data:`~repro.sim.backends._CHUNK_ROUNDS` (256) rounds -- the
fast kernels because they pre-sample workload randomness per block, the
reference kernels because the probe :class:`~repro.sim.probes.BlockRecorder`
buffers exactly that many rounds.  Block boundaries are therefore the
one place where *all* kernel state is at rest: the recorder buffer is
empty, every batch store has resolved its FIFO bookkeeping, and the RNG
streams sit at a position that depends only on the number of completed
rounds.  That makes them natural checkpoint points.

A :class:`RunController` rides along a kernel invocation through the
optional ``controller`` argument of ``EngineBackend.run`` /
``SizedEngineBackend.run``:

* ``start_round`` tells the kernel to *skip* rounds ``[0, start_round)``
  entirely -- the caller guarantees the simulation object (policy, RNG
  streams, arrival/service processes) is already advanced past them,
  which is what unpickling a checkpointed simulation provides.
* ``initial_state()`` returns the kernel-local state exported by a
  previous run's :meth:`after_block` (queues, stores, probes, counters),
  or ``None`` for a fresh start.
* ``after_block(next_round, export)`` is called synchronously at every
  completed block boundary; ``export()`` materializes the *live* kernel
  state on demand (the sharded kernels serialize worker state across
  process pipes only when it is actually called).  Controllers that
  persist the state must call ``export()`` and serialize its result
  before returning -- the kernel keeps mutating those objects
  afterwards.

The orchestration layer built on this seam lives in :mod:`repro.runs`.
"""

from __future__ import annotations

__all__ = ["RunController", "validate_start_round"]


class RunController:
    """Base controller: observes block boundaries, optionally seeds state.

    The default implementation is a no-op fresh run; subclasses override
    what they need (``repro.runs`` provides the checkpointing one).
    """

    #: First round the kernel should execute.  Must be 0 or a multiple
    #: of the 256-round block size, and at most the run's round count.
    start_round: int = 0

    def initial_state(self) -> dict | None:
        """Kernel-local state to resume from, or ``None`` to start fresh.

        The dict is whatever the same kernel exported via
        :meth:`after_block`; each kernel documents its own keys.  When
        this returns a dict, ``start_round`` must be positive.
        """
        return None

    def after_block(self, next_round: int, export) -> None:
        """Called at each completed block boundary.

        ``next_round`` is the first round not yet executed (a multiple
        of 256, or the final round count for a trailing partial block).
        ``export`` is a zero-argument callable returning the kernel's
        state dict; it holds live references into the kernel, so call
        it -- and serialize the result -- before returning if
        persistence is needed.
        """


def validate_start_round(start: int, rounds: int, block: int) -> int:
    """Check a controller's ``start_round`` against a kernel's geometry.

    Returns the validated start.  A resumed kernel can only take over at
    a block boundary (RNG block draws must align with the original
    run's) and cannot start past the end of the run.
    """
    start = int(start)
    if start < 0 or start > rounds:
        raise ValueError(
            f"start_round {start} outside [0, {rounds}]"
        )
    if start % block:
        raise ValueError(
            f"start_round {start} is not a multiple of the "
            f"{block}-round block size"
        )
    return start
