"""Shared machinery for the engine-backend and probe registries.

:mod:`repro.sim.backends` (unsized round kernels),
:mod:`repro.sim.sizedbackends` (sized round kernels) and
:mod:`repro.sim.probes` (observability probes) expose the same
name -> factory surface: a class decorator to register, a ``make``
resolver accepting names or instances, and sorted name/description
listings for the CLI.  Keeping that behavior in one place means the
registries cannot drift (case handling, duplicate detection, error
shapes) and a fourth registry costs one instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["BackendCapabilities", "BackendRegistry"]


@dataclass(frozen=True)
class BackendCapabilities:
    """What one engine backend can honestly promise.

    The simulation kernels (reference/fast/compiled/sharded, both
    engines) checkpoint at block boundaries and feed every registered
    probe, so the default flags are all-True and nothing changes for
    them.  Analytical backends (the mean-field fluid engine) have no
    RNG streams, no block-aligned kernel state and no discrete events,
    so they declare themselves out of the checkpoint path and restrict
    probes to the summaries they can synthesize from their own state.
    ``Experiment`` construction, ``Run.create`` and the service's
    submission validator consult these flags to fail fast instead of
    mid-run.
    """

    #: The kernel exports block-aligned state (``repro run`` / resume /
    #: federated execution all require this).
    supports_checkpoint: bool = True
    #: The kernel feeds arbitrary registered probes with discrete
    #: events.  When False only :attr:`probe_allowlist` names work.
    supports_probes: bool = True
    #: Probe names honored even when :attr:`supports_probes` is False
    #: (the backend synthesizes their summaries itself).
    probe_allowlist: frozenset[str] = field(default_factory=frozenset)
    #: Deterministic analytical solution: seeds and replications do not
    #: change the result (``repro compare`` runs one rep instead of an
    #: ensemble).
    analytic: bool = False

    def allows_probe(self, name: str) -> bool:
        """True when the backend can feed (or synthesize) probe ``name``."""
        return self.supports_probes or name in self.probe_allowlist

    def describe(self) -> str:
        """Compact capability column for ``repro backends`` listings."""
        parts = [
            "checkpoint" if self.supports_checkpoint else "no-checkpoint",
            "probes" if self.supports_probes else (
                "probes:" + "+".join(sorted(self.probe_allowlist))
                if self.probe_allowlist
                else "no-probes"
            ),
        ]
        if self.analytic:
            parts.append("analytic")
        return ",".join(parts)


class BackendRegistry(Generic[T]):
    """A name -> factory registry for one family of engine backends.

    Parameters
    ----------
    kind:
        Human label used in error messages, e.g. ``"engine backend"``
        or ``"sized engine backend"``.
    plural:
        Label for the known-names listing in errors, e.g. ``"backends"``.
    base:
        The family's abstract base class; ``make`` passes instances of
        it through untouched.
    """

    def __init__(self, kind: str, plural: str, base: type) -> None:
        self._kind = kind
        self._plural = plural
        self._base = base
        self._factories: dict[str, Callable[[], T]] = {}

    def register(self, name: str) -> Callable[[type], type]:
        """Class decorator registering a backend factory under ``name``."""

        def decorator(cls: type) -> type:
            key = name.lower()
            if key in self._factories:
                raise ValueError(f"{self._kind} {name!r} registered twice")
            self._factories[key] = cls
            return cls

        return decorator

    def make(self, spec: "str | T", **kwargs) -> T:
        """Instantiate from a registry name (or pass an instance through).

        ``kwargs`` go to the factory (probes take constructor
        parameters; engine backends take none) and are rejected with an
        instance, which is already built.
        """
        if isinstance(spec, self._base):
            if kwargs:
                raise ValueError(f"cannot pass kwargs with a {self._kind} instance")
            return spec
        return self.factory(spec)(**kwargs)

    def factory(self, name: str) -> Callable[..., T]:
        """The factory registered under ``name`` (same error as ``make``).

        Names may carry a ``:``-separated parameter suffix
        (``"sharded:4"``): the head resolves the registered class and
        the remainder goes to its ``from_param`` classmethod, so
        parameterized backends stay plain strings everywhere names
        travel (configs, persistence, the CLI).  Heads without a
        ``from_param`` reject parameters.
        """
        key = name.lower()
        if key in self._factories:
            return self._factories[key]
        head, sep, param = key.partition(":")
        if sep and head in self._factories:
            cls = self._factories[head]
            from_param = getattr(cls, "from_param", None)
            if from_param is None:
                raise ValueError(
                    f"{self._kind} {head!r} takes no ':' parameters (got {name!r})"
                )
            return lambda **kwargs: from_param(param, **kwargs)
        known = ", ".join(sorted(self._factories))
        raise ValueError(
            f"unknown {self._kind} {name!r}; known {self._plural}: {known}"
        )

    def available(self) -> list[str]:
        """Names accepted by :meth:`make`, sorted."""
        return sorted(self._factories)

    def descriptions(self) -> dict[str, str]:
        """Name -> one-line ``description`` attribute, for CLI listings."""
        return {
            name: self._factories[name].description
            for name in sorted(self._factories)
        }

    def capabilities(self, spec: "str | T") -> BackendCapabilities:
        """Capability flags for a backend name, parameter suffixes included.

        Works without instantiating (``capabilities`` is a classmethod
        on the base classes), so listings and validators can ask about
        every registered name cheaply.  Instances answer for themselves.
        """
        if isinstance(spec, self._base):
            return spec.capabilities()
        key = spec.lower()
        head = key if key in self._factories else key.partition(":")[0]
        if head not in self._factories:
            self.factory(spec)  # raise the canonical unknown-name error
        return self._factories[head].capabilities()
