"""Pluggable round-kernel backends for the sized-job simulation engine.

The sized engine (:mod:`repro.sim.sized`) runs the same three-phase
round model as the base engine, but jobs carry integer work sizes and
queues are denominated in units.  This module mirrors
:mod:`repro.sim.backends` for that engine:

``reference``
    The original per-object loop -- one ``policy.dispatch`` call per
    dispatcher, one :class:`~repro.sim.sized.SizedServerQueue` deque per
    server.  Simple, obviously correct, and the bit-exact default.

``fast``
    The vectorized sized kernel: workload randomness is pre-sampled per
    block (batches and job sizes share the arrival stream, so the
    pre-sampling loop repeats the reference's per-round interleaving
    exactly -- and one size draw per round consumes the stream
    identically to the reference's per-dispatcher draws, because numpy
    fills element by element), each round makes one
    :meth:`~repro.policies.base.Policy.dispatch_round` call and updates
    only the per-server unit totals, and the FIFO bookkeeping (which
    job's last unit drained when) is deferred to
    :meth:`~repro.sim.batchstore.SizedBatchQueueStore.process_block`
    with bulk histogram recording.  Bit-identical to ``reference`` for
    deterministic policies and any policy on the base-class
    ``dispatch_round`` fallback; statistically equivalent for native
    stochastic batch paths (they reshape policy-stream consumption).

``sharded``
    The server-partitioned sized kernel (:mod:`repro.sim.sharding`):
    the sized fast round loop with per-job FIFO resolution pushed into
    per-shard unit stores and partitionable probes folded at end of
    run.  Parameterized through the name (``sharded:4``,
    ``sharded:4:process``); bit-identical to ``fast`` for
    deterministic policies at every shard count.

Backends are registered by name so experiments and the CLI can select
them as plain strings; future scaling work (compiled sized kernels)
plugs in as additional registrations without touching the engine or
the policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from ._registry import BackendCapabilities, BackendRegistry
from .batchstore import SizedBatchQueueStore
from .blockdriver import (
    BLOCK_ROUNDS,
    SizedBlock,
    SizedRunState,
    drive_sized,
)
from .lifecycle import RunController, validate_start_round
from .probes import (
    BlockRecorder,
    ProbeContext,
    ProbeSet,
    ResponseTee,
    build_probe_set,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sized resolves us)
    from .sized import SizedSimulation, SizedSimulationResult

__all__ = [
    "SizedEngineBackend",
    "SizedReferenceBackend",
    "SizedFastBackend",
    "register_sized_backend",
    "make_sized_backend",
    "available_sized_backends",
    "sized_backend_descriptions",
    "sized_backend_capabilities",
]


class SizedEngineBackend(ABC):
    """One way of executing all rounds of a bound :class:`SizedSimulation`."""

    #: Registry name, e.g. ``"reference"`` or ``"fast"``.
    name: str = "abstract"
    #: One-line description shown by ``repro backends``.
    description: str = ""

    @abstractmethod
    def run(
        self, sim: "SizedSimulation", controller: RunController | None = None
    ) -> "SizedSimulationResult":
        """Execute ``sim.rounds`` rounds and collect the metrics.

        ``controller`` is the optional run-lifecycle seam
        (:mod:`repro.sim.lifecycle`), exactly as in
        :meth:`repro.sim.backends.EngineBackend.run`.
        """

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """Capability flags, as in :meth:`EngineBackend.capabilities`.

        Every sized kernel checkpoints and feeds all probes, so the
        all-True defaults stand for the whole family today.
        """
        return BackendCapabilities()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: BackendRegistry[SizedEngineBackend] = BackendRegistry(
    "sized engine backend", "sized backends", SizedEngineBackend
)

#: Class decorator registering a sized engine backend under a name.
register_sized_backend = _REGISTRY.register
#: Instantiate a sized backend from its registry name (or pass one through).
make_sized_backend = _REGISTRY.make
#: Names accepted by :func:`make_sized_backend`, sorted.
available_sized_backends = _REGISTRY.available
#: Name -> one-line description, for CLI listings.
sized_backend_descriptions = _REGISTRY.descriptions
#: Capability flags for a sized backend name (or instance).
sized_backend_capabilities = _REGISTRY.capabilities


def _make_result(sim: "SizedSimulation", **kwargs) -> "SizedSimulationResult":
    """Assemble a SizedSimulationResult from a finished backend's state."""
    from .sized import SizedSimulationResult

    return SizedSimulationResult(policy_name=sim.policy.name, **kwargs)


def _probe_set_for(sim: "SizedSimulation") -> ProbeSet:
    """Default collectors plus the run's extra probes, unit-denominated."""
    return build_probe_set(
        ProbeContext(
            num_servers=sim.rates.size,
            num_dispatchers=sim.arrivals.num_dispatchers,
            rates=sim.rates,
            rounds=sim.rounds,
            warmup=sim.warmup,
            sized=True,
        ),
        sim.probes,
    )


@register_sized_backend("reference")
class SizedReferenceBackend(SizedEngineBackend):
    """The original per-dispatcher / per-server Python loop (bit-exact default)."""

    name = "reference"
    description = (
        "per-dispatcher dispatch calls and per-server sized-job deques; "
        "the simple, bit-exact default"
    )

    def run(
        self, sim: "SizedSimulation", controller: RunController | None = None
    ) -> "SizedSimulationResult":
        from .sized import SizedServerQueue

        n = sim.rates.size
        m = sim.arrivals.num_dispatchers
        arrival_rng = sim._streams.arrivals
        departure_rng = sim._streams.departures
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, sim.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            servers = state["servers"]
            unit_queues = state["unit_queues"]
            probes = state["probes"]
            total_jobs = state["total_jobs"]
            units_in = state["units_in"]
            units_out = state["units_out"]
        else:
            servers = [SizedServerQueue() for _ in range(n)]
            unit_queues = np.zeros(n, dtype=np.int64)
            probes = _probe_set_for(sim)
            total_jobs = 0
            units_in = 0
            units_out = 0
        histogram = probes.histogram
        series = probes.queue_series
        # A fresh recorder is correct on resume: its buffer is empty at
        # every block boundary (it auto-flushes exactly there).
        recorder = BlockRecorder(probes, _CHUNK_ROUNDS)
        tee = ResponseTee(probes, histogram) if probes.wants_responses else None

        for t in range(start_round, sim.rounds):
            batch = sim.arrivals.sample(arrival_rng, t)
            round_jobs = int(batch.sum())
            total_jobs += round_jobs

            sim.policy.begin_round(t, unit_queues)
            received_units = None
            if round_jobs:
                sim.policy.observe_total_arrivals(round_jobs)
                # All dispatchers decide against the same snapshot; queue
                # updates are deferred until every decision is made (the
                # model's independence requirement -- as in the base
                # engine, where `queues += received` happens after the
                # dispatcher loop).
                received_units = np.zeros(n, dtype=np.int64)
                for d in range(m):
                    k = int(batch[d])
                    if k == 0:
                        continue
                    # Sizes are workload randomness: drawn for the whole
                    # batch *before* placement from the arrival stream, so
                    # the realized sizes (and the stream position) are
                    # identical whatever the policy decides.
                    job_sizes = sim.sizes.sample(arrival_rng, k)
                    counts = sim.policy.dispatch(d, k)
                    start = 0
                    for s in np.flatnonzero(counts):
                        stop = start + int(counts[s])
                        chunk = job_sizes[start:stop]
                        servers[s].admit(t, chunk)
                        received_units[s] += int(chunk.sum())
                        start = stop
                unit_queues += received_units
                units_in += int(received_units.sum())

            capacities = sim.service.sample(departure_rng, t)
            sink = histogram if t >= sim.warmup else None
            if tee is not None and sink is not None:
                sink = tee
            done_row = (
                np.zeros(n, dtype=np.int64) if recorder.needs_done else None
            )
            busy = np.flatnonzero((unit_queues > 0) & (capacities > 0))
            for s in busy:
                if tee is not None and sink is tee:
                    tee.server = int(s)
                done = servers[s].complete(int(capacities[s]), t, sink)
                unit_queues[s] -= done
                units_out += done
                if done_row is not None:
                    done_row[s] = done

            sim.policy.end_round(t, unit_queues)
            series.record(int(unit_queues.sum()))
            recorder.record(t, batch, received_units, done_row, unit_queues)
            if tee is not None and sink is tee:
                tee.flush(t)
            if controller is not None and (t + 1) % _CHUNK_ROUNDS == 0:
                controller.after_block(
                    t + 1,
                    lambda: {
                        "servers": servers,
                        "unit_queues": unit_queues,
                        "probes": probes,
                        "total_jobs": total_jobs,
                        "units_in": units_in,
                        "units_out": units_out,
                    },
                )
        recorder.flush()

        return _make_result(
            sim,
            histogram=histogram,
            queue_series=probes.queue_series,
            total_jobs=total_jobs,
            total_units_arrived=units_in,
            total_units_departed=units_out,
            final_units_queued=int(unit_queues.sum()),
            probes=probes.as_dict(),
        )


#: Rounds pre-sampled per block by the block-structured sized backends
#: (the loop itself lives in :mod:`repro.sim.blockdriver`).
_CHUNK_ROUNDS = BLOCK_ROUNDS

_EMPTY_SIZES = np.empty(0, dtype=np.int64)


@register_sized_backend("fast")
class SizedFastBackend(SizedEngineBackend):
    """Vectorized sized kernel: batch dispatching, block-resolved units.

    Per block of :data:`_CHUNK_ROUNDS` rounds:

    1. **Pre-sample.**  Batches and job sizes share the arrival stream
       and the reference interleaves them round by round, so the
       pre-sampling loop repeats exactly that call sequence -- one
       ``arrivals.sample`` then one size draw for the round's whole
       batch.  The single draw realizes the same sizes as the
       reference's per-dispatcher draws (numpy fills element by
       element, so splitting a draw does not change the realization).
       Capacities come from one ``service.sample_many`` block draw on
       the independent departure stream.
    2. **Dispatch.**  One ``dispatch_round`` call per round (the batch
       protocol; the base-class fallback loops classic ``dispatch`` in
       dispatcher order, bit-identical to the reference).  The round's
       flat size vector is split across the ``(dispatcher, server)``
       cells by a prefix-sum, updating only the per-server unit totals.
    3. **Departures.**  ``done = min(queues, capacity)`` per round;
       which *job's* last unit drained when is deferred and resolved for
       the whole block at once by
       :meth:`SizedBatchQueueStore.process_block`, including bulk
       histogram recording.
    """

    name = "fast"
    description = (
        "vectorized sized kernel: batch dispatch protocol, "
        "unit-denominated block-resolved departures (bit-exact for "
        "deterministic policies)"
    )

    def _make_store(self, num_servers: int) -> SizedBatchQueueStore:
        """Subclass seam: which departure resolver backs a fresh run."""
        return SizedBatchQueueStore(num_servers)

    def run(
        self, sim: "SizedSimulation", controller: RunController | None = None
    ) -> "SizedSimulationResult":
        n = sim.rates.size
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, sim.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            store = state["store"]
            probes = state["probes"]
            run_state = SizedRunState(
                unit_queues=state["unit_queues"],
                total_jobs=state["total_jobs"],
                units_in=state["units_in"],
                units_out=state["units_out"],
            )
        else:
            store = self._make_store(n)
            probes = _probe_set_for(sim)
            run_state = SizedRunState(
                unit_queues=np.zeros(n, dtype=np.int64),
                total_jobs=0,
                units_in=0,
                units_out=0,
            )
        histogram = probes.histogram
        response_sink = (
            probes.observe_responses if probes.wants_responses else None
        )
        # Churn scenarios wrap the policy in an adapter exposing the
        # block's capacity mask; stamping it onto the store arms the
        # no-admissions-while-masked corruption guard (and checkpoints
        # then carry the mask with the store).
        mask_source = getattr(sim.policy, "capacity_mask", None)

        def consume(block: SizedBlock) -> None:
            if mask_source is not None:
                store.set_capacity_mask(mask_source())
            store.process_block(
                block.start_round,
                block.job_servers,
                block.job_rounds,
                block.job_sizes,
                block.done,
                histogram,
                sim.warmup,
                response_sink=response_sink,
            )

        def export_state() -> dict:
            return {
                "store": store,
                "unit_queues": run_state.unit_queues,
                "probes": probes,
                "total_jobs": run_state.total_jobs,
                "units_in": run_state.units_in,
                "units_out": run_state.units_out,
            }

        drive_sized(
            policy=sim.policy,
            arrivals=sim.arrivals,
            service=sim.service,
            sizes=sim.sizes,
            arrival_rng=sim._streams.arrivals,
            departure_rng=sim._streams.departures,
            rounds=sim.rounds,
            start_round=start_round,
            state=run_state,
            block_probes=probes,
            series=probes.queue_series,
            collect_received=False,
            consume=consume,
            controller=controller,
            export_state=export_state,
        )

        return _make_result(
            sim,
            histogram=histogram,
            queue_series=probes.queue_series,
            total_jobs=run_state.total_jobs,
            total_units_arrived=run_state.units_in,
            total_units_departed=run_state.units_out,
            final_units_queued=int(run_state.unit_queues.sum()),
            probes=probes.as_dict(),
        )


# The sharded sized kernel registers itself in this registry on import;
# keep this at the bottom so the registry machinery above exists when
# it does.
from . import sharding  # noqa: E402,F401  (registration side effect)
from . import compiled  # noqa: E402,F401  (registration side effect)
