"""Sized-job simulation: work-unit queues for the open-problem-1 study.

The base model (Section 2) counts jobs; here each job carries an integer
*size* in work units, servers complete work units per round, and queues
are measured in units.  Everything else -- synchronous 3-phase rounds,
independent dispatchers, FIFO service, common random numbers -- matches
the base engine.  A job's response time is the round its *last* unit
completes, minus its arrival round, plus one.

Policies plug in unchanged: they see the unit-denominated queue vector
(so JSQ ranks by least work left, SED by least expected drain time) and
return per-server *job* counts; the engine draws each job's size from a
:class:`JobSizeDistribution` whose stream lives with the arrival streams
(sizes are workload, not policy, randomness).

The round loop itself is pluggable: ``backend`` names a sized round
kernel from the :mod:`repro.sim.sizedbackends` registry (``"reference"``
-- the bit-exact per-object loop, the default -- ``"fast"`` -- the
vectorized unit-denominated kernel -- or ``"sharded:N"`` -- the
server-partitioned kernel of :mod:`repro.sim.sharding`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.policies.base import Policy, SystemContext

from .arrivals import ArrivalProcess
from .metrics import QueueLengthSeries, ResponseTimeHistogram
from .probes import Probe, ProbeSpec
from .seeding import spawn_streams
from .service import ServiceProcess

__all__ = [
    "JobSizeDistribution",
    "DeterministicSize",
    "GeometricSize",
    "BimodalSize",
    "SizedServerQueue",
    "SizedSimulation",
    "SizedSimulationResult",
]


class JobSizeDistribution(ABC):
    """Distribution of per-job work sizes (positive integers)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` i.i.d. job sizes (int64, all >= 1)."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """``E[W]``."""

    @property
    @abstractmethod
    def second_moment(self) -> float:
        """``E[W^2]``."""


class DeterministicSize(JobSizeDistribution):
    """Every job needs exactly ``size`` units; size 1 recovers the base model."""

    def __init__(self, size: int = 1) -> None:
        if size < 1:
            raise ValueError("job size must be >= 1")
        self.size = int(size)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, self.size, dtype=np.int64)

    @property
    def mean(self) -> float:
        return float(self.size)

    @property
    def second_moment(self) -> float:
        return float(self.size) ** 2


class GeometricSize(JobSizeDistribution):
    """Sizes ``1 + Geom``: support {1, 2, ...} with the given mean."""

    def __init__(self, mean_size: float = 2.0) -> None:
        if mean_size <= 1.0:
            raise ValueError("mean size must exceed 1 (sizes start at 1)")
        self._mean = float(mean_size)
        # W = 1 + G with G geometric on {0,1,...} of mean m-1:
        self._p = 1.0 / self._mean  # success prob of numpy's 1-based geometric

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.geometric(self._p, size=count).astype(np.int64)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def second_moment(self) -> float:
        # numpy's geometric on {1,2,...}: Var = (1-p)/p^2.
        variance = (1.0 - self._p) / (self._p**2)
        return variance + self._mean**2


class BimodalSize(JobSizeDistribution):
    """Mostly small jobs with a heavy minority (the elephant/mice mix)."""

    def __init__(self, small: int = 1, large: int = 20, large_prob: float = 0.05):
        if small < 1 or large < small:
            raise ValueError("need 1 <= small <= large")
        if not 0.0 <= large_prob <= 1.0:
            raise ValueError("large_prob must be in [0, 1]")
        self.small = int(small)
        self.large = int(large)
        self.large_prob = float(large_prob)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        big = rng.random(count) < self.large_prob
        return np.where(big, self.large, self.small).astype(np.int64)

    @property
    def mean(self) -> float:
        return (1 - self.large_prob) * self.small + self.large_prob * self.large

    @property
    def second_moment(self) -> float:
        return (
            (1 - self.large_prob) * self.small**2
            + self.large_prob * self.large**2
        )


class SizedServerQueue:
    """FIFO queue of sized jobs; tracks remaining units of the head job."""

    __slots__ = ("_jobs", "units")

    def __init__(self) -> None:
        self._jobs: deque[list[int]] = deque()  # [arrival_round, remaining]
        self.units = 0

    def admit(self, round_index: int, sizes: np.ndarray) -> None:
        """Append jobs with the given sizes, arrived this round."""
        for size in sizes:
            self._jobs.append([round_index, int(size)])
            self.units += int(size)

    def complete(
        self,
        capacity: int,
        now: int,
        histogram: ResponseTimeHistogram | None,
    ) -> int:
        """Serve up to ``capacity`` work units FIFO; returns units served.

        A job's response time is recorded when its final unit completes.
        """
        if capacity <= 0 or self.units == 0:
            return 0
        budget = min(int(capacity), self.units)
        served = budget
        jobs = self._jobs
        while budget > 0:
            head = jobs[0]
            if head[1] <= budget:
                budget -= head[1]
                if histogram is not None:
                    histogram.record(now - head[0] + 1)
                jobs.popleft()
            else:
                head[1] -= budget
                budget = 0
        self.units -= served
        return served

    def __len__(self) -> int:
        return self.units


@dataclass
class SizedSimulationResult:
    """Metrics of one sized-job run (work accounted in units)."""

    policy_name: str
    histogram: ResponseTimeHistogram
    queue_series: QueueLengthSeries
    total_jobs: int
    total_units_arrived: int
    total_units_departed: int
    final_units_queued: int
    #: Label -> probe, every probe of the run (defaults + extras).
    probes: dict[str, Probe] = field(default_factory=dict, repr=False, compare=False)

    @property
    def mean_response_time(self) -> float:
        """Average per-job response time (rounds)."""
        return self.histogram.mean()

    def probe_summaries(self) -> dict[str, dict[str, float]]:
        """Label -> summary for every probe carried by this run."""
        return {label: probe.summary() for label, probe in self.probes.items()}


class SizedSimulation:
    """Round engine over work-unit queues (drop-in analog of Simulation).

    ``warmup`` discards response times of jobs *completing* during the
    first ``warmup`` rounds (unit accounting still includes them), and
    ``probes`` appends extra observability probes to the default
    collectors, both exactly as in :class:`repro.sim.engine.SimulationConfig`.
    """

    def __init__(
        self,
        rates: np.ndarray,
        policy: Policy,
        arrivals: ArrivalProcess,
        service: ServiceProcess,
        sizes: JobSizeDistribution,
        rounds: int = 10_000,
        seed: int = 0,
        backend: str = "reference",
        warmup: int = 0,
        probes: tuple = (),
        scenario: str | None = None,
    ) -> None:
        self.rates = np.asarray(rates, dtype=np.float64)
        if service.num_servers != self.rates.size:
            raise ValueError("service process size mismatch")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0 <= warmup < rounds:
            raise ValueError("warmup must be in [0, rounds)")
        if not backend:
            raise ValueError("backend must be a non-empty registry name")
        if scenario is not None:
            # Same single application point as the unsized engine: wrap
            # before bind so checkpoints carry the reshaped objects.
            from repro.scenarios import apply_scenario

            policy, arrivals = apply_scenario(
                scenario, policy, arrivals, self.rates.size
            )
        self.policy = policy
        self.arrivals = arrivals
        self.service = service
        self.sizes = sizes
        self.rounds = int(rounds)
        self.warmup = int(warmup)
        self.seed = int(seed)
        self.backend = backend
        self.scenario = scenario
        self.probes = tuple(ProbeSpec.of(p) for p in probes)
        self._streams = spawn_streams(seed)
        policy.bind(
            SystemContext(
                rates=self.rates,
                num_dispatchers=arrivals.num_dispatchers,
                rng=self._streams.policy,
            )
        )
        arrivals.reset()
        service.reset()

    def run(self, controller=None) -> SizedSimulationResult:
        """Execute all rounds via the configured backend (see ``sizedbackends``).

        ``controller`` is the optional run-lifecycle seam
        (:class:`repro.sim.lifecycle.RunController`), exactly as in
        :meth:`repro.sim.engine.Simulation.run`.
        """
        from .sizedbackends import make_sized_backend

        return make_sized_backend(self.backend).run(self, controller)
