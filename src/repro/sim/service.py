"""Per-server service processes (phase 3 of each round).

The paper's evaluation draws each server's round capacity from a geometric
distribution with mean ``mu_s``: ``c_s(t) ~ Geom(1/(1+mu_s))`` supported on
``{0, 1, 2, ...}`` (Section 6.1).  Capacities are drawn every round
regardless of queue contents -- unused capacity is lost -- which both
matches the model and keeps the departure stream identical across policies
(common random numbers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "ServiceProcess",
    "GeometricService",
    "DeterministicService",
    "TraceService",
]


class ServiceProcess(ABC):
    """Produces the vector of per-server completion capacities each round."""

    @property
    @abstractmethod
    def num_servers(self) -> int:
        """Number of servers this process drives."""

    @property
    @abstractmethod
    def mean_rates(self) -> np.ndarray:
        """Expected capacities ``mu_s`` (for admissibility checks)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        """Return an int64 array of length ``n`` with this round's capacities."""

    def sample_many(
        self, rng: np.random.Generator, start_round: int, count: int
    ) -> np.ndarray:
        """Return a ``(count, n)`` block of capacities for consecutive rounds.

        Default loops :meth:`sample` (bit-identical for stateful
        processes); memoryless processes override with one block draw,
        which consumes the RNG stream exactly like sequential calls (C
        order element-by-element fill).
        """
        return np.stack(
            [self.sample(rng, start_round + i) for i in range(count)]
        )

    def reset(self) -> None:
        """Clear internal state (credit counters, trace position...)."""


class GeometricService(ServiceProcess):
    """The paper's service model: ``c_s(t) ~ Geom(1/(1+mu_s))``, mean ``mu_s``.

    numpy's ``geometric`` counts trials to first success (support starting
    at 1), so we subtract 1 to get the number-of-failures convention with
    support ``{0, 1, ...}`` and mean ``(1-p)/p = mu_s``.
    """

    def __init__(self, rates: np.ndarray) -> None:
        self.rates = np.asarray(rates, dtype=np.float64)
        if self.rates.ndim != 1 or self.rates.size == 0:
            raise ValueError("rates must be a non-empty 1-D array")
        if np.any(self.rates <= 0):
            raise ValueError("service rates must be strictly positive")
        self._success_prob = 1.0 / (1.0 + self.rates)

    @property
    def num_servers(self) -> int:
        return int(self.rates.size)

    @property
    def mean_rates(self) -> np.ndarray:
        return self.rates

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        return (rng.geometric(self._success_prob) - 1).astype(np.int64)

    def sample_many(
        self, rng: np.random.Generator, start_round: int, count: int
    ) -> np.ndarray:
        draws = rng.geometric(
            self._success_prob, size=(count, self.rates.size)
        )
        return (draws - 1).astype(np.int64)


class DeterministicService(ServiceProcess):
    """Deterministic capacities via credit accumulation (tests, examples).

    A server with ``mu = 2.5`` completes 2, 3, 2, 3, ... jobs per round.
    """

    def __init__(self, rates: np.ndarray) -> None:
        self.rates = np.asarray(rates, dtype=np.float64)
        if np.any(self.rates <= 0):
            raise ValueError("service rates must be strictly positive")
        self._credit = np.zeros_like(self.rates)

    @property
    def num_servers(self) -> int:
        return int(self.rates.size)

    @property
    def mean_rates(self) -> np.ndarray:
        return self.rates

    def reset(self) -> None:
        self._credit[:] = 0.0

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        self._credit += self.rates
        capacity = np.floor(self._credit + 1e-12).astype(np.int64)
        self._credit -= capacity
        return capacity


class TraceService(ServiceProcess):
    """Replay a ``(T, n)`` capacity matrix, cycling past the end."""

    def __init__(self, trace: np.ndarray) -> None:
        self.trace = np.asarray(trace, dtype=np.int64)
        if self.trace.ndim != 2 or self.trace.shape[0] == 0:
            raise ValueError("trace must be a non-empty (rounds, servers) matrix")
        if np.any(self.trace < 0):
            raise ValueError("trace entries must be non-negative")

    @property
    def num_servers(self) -> int:
        return int(self.trace.shape[1])

    @property
    def mean_rates(self) -> np.ndarray:
        return self.trace.mean(axis=0)

    def sample(self, rng: np.random.Generator, round_index: int) -> np.ndarray:
        return self.trace[round_index % self.trace.shape[0]]

    def sample_many(
        self, rng: np.random.Generator, start_round: int, count: int
    ) -> np.ndarray:
        rows = (start_round + np.arange(count)) % self.trace.shape[0]
        return self.trace[rows]
