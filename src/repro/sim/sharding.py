"""Sharded round kernels: one simulation across server-partitioned stores.

The fast kernels (:mod:`repro.sim.backends`, :mod:`repro.sim.sizedbackends`)
already split each round into a *dispatch* phase that needs only the
per-server queue totals and a *departure-resolution* phase
(``BatchQueueStore.process_block``) that is embarrassingly parallel
across servers.  This module exploits that split: the server axis is
partitioned into contiguous **shards**, each owning an independent batch
store and its own probe set, while a coordinator runs the round loop --
sampling the workload, dispatching against the **full global queue
view**, and exchanging per-round queue-length vectors -- exactly as the
fast kernel does.  Once per 256-round block the coordinator hands every
shard its slice of the admission/completion matrices; shards resolve
FIFO departures, record response times into their own histograms, and
reconstruct their queue slices independently.  End of run, shard probe
states fold back into global statistics via
:meth:`repro.sim.probes.Probe.merge_partition` (per-server arrays
concatenate, event multisets add).

Because all randomness and all policy decisions live in the coordinator,
the sharded kernels are **bit-identical to "fast"** for deterministic
policies at every shard count -- the partition changes where work is
resolved, never what happens.

Two execution strategies sit behind one shard-plan abstraction:

``serial``
    The deterministic in-process loop: shard workers are plain objects
    fed synchronously.  Zero IPC, runs anywhere (the 1-CPU CI
    container included), and the bit-identity reference for the
    process strategy.

``process``
    One worker process per shard, fed blocks over pipes (the same
    seed-stable pattern as :mod:`repro.experiments.executor`: workers
    hold no RNG, so scheduling cannot perturb results).  Departure
    resolution and probe accumulation overlap with the coordinator's
    dispatch loop; probe states return as ``state_dict`` payloads and
    fold exactly like the serial strategy's.

Probe routing: probes with ``partitionable = True`` (the default
collectors, ``server_stats``, ``windowed_mean``) replicate into every
shard and fold via ``merge_partition``; everything else -- e.g.
``dispatcher_stats``, ``herding``, and custom probes -- is fed the full
global block stream by the coordinator, unchanged from the fast kernel.
Response-event probes must be partitionable (the events exist only
inside the shards).

Both kernels register as ``"sharded"`` in their engine's registry and
parameterize through the name itself: ``sharded`` (2 shards, serial),
``sharded:4``, ``sharded:4:process``.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .backends import _CHUNK_ROUNDS, EngineBackend, register_backend
from .batchstore import BatchQueueStore, SizedBatchQueueStore
from .lifecycle import RunController, validate_start_round
from .probes import (
    Probe,
    ProbeBlock,
    ProbeContext,
    ProbeSet,
    ProbeSpec,
    QueueSeriesProbe,
    ResponseTimeProbe,
    probe_from_state,
)
from .sizedbackends import SizedEngineBackend, register_sized_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulation, SimulationResult
    from .sized import SizedSimulation, SizedSimulationResult

__all__ = [
    "ShardPlan",
    "ShardInit",
    "ShardWorker",
    "ShardStrategy",
    "SerialShardStrategy",
    "MultiprocessShardStrategy",
    "ShardedBackend",
    "SizedShardedBackend",
    "split_probe_specs",
]


@dataclass(frozen=True)
class ShardPlan:
    """A partition of the server axis into contiguous, non-empty shards.

    ``bounds`` is the prefix form ``(0, n_1, ..., n)``: shard ``i`` owns
    the half-open server range ``[bounds[i], bounds[i+1])``.  Contiguity
    is what makes the fold order-preserving: concatenating shard arrays
    left to right restores the global server order.
    """

    bounds: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bounds) < 2 or self.bounds[0] != 0:
            raise ValueError("bounds must start at 0 and define >= 1 shard")
        if any(hi <= lo for lo, hi in zip(self.bounds, self.bounds[1:])):
            raise ValueError("shard bounds must be strictly increasing")

    @classmethod
    def balanced(cls, num_servers: int, shards: int) -> "ShardPlan":
        """Near-equal contiguous split; the shard count is clamped to
        the server count so every shard owns at least one server."""
        if num_servers < 1:
            raise ValueError("need at least one server")
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        shards = min(int(shards), int(num_servers))
        sizes = np.full(shards, num_servers // shards, dtype=np.int64)
        sizes[: num_servers % shards] += 1
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        return cls(bounds=tuple(int(x) for x in bounds))

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def num_servers(self) -> int:
        return self.bounds[-1]

    def ranges(self) -> list[tuple[int, int]]:
        """Per-shard ``(lo, hi)`` server ranges, in shard order."""
        return list(zip(self.bounds, self.bounds[1:]))


@dataclass(frozen=True)
class ShardInit:
    """Everything a shard worker needs, picklable for the process strategy.

    ``rates`` is the shard's own slice of the rate vector;  ``start`` is
    the global index of its first server (diagnostics only -- workers
    operate entirely in shard-local server coordinates).
    """

    index: int
    start: int
    rates: np.ndarray
    num_dispatchers: int
    rounds: int
    warmup: int
    sized: bool
    track_queue_series: bool
    probe_specs: tuple[ProbeSpec, ...]

    def probe_labels(self) -> tuple[str, ...]:
        """Labels of the worker's probes, in construction order."""
        labels = ["responses"]
        if self.track_queue_series:
            labels.append("queue_series")
        labels.extend(spec.label for spec in self.probe_specs)
        return tuple(labels)


class ShardWorker:
    """One shard's private state: a batch store plus a bound probe set.

    The same object serves both strategies -- the serial strategy calls
    it in-process, the process strategy hosts it in a child process.
    Workers see only shard-local arrays: ``received``/``done`` slices of
    the coordinator's block matrices (and, sized, the shard's jobs in
    local server coordinates).  Queue slices are reconstructed here from
    those deltas, so the per-block exchange stays minimal.
    """

    def __init__(self, init: ShardInit) -> None:
        n = int(init.rates.size)
        ctx = ProbeContext(
            num_servers=n,
            num_dispatchers=init.num_dispatchers,
            rates=init.rates,
            rounds=init.rounds,
            warmup=init.warmup,
            sized=init.sized,
        )
        pairs: list[tuple[str, Probe]] = [("responses", ResponseTimeProbe())]
        if init.track_queue_series:
            pairs.append(("queue_series", QueueSeriesProbe()))
        for spec in init.probe_specs:
            pairs.append((spec.label, spec.build()))
        self.sized = init.sized
        self.warmup = init.warmup
        self.probes = ProbeSet(pairs, ctx)
        self.store = SizedBatchQueueStore(n) if init.sized else BatchQueueStore(n)
        self.queues = np.zeros(n, dtype=np.int64)
        self._sink = (
            self.probes.observe_responses if self.probes.wants_responses else None
        )

    def _advance_queues(self, received: np.ndarray, done: np.ndarray) -> np.ndarray:
        """Replay the block's queue dynamics for this shard's slice."""
        queue_block = np.cumsum(received - done, axis=0)
        queue_block += self.queues
        self.queues = queue_block[-1].copy()
        series = self.probes.queue_series
        if series is not None:
            series.record_many(queue_block.sum(axis=1))
        return queue_block

    def process_block(
        self, start_round: int, received: np.ndarray, done: np.ndarray
    ) -> None:
        """Unsized: resolve one block of this shard's FIFO departures."""
        queue_block = self._advance_queues(received, done)
        self.store.process_block(
            start_round,
            received,
            done,
            self.probes.histogram,
            self.warmup,
            response_sink=self._sink,
        )
        self._observe(start_round, received, done, queue_block)

    def process_sized_block(
        self,
        start_round: int,
        received: np.ndarray,
        done: np.ndarray,
        job_servers: np.ndarray,
        job_rounds: np.ndarray,
        job_sizes: np.ndarray,
    ) -> None:
        """Sized: jobs arrive server-major in shard-local coordinates."""
        queue_block = self._advance_queues(received, done)
        self.store.process_block(
            start_round,
            job_servers,
            job_rounds,
            job_sizes,
            done,
            self.probes.histogram,
            self.warmup,
            response_sink=self._sink,
        )
        self._observe(start_round, received, done, queue_block)

    def _observe(
        self,
        start_round: int,
        received: np.ndarray,
        done: np.ndarray,
        queue_block: np.ndarray,
    ) -> None:
        if not self.probes.wants_blocks:
            return
        fields = self.probes.fields
        self.probes.observe_block(
            ProbeBlock(
                start_round=start_round,
                length=received.shape[0],
                batch=None,  # dispatcher axis; partitionable probes never ask
                received=received if "received" in fields else None,
                done=done if "done" in fields else None,
                queues=queue_block if "queues" in fields else None,
            )
        )

    def probe_states(self) -> list[dict]:
        """``state_dict`` of every probe, in :meth:`ShardInit.probe_labels` order."""
        return [probe.state_dict() for probe in self.probes.as_dict().values()]

    def snapshot_state(self) -> dict:
        """Everything that varies over a run, for block-aligned checkpoints.

        Returns live references (serial strategy) or the payload that
        crosses the pipe (process strategy); either way the caller
        serializes before the worker processes another block.
        """
        return {
            "store": self.store,
            "queues": self.queues,
            "probes": self.probes,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` payload (resume mid-run)."""
        self.store = state["store"]
        self.queues = state["queues"]
        self.probes = state["probes"]
        self._sink = (
            self.probes.observe_responses if self.probes.wants_responses else None
        )


def split_probe_specs(
    specs: Sequence["str | ProbeSpec"],
) -> tuple[tuple[ProbeSpec, ...], tuple[ProbeSpec, ...]]:
    """Route each extra probe to the shards or the coordinator.

    Returns ``(shard_specs, coordinator_specs)``.  A probe rides inside
    the shards iff its class opts in via ``Probe.partitionable`` (its
    state then folds through ``merge_partition``); everything else runs
    in the coordinator against the full global block stream, exactly as
    on the fast kernel.  Two shapes cannot work and raise here:
    partitionable probes reading the ``batch`` field (it has no server
    axis to slice) and non-partitionable probes wanting response events
    (those exist only inside the shards).
    """
    shard_specs: list[ProbeSpec] = []
    coordinator_specs: list[ProbeSpec] = []
    for spec in specs:
        spec = ProbeSpec.of(spec)
        prototype = spec.build()
        if prototype.partitionable:
            if "batch" in prototype.fields:
                raise ValueError(
                    f"probe {spec.label!r} is partitionable but reads the "
                    f"'batch' block field, which has no server axis to "
                    f"partition across shards"
                )
            shard_specs.append(spec)
        elif prototype.wants_responses:
            raise ValueError(
                f"probe {spec.label!r} wants response events but is not "
                f"partitionable; on the sharded backend response events are "
                f"recorded inside the shards, so such probes must define a "
                f"partition-safe merge and set partitionable = True"
            )
        else:
            coordinator_specs.append(spec)
    return tuple(shard_specs), tuple(coordinator_specs)


# ---------------------------------------------------------------------------
# Execution strategies.
# ---------------------------------------------------------------------------


class ShardStrategy(ABC):
    """Where shard workers live and how the per-block exchange reaches them."""

    #: Parameter name, e.g. ``"serial"`` in ``sharded:4:serial``.
    name: str = "abstract"

    @abstractmethod
    def start(
        self,
        inits: Sequence[ShardInit],
        states: Sequence[dict] | None = None,
    ) -> None:
        """Materialize one worker per :class:`ShardInit`.

        ``states`` (one :meth:`ShardWorker.snapshot_state` payload per
        shard, from a checkpoint) restores each worker mid-run.
        """

    @abstractmethod
    def feed(self, shard: int, payload: tuple) -> None:
        """Hand one block's shard-local arrays to a worker.

        ``payload`` is the positional argument tuple of
        :meth:`ShardWorker.process_block` (unsized) or
        :meth:`ShardWorker.process_sized_block` (sized).
        """

    @abstractmethod
    def snapshot(self) -> list[dict]:
        """Every shard's :meth:`ShardWorker.snapshot_state`, in shard order.

        Synchronous: a worker answers only after consuming every block
        fed so far, so the snapshot is exactly the state at the current
        block boundary.  Serial-strategy payloads are live references --
        serialize before feeding another block.
        """

    @abstractmethod
    def finish(self) -> list[dict[str, Probe]]:
        """Collect every shard's probes as label -> probe maps."""

    def close(self) -> None:
        """Release workers (idempotent; called on success and failure)."""


class SerialShardStrategy(ShardStrategy):
    """In-process shard loop: deterministic, zero IPC.

    The strategy the 1-CPU CI container exercises, and the reference
    the process strategy must reproduce exactly (workers run identical
    integer arithmetic either way).
    """

    name = "serial"

    def start(
        self,
        inits: Sequence[ShardInit],
        states: Sequence[dict] | None = None,
    ) -> None:
        self._workers = [ShardWorker(init) for init in inits]
        if states is not None:
            for worker, state in zip(self._workers, states):
                worker.restore_state(state)

    def feed(self, shard: int, payload: tuple) -> None:
        worker = self._workers[shard]
        if worker.sized:
            worker.process_sized_block(*payload)
        else:
            worker.process_block(*payload)

    def snapshot(self) -> list[dict]:
        return [worker.snapshot_state() for worker in self._workers]

    def finish(self) -> list[dict[str, Probe]]:
        return [worker.probes.as_dict() for worker in self._workers]


def _shard_worker_main(conn, init: ShardInit) -> None:
    """Child-process loop of the process strategy (module-level: picklable)."""
    try:
        worker = ShardWorker(init)
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "block":
                if worker.sized:
                    worker.process_sized_block(*message[1:])
                else:
                    worker.process_block(*message[1:])
            elif kind == "restore":
                worker.restore_state(message[1])
            elif kind == "snapshot":
                conn.send(("state", worker.snapshot_state()))
            elif kind == "finish":
                conn.send(("done", worker.probe_states()))
                return
            else:  # pragma: no cover - defensive; parent sends only the above
                raise RuntimeError(f"unknown shard message {kind!r}")
    except EOFError:  # pragma: no cover - parent died; nothing to report to
        pass
    except BaseException as error:
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except OSError:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


class MultiprocessShardStrategy(ShardStrategy):
    """One worker process per shard, fed blocks over pipes.

    Seed-stable by the same construction as the experiment executor's
    process pool: workers hold no RNG and no policy state -- every
    random draw and every dispatch decision happens in the coordinator
    -- so scheduling and interleaving cannot perturb any result; the
    probe states that come back are the ones the serial strategy
    produces, moved through ``state_dict`` (exact integer payloads).
    Pipes apply natural backpressure: the coordinator runs ahead of the
    shards by at most the OS pipe buffer.
    """

    name = "process"

    def start(
        self,
        inits: Sequence[ShardInit],
        states: Sequence[dict] | None = None,
    ) -> None:
        context = multiprocessing.get_context()
        self._inits = list(inits)
        self._conns = []
        self._processes = []
        for init in inits:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main, args=(child_conn, init), daemon=True
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        if states is not None:
            for shard, state in enumerate(states):
                try:
                    self._conns[shard].send(("restore", state))
                except (BrokenPipeError, OSError):
                    self._raise_shard_failure(shard)

    def feed(self, shard: int, payload: tuple) -> None:
        try:
            self._conns[shard].send(("block",) + payload)
        except (BrokenPipeError, OSError):
            self._raise_shard_failure(shard)

    def snapshot(self) -> list[dict]:
        states: list[dict] = []
        for shard, conn in enumerate(self._conns):
            try:
                conn.send(("snapshot",))
                kind, payload = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                self._raise_shard_failure(shard)
            if kind == "error":
                raise RuntimeError(f"shard {shard} failed: {payload}")
            states.append(payload)
        return states

    def finish(self) -> list[dict[str, Probe]]:
        shard_maps: list[dict[str, Probe]] = []
        for shard, conn in enumerate(self._conns):
            try:
                conn.send(("finish",))
                kind, payload = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                self._raise_shard_failure(shard)
            if kind == "error":
                raise RuntimeError(f"shard {shard} failed: {payload}")
            labels = self._inits[shard].probe_labels()
            shard_maps.append(
                {
                    label: probe_from_state(state)
                    for label, state in zip(labels, payload)
                }
            )
        return shard_maps

    def _raise_shard_failure(self, shard: int) -> None:
        detail = ""
        try:
            if self._conns[shard].poll(1.0):
                kind, payload = self._conns[shard].recv()
                if kind == "error":
                    detail = f": {payload}"
        except (EOFError, OSError):
            pass
        raise RuntimeError(f"shard {shard} worker died{detail}")

    def close(self) -> None:
        for conn in getattr(self, "_conns", ()):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for process in getattr(self, "_processes", ()):
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        self._conns = []
        self._processes = []


_STRATEGIES = {
    SerialShardStrategy.name: SerialShardStrategy,
    MultiprocessShardStrategy.name: MultiprocessShardStrategy,
}


def _fold_shards(shard_maps: list[dict[str, Probe]]) -> dict[str, Probe]:
    """Fold shard probe maps left to right via ``merge_partition``."""
    first, *rest = shard_maps
    for other in rest:
        for label, probe in first.items():
            probe.merge_partition(other[label])
    return first


# ---------------------------------------------------------------------------
# The sharded kernels.
# ---------------------------------------------------------------------------


class _ShardedParams:
    """Shared constructor / registry-parameter parsing of both kernels."""

    def __init__(self, shards: int = 2, strategy: str = "serial") -> None:
        shards = int(shards)
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        if strategy not in _STRATEGIES:
            known = ", ".join(sorted(_STRATEGIES))
            raise ValueError(
                f"unknown shard strategy {strategy!r}; known strategies: {known}"
            )
        self.shards = shards
        self.strategy = strategy

    @classmethod
    def from_param(cls, param: str):
        """Registry-name parameters: ``"4"`` or ``"4:process"``."""
        count, _, strategy = param.partition(":")
        try:
            shards = int(count)
        except ValueError:
            raise ValueError(
                f"invalid shard count {count!r}; parameterize as "
                f"'sharded:N' or 'sharded:N:serial|process'"
            ) from None
        return cls(shards=shards, strategy=strategy or "serial")

    def _shard_inits(
        self,
        plan: ShardPlan,
        rates: np.ndarray,
        num_dispatchers: int,
        rounds: int,
        warmup: int,
        sized: bool,
        track_queue_series: bool,
        probe_specs: tuple[ProbeSpec, ...],
    ) -> list[ShardInit]:
        return [
            ShardInit(
                index=index,
                start=lo,
                rates=rates[lo:hi].copy(),
                num_dispatchers=num_dispatchers,
                rounds=rounds,
                warmup=warmup,
                sized=sized,
                track_queue_series=track_queue_series,
                probe_specs=probe_specs,
            )
            for index, (lo, hi) in enumerate(plan.ranges())
        ]

    @staticmethod
    def _assemble_probes(
        config_specs: tuple[ProbeSpec, ...],
        folded: dict[str, Probe],
        coordinator: dict[str, Probe],
    ) -> dict[str, Probe]:
        """Final label -> probe map in the fast kernel's order."""
        probes = {"responses": folded["responses"]}
        if "queue_series" in folded:
            probes["queue_series"] = folded["queue_series"]
        for spec in config_specs:
            label = ProbeSpec.of(spec).label
            probes[label] = folded[label] if label in folded else coordinator[label]
        return probes


@register_backend("sharded")
class ShardedBackend(_ShardedParams, EngineBackend):
    """Server-partitioned fast kernel (see the module docstring).

    The round loop is the fast kernel's, verbatim: identical RNG
    consumption, identical dispatch calls, identical queue arithmetic
    -- only the block resolution and the partitionable probes are
    pushed into the shards.  Bit-identical to ``"fast"`` for
    deterministic policies at every shard count and under either
    strategy.
    """

    name = "sharded"
    description = (
        "server-partitioned fast kernel: per-shard batch stores and probe "
        "sets, folded via Probe.merge_partition; parameterize as "
        "sharded:N[:serial|process] (bit-exact vs fast for deterministic "
        "policies)"
    )

    def run(
        self, sim: "Simulation", controller: RunController | None = None
    ) -> "SimulationResult":
        from repro.policies.base import has_native_dispatch_round

        from .engine import SimulationResult

        config = sim.config
        policy = sim.policy
        arrivals = sim.arrivals
        service = sim.service
        arrival_rng = sim._streams.arrivals
        departure_rng = sim._streams.departures

        n = sim.rates.size
        m = arrivals.num_dispatchers
        native = has_native_dispatch_round(policy)
        plan = ShardPlan.balanced(n, self.shards)
        ranges = plan.ranges()
        shard_specs, coordinator_specs = split_probe_specs(config.probes)
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, config.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            coordinator_probes = state["coordinator_probes"]
            queues = state["queues"]
            total_arrived = state["total_arrived"]
            server_received = state["server_received"]
            server_departed = state["server_departed"]
            shard_states = state["shards"]
        else:
            coordinator_probes = ProbeSet(
                [(spec.label, spec.build()) for spec in coordinator_specs],
                ProbeContext(
                    num_servers=n,
                    num_dispatchers=m,
                    rates=sim.rates,
                    rounds=config.rounds,
                    warmup=config.warmup,
                    sized=False,
                ),
            )
            queues = np.zeros(n, dtype=np.int64)
            total_arrived = 0
            server_received = np.zeros(n, dtype=np.int64)
            server_departed = np.zeros(n, dtype=np.int64)
            shard_states = None
        need_queues = "queues" in coordinator_probes.fields
        strategy = _STRATEGIES[self.strategy]()

        try:
            strategy.start(
                self._shard_inits(
                    plan,
                    sim.rates,
                    m,
                    config.rounds,
                    config.warmup,
                    sized=False,
                    track_queue_series=config.track_queue_series,
                    probe_specs=shard_specs,
                ),
                states=shard_states,
            )
            for chunk_start in range(start_round, config.rounds, _CHUNK_ROUNDS):
                chunk = min(_CHUNK_ROUNDS, config.rounds - chunk_start)
                arrival_block = arrivals.sample_many(arrival_rng, chunk_start, chunk)
                capacity_block = service.sample_many(
                    departure_rng, chunk_start, chunk
                )
                received_block = np.zeros((chunk, n), dtype=np.int64)
                done_block = np.zeros((chunk, n), dtype=np.int64)
                queue_block = (
                    np.zeros((chunk, n), dtype=np.int64) if need_queues else None
                )

                for i in range(chunk):
                    t = chunk_start + i

                    # Phase 1: arrivals (pre-sampled).
                    batch = arrival_block[i]
                    round_total = int(batch.sum())
                    total_arrived += round_total

                    # Phase 2: one batched dispatch against the global view.
                    policy.begin_round(t, queues)
                    if round_total:
                        policy.observe_total_arrivals(round_total)
                        if native:
                            rows = policy.dispatch_round(batch, queues)
                            if rows.shape != (m, n):
                                raise ValueError(
                                    f"{policy.name}.dispatch_round returned shape "
                                    f"{rows.shape}, expected ({m}, {n})"
                                )
                            received = rows.sum(axis=0)
                        else:
                            received = np.zeros(n, dtype=np.int64)
                            for d in range(m):
                                k = int(batch[d])
                                if k == 0:
                                    continue
                                received += policy.dispatch(d, k)
                        if int(received.sum()) != round_total:
                            raise ValueError(
                                f"{policy.name} assigned {int(received.sum())} "
                                f"jobs for a round of {round_total}"
                            )
                        received_block[i] = received
                        queues += received
                        server_received += received

                    # Phase 3: departures -- queue totals here, FIFO
                    # resolution inside the shards at block end.
                    done = np.minimum(queues, capacity_block[i])
                    done_block[i] = done
                    queues -= done

                    policy.end_round(t, queues)
                    if queue_block is not None:
                        queue_block[i] = queues

                server_departed += done_block.sum(axis=0)
                # The per-block exchange: each shard gets its slice of
                # the admission/completion matrices (its queue slice and
                # series follow from those deltas worker-side).
                for index, (lo, hi) in enumerate(ranges):
                    strategy.feed(
                        index,
                        (
                            chunk_start,
                            received_block[:, lo:hi],
                            done_block[:, lo:hi],
                        ),
                    )
                if coordinator_probes.wants_blocks:
                    fields = coordinator_probes.fields
                    coordinator_probes.observe_block(
                        ProbeBlock(
                            start_round=chunk_start,
                            length=chunk,
                            batch=arrival_block if "batch" in fields else None,
                            received=(
                                received_block if "received" in fields else None
                            ),
                            done=done_block if "done" in fields else None,
                            queues=queue_block,
                        )
                    )
                if controller is not None:
                    controller.after_block(
                        chunk_start + chunk,
                        lambda: {
                            "coordinator_probes": coordinator_probes,
                            "queues": queues,
                            "total_arrived": total_arrived,
                            "server_received": server_received,
                            "server_departed": server_departed,
                            "shards": strategy.snapshot(),
                        },
                    )
            folded = _fold_shards(strategy.finish())
        finally:
            strategy.close()

        probes = self._assemble_probes(
            config.probes, folded, coordinator_probes.as_dict()
        )
        queue_series_probe = probes.get("queue_series")
        return SimulationResult(
            policy_name=policy.name,
            config=config,
            histogram=probes["responses"].histogram,
            queue_series=(
                queue_series_probe.series if queue_series_probe is not None else None
            ),
            total_arrived=total_arrived,
            total_departed=int(server_departed.sum()),
            final_queued=int(queues.sum()),
            final_queues=queues,
            server_received=server_received,
            server_departed=server_departed,
            probes=probes,
        )


_EMPTY_JOBS = np.empty(0, dtype=np.int64)


@register_sized_backend("sharded")
class SizedShardedBackend(_ShardedParams, SizedEngineBackend):
    """Server-partitioned sized fast kernel.

    Mirrors :class:`ShardedBackend` for the unit-denominated engine:
    the coordinator repeats the sized fast kernel's pre-sampling
    (arrival/size interleaving and all) and dispatching exactly, then
    routes each block's jobs -- already sorted server-major -- to the
    owning shard in shard-local server coordinates.  Bit-identical to
    the sized ``"fast"`` kernel for deterministic policies at every
    shard count.
    """

    name = "sharded"
    description = (
        "server-partitioned sized fast kernel: per-shard unit stores and "
        "probe sets, folded via Probe.merge_partition; parameterize as "
        "sharded:N[:serial|process] (bit-exact vs fast for deterministic "
        "policies)"
    )

    def run(
        self, sim: "SizedSimulation", controller: RunController | None = None
    ) -> "SizedSimulationResult":
        from .sized import SizedSimulationResult

        policy = sim.policy
        arrivals = sim.arrivals
        service = sim.service
        sizes = sim.sizes
        arrival_rng = sim._streams.arrivals
        departure_rng = sim._streams.departures

        n = sim.rates.size
        m = arrivals.num_dispatchers
        plan = ShardPlan.balanced(n, self.shards)
        ranges = plan.ranges()
        bounds = np.asarray(plan.bounds, dtype=np.int64)
        shard_specs, coordinator_specs = split_probe_specs(sim.probes)
        start_round = 0
        state = None
        if controller is not None:
            start_round = validate_start_round(
                controller.start_round, sim.rounds, _CHUNK_ROUNDS
            )
            state = controller.initial_state()
        if state is not None:
            coordinator_probes = state["coordinator_probes"]
            unit_queues = state["unit_queues"]
            total_jobs = state["total_jobs"]
            units_in = state["units_in"]
            units_out = state["units_out"]
            shard_states = state["shards"]
        else:
            coordinator_probes = ProbeSet(
                [(spec.label, spec.build()) for spec in coordinator_specs],
                ProbeContext(
                    num_servers=n,
                    num_dispatchers=m,
                    rates=sim.rates,
                    rounds=sim.rounds,
                    warmup=sim.warmup,
                    sized=True,
                ),
            )
            unit_queues = np.zeros(n, dtype=np.int64)
            total_jobs = 0
            units_in = 0
            units_out = 0
            shard_states = None
        need_queues = "queues" in coordinator_probes.fields
        strategy = _STRATEGIES[self.strategy]()
        # Flat (dispatcher-major) cell index -> server, as in the sized
        # fast kernel.
        cell_server = np.tile(np.arange(n), m)

        try:
            strategy.start(
                self._shard_inits(
                    plan,
                    sim.rates,
                    m,
                    sim.rounds,
                    sim.warmup,
                    sized=True,
                    track_queue_series=True,
                    probe_specs=shard_specs,
                ),
                states=shard_states,
            )
            for chunk_start in range(start_round, sim.rounds, _CHUNK_ROUNDS):
                chunk = min(_CHUNK_ROUNDS, sim.rounds - chunk_start)

                # Phase 1 (pre-sampled): arrivals and sizes, interleaved
                # per round exactly as the reference/fast kernels consume
                # them.
                batch_block = np.empty((chunk, m), dtype=np.int64)
                size_rows: list[np.ndarray] = []
                for i in range(chunk):
                    batch = arrivals.sample(arrival_rng, chunk_start + i)
                    batch_block[i] = batch
                    k = int(batch.sum())
                    size_rows.append(
                        sizes.sample(arrival_rng, k) if k else _EMPTY_JOBS
                    )
                capacity_block = service.sample_many(
                    departure_rng, chunk_start, chunk
                )
                received_block = np.zeros((chunk, n), dtype=np.int64)
                done_block = np.zeros((chunk, n), dtype=np.int64)
                queue_block = (
                    np.zeros((chunk, n), dtype=np.int64) if need_queues else None
                )
                job_servers: list[np.ndarray] = []
                job_rounds: list[np.ndarray] = []
                job_sizes: list[np.ndarray] = []

                for i in range(chunk):
                    t = chunk_start + i
                    batch = batch_block[i]
                    round_total = int(batch.sum())
                    total_jobs += round_total

                    # Phase 2: one batched dispatch for the whole round.
                    policy.begin_round(t, unit_queues)
                    if round_total:
                        policy.observe_total_arrivals(round_total)
                        rows = policy.dispatch_round(batch, unit_queues)
                        if rows.shape != (m, n):
                            raise ValueError(
                                f"{policy.name}.dispatch_round returned shape "
                                f"{rows.shape}, expected ({m}, {n})"
                            )
                        flat = rows.ravel()
                        if int(flat.sum()) != round_total:
                            raise ValueError(
                                f"{policy.name} assigned {int(flat.sum())} "
                                f"jobs for a round of {round_total}"
                            )
                        round_sizes = size_rows[i]
                        size_bounds = np.concatenate(
                            ([0], np.cumsum(round_sizes))
                        )
                        cell_ends = np.cumsum(flat)
                        cell_units = (
                            size_bounds[cell_ends] - size_bounds[cell_ends - flat]
                        )
                        received_units = cell_units.reshape(m, n).sum(axis=0)
                        unit_queues += received_units
                        units_in += int(received_units.sum())
                        received_block[i] = received_units
                        job_servers.append(np.repeat(cell_server, flat))
                        job_rounds.append(
                            np.full(round_total, t, dtype=np.int64)
                        )
                        job_sizes.append(round_sizes)

                    # Phase 3: departures -- unit totals here, per-job
                    # FIFO resolution inside the shards at block end.
                    done = np.minimum(unit_queues, capacity_block[i])
                    done_block[i] = done
                    unit_queues -= done
                    units_out += int(done.sum())

                    policy.end_round(t, unit_queues)
                    if queue_block is not None:
                        queue_block[i] = unit_queues

                # Sort the block's jobs server-major (stable: admission
                # order within a server), then cut at the shard bounds.
                if job_servers:
                    srv = np.concatenate(job_servers)
                    order = np.argsort(srv, kind="stable")
                    srv = srv[order]
                    rounds_sorted = np.concatenate(job_rounds)[order]
                    sizes_sorted = np.concatenate(job_sizes)[order]
                else:
                    srv = rounds_sorted = sizes_sorted = _EMPTY_JOBS
                cuts = np.searchsorted(srv, bounds)
                for index, (lo, hi) in enumerate(ranges):
                    a, b = int(cuts[index]), int(cuts[index + 1])
                    strategy.feed(
                        index,
                        (
                            chunk_start,
                            received_block[:, lo:hi],
                            done_block[:, lo:hi],
                            srv[a:b] - lo,
                            rounds_sorted[a:b],
                            sizes_sorted[a:b],
                        ),
                    )
                if coordinator_probes.wants_blocks:
                    fields = coordinator_probes.fields
                    coordinator_probes.observe_block(
                        ProbeBlock(
                            start_round=chunk_start,
                            length=chunk,
                            batch=batch_block if "batch" in fields else None,
                            received=(
                                received_block if "received" in fields else None
                            ),
                            done=done_block if "done" in fields else None,
                            queues=queue_block,
                        )
                    )
                if controller is not None:
                    controller.after_block(
                        chunk_start + chunk,
                        lambda: {
                            "coordinator_probes": coordinator_probes,
                            "unit_queues": unit_queues,
                            "total_jobs": total_jobs,
                            "units_in": units_in,
                            "units_out": units_out,
                            "shards": strategy.snapshot(),
                        },
                    )
            folded = _fold_shards(strategy.finish())
        finally:
            strategy.close()

        probes = self._assemble_probes(
            sim.probes, folded, coordinator_probes.as_dict()
        )
        return SizedSimulationResult(
            policy_name=policy.name,
            histogram=probes["responses"].histogram,
            queue_series=probes["queue_series"].series,
            total_jobs=total_jobs,
            total_units_arrived=units_in,
            total_units_departed=units_out,
            final_units_queued=int(unit_queues.sum()),
            probes=probes,
        )
